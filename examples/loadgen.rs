//! loadgen: throughput and latency of the `cooprt-serve` service.
//!
//! Starts an in-process server on an ephemeral port, then drives it
//! with N concurrent clients, each holding one keep-alive connection,
//! in two passes over the same request sequence:
//!
//! - **cold**: every request names a distinct job, so every response is
//!   computed by the simulator (result-cache misses) — this measures
//!   end-to-end simulation throughput through the service;
//! - **warm**: the identical sequence again, so every response comes
//!   from the result cache — this isolates the service overhead
//!   (HTTP parse, routing, queue, cache lookup).
//!
//! Each client records its own request latencies in a
//! [`TraceLatencies`]; the per-client series are unioned with
//! [`TraceLatencies::merge`] before computing the pass quantiles.
//! Results are printed and written to `BENCH_serve.json` at the
//! repository root (skipped under `--smoke`).
//!
//! ```sh
//! cargo run --release --example loadgen -- --clients 4 --requests 32
//! cargo run --release --example loadgen -- --smoke
//! ```

use cooprt::core::TraceLatencies;
use cooprt::serve::{HttpClient, ServeConfig, Server};
use cooprt::telemetry::{parse_json, validate_prometheus, JsonValue, JsonWriter};
use std::time::Instant;

struct Args {
    clients: usize,
    requests: usize,
    workers: usize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 4,
        requests: 24,
        workers: 4,
        out: "BENCH_serve.json".to_string(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        let parse_usize = |s: String| -> usize {
            s.parse().unwrap_or_else(|_| {
                eprintln!("not a number: {s}");
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--clients" => args.clients = parse_usize(value(&mut i)),
            "--requests" => args.requests = parse_usize(value(&mut i)),
            "--workers" => args.workers = parse_usize(value(&mut i)),
            "--out" => args.out = value(&mut i),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--clients N] [--requests N] [--workers N] [--out FILE] [--smoke]\n\
                     \n\
                     --clients N    concurrent keep-alive clients  [default: 4]\n\
                     --requests N   requests per client per pass   [default: 24]\n\
                     --workers N    server worker threads          [default: 4]\n\
                     --out FILE     JSON report path               [default: BENCH_serve.json]\n\
                     --smoke        tiny run, no JSON (CI)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if args.smoke {
        args.clients = 2;
        args.requests = 4;
        args.workers = 2;
    }
    if args.clients == 0 || args.requests == 0 || args.workers == 0 {
        eprintln!("--clients, --requests and --workers must be positive");
        std::process::exit(2);
    }
    args
}

/// The request body of global request index `k` — every index names a
/// distinct job (distinct canonical key), so a first pass is all
/// result-cache misses.
fn job_body(k: usize) -> String {
    let width = 6 + (k % 16);
    let height = 5 + (k / 16) % 8;
    let policy = if k.is_multiple_of(2) {
        "cooprt"
    } else {
        "baseline"
    };
    format!(
        r#"{{"scene": "wknd", "width": {width}, "height": {height}, "policy": "{policy}", "config": "small", "sms": 1}}"#
    )
}

struct Pass {
    label: &'static str,
    wall_secs: f64,
    requests: usize,
    latencies_us: TraceLatencies,
    expected_cache: &'static str,
}

impl Pass {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall_secs.max(1e-12)
    }
}

/// Runs one pass: `clients` threads, each issuing its slice of the
/// request sequence over one keep-alive connection, recording per-
/// request latencies locally; the series are merged afterwards.
fn run_pass(
    label: &'static str,
    addr: &str,
    clients: usize,
    requests: usize,
    expected_cache: &'static str,
) -> Pass {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(&addr).expect("connect");
                let mut lat = TraceLatencies::new();
                for r in 0..requests {
                    let body = job_body(c * requests + r);
                    let t = Instant::now();
                    let resp = client.post("/v1/render", &body).expect("request");
                    lat.record(t.elapsed().as_micros() as u64);
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    if !expected_cache.is_empty() {
                        assert_eq!(
                            resp.header("x-cache"),
                            Some(expected_cache),
                            "pass '{label}' request {r} of client {c}"
                        );
                    }
                }
                lat
            })
        })
        .collect();
    let mut merged = TraceLatencies::new();
    for handle in handles {
        merged.merge(&handle.join().expect("client thread"));
    }
    Pass {
        label,
        wall_secs: start.elapsed().as_secs_f64(),
        requests: clients * requests,
        latencies_us: merged,
        expected_cache,
    }
}

fn print_pass(pass: &mut Pass) {
    println!(
        "{:<6} {:>6} req in {:>7.3}s = {:>8.1} req/s | p50 {:>7}us p95 {:>7}us p99 {:>7}us max {:>7}us",
        pass.label,
        pass.requests,
        pass.wall_secs,
        pass.rps(),
        pass.latencies_us.quantile(0.5),
        pass.latencies_us.quantile(0.95),
        pass.latencies_us.quantile(0.99),
        pass.latencies_us.max(),
    );
}

fn write_pass(w: &mut JsonWriter, pass: &mut Pass) {
    w.begin_object_field(pass.label);
    w.field_u64("requests", pass.requests as u64);
    w.field_f64("wall_secs", pass.wall_secs, 6);
    w.field_f64("requests_per_sec", pass.rps(), 2);
    w.field_str("expected_cache", pass.expected_cache);
    w.begin_inline_object_field("latency_us");
    w.field_u64("p50", pass.latencies_us.quantile(0.5));
    w.field_u64("p95", pass.latencies_us.quantile(0.95));
    w.field_u64("p99", pass.latencies_us.quantile(0.99));
    w.field_u64("max", pass.latencies_us.max());
    w.field_f64("mean", pass.latencies_us.mean(), 1);
    w.end_object();
    w.end_object();
}

fn main() {
    let args = parse_args();
    let total = args.clients * args.requests;
    println!(
        "loadgen: {} clients x {} requests/pass ({} total), {} server workers",
        args.clients, args.requests, total, args.workers
    );

    let server = Server::bind(&ServeConfig {
        workers: args.workers,
        // Admission must never reject the benchmark's own load.
        queue_capacity: (2 * total).max(8),
        result_cache_capacity: (2 * total).max(8),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));

    // Cold: all distinct jobs — every response simulated. Warm: the
    // same sequence — every response served from the result cache.
    let mut cold = run_pass("cold", &addr, args.clients, args.requests, "miss");
    let mut warm = run_pass("warm", &addr, args.clients, args.requests, "hit");
    print_pass(&mut cold);
    print_pass(&mut warm);
    println!(
        "warm/cold speedup: {:.1}x",
        warm.rps() / cold.rps().max(1e-12)
    );

    // Final server-side snapshot (cache hit rates, response classes).
    let mut client = HttpClient::connect(&addr).expect("connect");
    let metrics_text = client.get("/metrics").expect("metrics").text();
    let metrics = parse_json(&metrics_text).expect("metrics parse");
    let cache_count = |section: &str, field: &str| -> u64 {
        metrics
            .get(section)
            .and_then(|s| s.get(field))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0) as u64
    };
    let (hits, misses) = (
        cache_count("result_cache", "hits"),
        cache_count("result_cache", "misses"),
    );
    assert_eq!(misses, total as u64, "cold pass must be all misses");
    assert_eq!(hits, total as u64, "warm pass must be all hits");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    println!(
        "result cache: {hits} hits / {misses} misses ({:.0}% overall)",
        hit_rate * 100.0
    );

    // The rolling-window SLO tracker saw the whole run (both passes
    // finished inside the 60 s window).
    let slo = metrics.get("slo").expect("metrics carry an slo section");
    let slo_f64 = |field: &str| -> f64 {
        slo.get(field)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("slo.{field} missing"))
    };
    let attainment = slo_f64("attainment");
    assert!(
        (0.0..=1.0).contains(&attainment),
        "attainment must be a fraction, got {attainment}"
    );
    println!(
        "slo window: {} req, p50 {}us p95 {}us p99 {}us, attainment {:.4} (target {}us), burn {:.2}",
        slo_f64("count"),
        slo_f64("p50_us"),
        slo_f64("p95_us"),
        slo_f64("p99_us"),
        attainment,
        slo_f64("target_us"),
        slo_f64("error_budget_burn"),
    );

    // The Prometheus exposition must negotiate and pass the in-tree
    // format validator.
    let prom = client
        .get_accept("/metrics", "text/plain")
        .expect("prometheus metrics");
    assert_eq!(prom.status, 200);
    validate_prometheus(&prom.text()).expect("prometheus exposition validates");

    handle.shutdown();
    join.join().expect("server thread");

    if args.smoke {
        println!("loadgen smoke passed");
        return;
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("bench", "serve-loadgen");
    w.begin_inline_object_field("config");
    w.field_u64("clients", args.clients as u64);
    w.field_u64("requests_per_client", args.requests as u64);
    w.field_u64("server_workers", args.workers as u64);
    w.end_object();
    write_pass(&mut w, &mut cold);
    write_pass(&mut w, &mut warm);
    w.field_f64("warm_cold_speedup", warm.rps() / cold.rps().max(1e-12), 2);
    w.begin_inline_object_field("result_cache");
    w.field_u64("hits", hits);
    w.field_u64("misses", misses);
    w.field_f64("hit_rate", hit_rate, 4);
    w.end_object();
    // The server's rolling-window view of the run: windowed quantiles,
    // SLO attainment, and error-budget burn (gated by benchdiff).
    w.begin_inline_object_field("slo");
    w.field_u64("window_secs", slo_f64("window_secs") as u64);
    w.field_u64("count", slo_f64("count") as u64);
    w.field_u64("errors", slo_f64("errors") as u64);
    w.field_u64("p50_us", slo_f64("p50_us") as u64);
    w.field_u64("p95_us", slo_f64("p95_us") as u64);
    w.field_u64("p99_us", slo_f64("p99_us") as u64);
    w.field_u64("max_us", slo_f64("max_us") as u64);
    w.field_u64("target_us", slo_f64("target_us") as u64);
    w.field_f64("objective", slo_f64("objective"), 4);
    w.field_f64("attainment", attainment, 6);
    w.field_f64("error_budget_burn", slo_f64("error_budget_burn"), 4);
    w.end_object();
    w.field_raw("server_metrics", &metrics_text);
    w.end_object();
    std::fs::write(&args.out, w.finish() + "\n").expect("write report");
    println!("wrote {}", args.out);
}
