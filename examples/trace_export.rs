//! Unified telemetry export: runs one scene with the sim-time event
//! tracer enabled and writes a Perfetto-loadable Chrome trace plus the
//! unified metrics report.
//!
//! ```sh
//! cargo run --release --example trace_export -- \
//!     --scene wknd --policy cooprt --res 48 --detail 16 --out-dir .
//! ```
//!
//! Outputs:
//!
//! - `<scene>_<policy>.trace.json` — Chrome trace-event JSON. Open it
//!   at <https://ui.perfetto.dev> (or `chrome://tracing`): SMs appear
//!   as processes with one track per warp plus "RT fetch" / "LBU"
//!   tracks, and the memory hierarchy appears as a "Memory" process
//!   with L1/L2/DRAM-channel tracks. One trace microsecond is one
//!   simulated cycle.
//! - `<scene>_<policy>.metrics.json` — the unified metrics report:
//!   every statistics family of the run plus the interval-sampled time
//!   series and the host-side wall-clock spans.
//!
//! `--check` additionally validates the emitted trace with the in-tree
//! Chrome-trace checker and asserts the event taxonomy spans the whole
//! machine (SM scheduling, RT unit, LBU, memory hierarchy). CI runs
//! this on every push (see `ci.sh`).

use cooprt::core::{GpuConfig, MetricsReport, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::ALL_SCENES;
use cooprt::telemetry::{chrome_trace_json, validate_chrome_trace, Profiler, TraceMeta, Tracer};

struct Args {
    scene: String,
    policy: TraversalPolicy,
    res: usize,
    detail: u32,
    out_dir: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scene: "wknd".to_string(),
        policy: TraversalPolicy::CoopRt,
        res: 48,
        detail: 16,
        out_dir: ".".to_string(),
        check: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--scene" => args.scene = value(&mut i),
            "--policy" => {
                args.policy = match value(&mut i).as_str() {
                    "base" | "baseline" => TraversalPolicy::Baseline,
                    "coop" | "cooprt" => TraversalPolicy::CoopRt,
                    other => {
                        eprintln!("unknown policy '{other}' (use baseline|cooprt)");
                        std::process::exit(2);
                    }
                }
            }
            "--res" => args.res = value(&mut i).parse().expect("--res takes an integer"),
            "--detail" => args.detail = value(&mut i).parse().expect("--detail takes an integer"),
            "--out-dir" => args.out_dir = value(&mut i),
            "--check" => args.check = true,
            other => {
                eprintln!(
                    "unknown argument '{other}'\nusage: trace_export [--scene NAME] \
                     [--policy baseline|cooprt] [--res N] [--detail N] [--out-dir DIR] [--check]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let Some(id) = ALL_SCENES.iter().copied().find(|s| s.name() == args.scene) else {
        eprintln!("unknown scene '{}'", args.scene);
        std::process::exit(1);
    };

    let mut profiler = Profiler::new();
    let scene = profiler.time("scene_build", || id.build(args.detail));
    let cfg = GpuConfig::rtx2060();
    let policy = args.policy;
    println!(
        "tracing '{id}' under {} at {res}x{res} (detail {detail}) ...",
        policy.label(),
        res = args.res,
        detail = args.detail,
    );

    let tracer = Tracer::enabled();
    let frame = profiler.time("frame_run", || {
        Simulation::new(&scene, &cfg, policy)
            .with_tracer(tracer.clone())
            .run_frame(ShaderKind::PathTrace, args.res, args.res)
            .unwrap()
    });
    let log = tracer.take();
    println!(
        "{} cycles, {} rays; captured {} events ({} dropped past capacity)",
        frame.cycles,
        frame.rays,
        log.events.len(),
        log.dropped
    );

    let label = format!("{}_{}", id.name(), policy.label());
    let meta = TraceMeta::new(&format!("CoopRT {label}"));
    let trace = profiler.time("trace_export", || chrome_trace_json(&log, &meta));

    if args.check {
        let check = validate_chrome_trace(&trace).unwrap_or_else(|e| {
            eprintln!("emitted trace failed validation: {e}");
            std::process::exit(1);
        });
        // The taxonomy must span every layer of the machine: SM warp
        // scheduling, the RT unit's fetch path, the LBU (under the
        // cooperative policy), and the memory hierarchy.
        let mut expected = vec![
            "warp_issue",
            "warp_retire",
            "trace_ray",
            "node_fetch",
            "response_pop",
            "l1_hit",
            "dram_xfer",
        ];
        if policy == TraversalPolicy::CoopRt {
            expected.push("lbu_move");
        }
        for name in &expected {
            assert!(
                check.event_names.contains(*name),
                "trace is missing '{name}' events (found: {:?})",
                check.event_names
            );
        }
        assert!(
            check.event_names.len() >= 6,
            "expected at least 6 distinct event types, found {:?}",
            check.event_names
        );
        println!(
            "validated: {} events on {} tracks, {} distinct event types",
            check.events,
            check.tracks,
            check.event_names.len()
        );
    }

    let trace_path = format!("{}/{label}.trace.json", args.out_dir);
    std::fs::write(&trace_path, &trace).expect("write trace JSON");
    println!("wrote {trace_path} (open at https://ui.perfetto.dev)");

    let mut report = MetricsReport::new(&format!("CoopRT {label}"));
    report.add_frame(&label, &frame);
    report.add_profiler(&profiler);
    // One report per scene/policy label: a fixed name would silently
    // overwrite earlier reports when exporting several runs into the
    // same directory.
    let metrics_path = format!("{}/{label}.metrics.json", args.out_dir);
    std::fs::write(&metrics_path, report.to_json()).expect("write metrics JSON");
    println!("wrote {metrics_path}");
}
