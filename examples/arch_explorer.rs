//! Architecture design-space exploration: sweep the RT warp-buffer
//! size, the LBU subwarp scope, the ray-reordering policy and the
//! ray-path predictor for one scene, reporting performance and the
//! hardware cost of each point — the §7.1/§7.5 trade-off study as a
//! reusable tool.
//!
//! The front end (raygen/shading) runs **once**: the scene is recorded
//! into an in-memory trace, and every sweep point replays the timing
//! model from that trace — no raygen, shading or BVH rebuild per
//! config. Replay is bitwise identical to live simulation (the
//! `golden_cycles` suite pins this), so the numbers are exactly the
//! ones a live sweep would produce, minus the redundant front-end
//! work. Points run concurrently via `cooprt_core::parallel`
//! (`COOPRT_THREADS` sets the width).
//!
//! ```sh
//! cargo run --release --example arch_explorer -- fox
//! # split the sweep across processes (machines): shard 0 of 2
//! cargo run --release --example arch_explorer -- fox --shard 0/2
//! ```

use cooprt::core::area::{cooprt_area, overhead_fraction, predict_table_bits, warp_buffer_bits};
use cooprt::core::{
    parallel, GpuConfig, PredictPolicy, ReorderPolicy, ShaderKind, Trace, TraversalPolicy,
};
use cooprt::scenes::ALL_SCENES;

/// One sweep point: a label, the timing config, and the policy.
struct Point {
    label: String,
    cfg: GpuConfig,
    policy: TraversalPolicy,
}

fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let (i, n) = spec
        .split_once('/')
        .ok_or_else(|| format!("--shard expects i/n, got '{spec}'"))?;
    let i: usize = i.parse().map_err(|_| "shard index must be an integer")?;
    let n: usize = n.parse().map_err(|_| "shard count must be an integer")?;
    if n == 0 || i >= n {
        return Err(format!("shard index {i} out of range for {n} shards"));
    }
    Ok((i, n))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scene_name = "party".to_string();
    let mut shard = (0usize, 1usize);
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--shard" => {
                i += 1;
                let spec = argv.get(i).unwrap_or_else(|| {
                    eprintln!("--shard requires a value (i/n)");
                    std::process::exit(2);
                });
                shard = parse_shard(spec).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            name => scene_name = name.to_string(),
        }
        i += 1;
    }
    let Some(id) = ALL_SCENES.iter().copied().find(|s| s.name() == scene_name) else {
        eprintln!("unknown scene '{scene_name}'");
        std::process::exit(1);
    };
    let detail = 16;
    let scene = id.build(detail);
    let res = 48;
    println!("design-space exploration on '{id}' ({res}x{res}, path tracing)\n");

    // Record the front end once under the reference point; every sweep
    // point below replays the timing model from this trace.
    let (reference, trace) = Trace::record(
        &scene,
        detail,
        &GpuConfig::rtx2060(),
        TraversalPolicy::Baseline,
        ShaderKind::PathTrace,
        res,
        res,
    )
    .unwrap();
    println!(
        "reference: 4-entry warp buffer, no CoopRT -> {} cycles",
        reference.cycles
    );
    println!(
        "recorded {} ray records ({} KiB encoded); replaying the sweep...\n",
        trace.total_records(),
        trace.encode().len() / 1024
    );

    // The 12-point sweep: warp-buffer sizes under the baseline policy,
    // LBU subwarp scopes under CoopRT, and the reorder axis under both
    // policies (reordering is timing-only, so the one unordered trace
    // replays every point).
    let mut points: Vec<Point> = Vec::new();
    for entries in [4usize, 8, 16, 32] {
        points.push(Point {
            label: format!("wb{entries}"),
            cfg: GpuConfig::rtx2060().with_warp_buffer(entries),
            policy: TraversalPolicy::Baseline,
        });
    }
    for sw in [4usize, 8, 16, 32] {
        points.push(Point {
            label: format!("sw{sw}"),
            cfg: GpuConfig::rtx2060().with_subwarp(sw),
            policy: TraversalPolicy::CoopRt,
        });
    }
    for reorder in [ReorderPolicy::Morton, ReorderPolicy::OctantHash] {
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let tag = match policy {
                TraversalPolicy::Baseline => "base",
                TraversalPolicy::CoopRt => "coop",
            };
            points.push(Point {
                label: format!("{}+{tag}", reorder.label()),
                cfg: GpuConfig::rtx2060().with_reorder(reorder),
                policy,
            });
        }
    }

    // Shard by index so `--shard i/n` processes partition the sweep.
    let (shard_idx, shard_count) = shard;
    let mine: Vec<Point> = points
        .into_iter()
        .enumerate()
        .filter(|(k, _)| k % shard_count == shard_idx)
        .map(|(_, p)| p)
        .collect();
    if shard_count > 1 {
        println!(
            "shard {shard_idx}/{shard_count}: {} of 12 sweep points\n",
            mine.len()
        );
    }

    let results = parallel::par_map(&mine, parallel::threads(), |_, p| {
        trace.replay(&p.cfg, p.policy).unwrap()
    });

    println!(
        "{:<16} {:>12} {:>10} {:>14} {:>10} {:>10}",
        "point", "cycles", "speedup", "storage(bits)", "cells", "overhead"
    );
    for (p, r) in mine.iter().zip(&results) {
        let speedup = reference.cycles as f64 / r.cycles as f64;
        if p.cfg.reorder != ReorderPolicy::Off {
            println!(
                "{:<16} {:>12} {:>9.2}x {:>14} {:>10} {:>10}",
                p.label, r.cycles, speedup, "-", "-", "-"
            );
            continue;
        }
        match p.policy {
            TraversalPolicy::Baseline => {
                let entries = p.cfg.warp_buffer_size;
                println!(
                    "{:<16} {:>12} {:>9.2}x {:>14} {:>10} {:>10}",
                    p.label,
                    r.cycles,
                    speedup,
                    warp_buffer_bits(entries),
                    "-",
                    "-"
                );
            }
            TraversalPolicy::CoopRt => {
                let sw = p.cfg.subwarp_size;
                println!(
                    "{:<16} {:>12} {:>9.2}x {:>14} {:>10} {:>9.2}%",
                    p.label,
                    r.cycles,
                    speedup,
                    "-",
                    cooprt_area(sw).cells(),
                    overhead_fraction(sw, 4) * 100.0
                );
            }
        }
    }

    // The ray-path predictor only steers any-hit traversals, so its
    // axis replays an ambient-occlusion recording of the same scene
    // (shard 0 only: four fast replays off one extra recording).
    if shard_idx == 0 {
        println!("\nray-path predictor axis (ambient occlusion, any-hit secondaries):");
        let (ao_ref, ao_trace) = Trace::record(
            &scene,
            detail,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::AmbientOcclusion,
            res,
            res,
        )
        .unwrap();
        let predict_points: Vec<(String, GpuConfig, TraversalPolicy)> =
            [TraversalPolicy::Baseline, TraversalPolicy::CoopRt]
                .into_iter()
                .map(|policy| {
                    let tag = match policy {
                        TraversalPolicy::Baseline => "base",
                        TraversalPolicy::CoopRt => "coop",
                    };
                    (
                        format!("ray-path+{tag}"),
                        GpuConfig::rtx2060().with_predict(PredictPolicy::RayPath),
                        policy,
                    )
                })
                .collect();
        let predict_results = parallel::par_map(&predict_points, parallel::threads(), |_, p| {
            ao_trace.replay(&p.1, p.2).unwrap()
        });
        println!(
            "{:<16} {:>12} {:>10} {:>14} {:>10} {:>12}",
            "point", "cycles", "speedup", "storage(bits)", "hit-rate", "saved-fetch"
        );
        for (p, r) in predict_points.iter().zip(&predict_results) {
            let speedup = ao_ref.cycles as f64 / r.cycles as f64;
            let hit_rate = if r.predictor.path_candidates > 0 {
                r.predictor.path_entry_hits as f64 / r.predictor.path_candidates as f64 * 100.0
            } else {
                0.0
            };
            println!(
                "{:<16} {:>12} {:>9.2}x {:>14} {:>9.1}% {:>12}",
                p.0,
                r.cycles,
                speedup,
                predict_table_bits(p.1.predictor_entries),
                hit_rate,
                r.predictor.node_fetches_saved
            );
        }
    }

    println!("\nconclusion (paper §7.1): CoopRT at 4 entries beats even the 32-entry");
    println!("baseline while adding <3% of the warp buffer's area.");
}
