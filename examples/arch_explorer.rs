//! Architecture design-space exploration: sweep the RT warp-buffer size
//! and the LBU subwarp scope for one scene, reporting performance and
//! the hardware cost of each point — the §7.1/§7.5 trade-off study as a
//! reusable tool.
//!
//! ```sh
//! cargo run --release --example arch_explorer -- fox
//! ```

use cooprt::core::area::{cooprt_area, overhead_fraction};
use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::ALL_SCENES;

fn main() {
    let scene_name = std::env::args().nth(1).unwrap_or_else(|| "party".into());
    let Some(id) = ALL_SCENES.iter().copied().find(|s| s.name() == scene_name) else {
        eprintln!("unknown scene '{scene_name}'");
        std::process::exit(1);
    };
    let scene = id.build(16);
    let res = 48;
    println!("design-space exploration on '{id}' ({res}x{res}, path tracing)\n");

    let baseline = Simulation::new(&scene, &GpuConfig::rtx2060(), TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, res, res)
        .unwrap();
    println!(
        "reference: 4-entry warp buffer, no CoopRT -> {} cycles\n",
        baseline.cycles
    );

    println!("--- warp-buffer size sweep (storage cost: 24,576 bits/entry) ---");
    println!(
        "{:<10} {:>12} {:>10} {:>14}",
        "entries", "cycles", "speedup", "storage(bits)"
    );
    for entries in [4usize, 8, 16, 32] {
        let cfg = GpuConfig::rtx2060().with_warp_buffer(entries);
        let r = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, res, res)
            .unwrap();
        println!(
            "{:<10} {:>12} {:>9.2}x {:>14}",
            entries,
            r.cycles,
            baseline.cycles as f64 / r.cycles as f64,
            cooprt::core::area::warp_buffer_bits(entries)
        );
    }

    println!("\n--- CoopRT subwarp sweep (4-entry warp buffer) ---");
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "subwarp", "cycles", "speedup", "cells", "overhead"
    );
    for sw in [4usize, 8, 16, 32] {
        let cfg = GpuConfig::rtx2060().with_subwarp(sw);
        let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, res, res)
            .unwrap();
        println!(
            "{:<10} {:>12} {:>9.2}x {:>10} {:>9.2}%",
            sw,
            r.cycles,
            baseline.cycles as f64 / r.cycles as f64,
            cooprt_area(sw).cells(),
            overhead_fraction(sw, 4) * 100.0
        );
    }

    println!("\nconclusion (paper §7.1): CoopRT at 4 entries beats even the 32-entry");
    println!("baseline while adding <3% of the warp buffer's area.");
}
