//! A runnable path tracer on the simulated GPU: renders any suite scene
//! to a PPM image and reports the architectural statistics of the run.
//!
//! ```sh
//! cargo run --release --example path_tracer -- crnvl 96 cooprt out.ppm
//! ```
//!
//! Arguments (all optional): scene name, resolution, policy
//! (`baseline`/`cooprt`), output path.

use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::ALL_SCENES;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scene_name = args.first().map(String::as_str).unwrap_or("party");
    let res: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let policy = match args.get(2).map(String::as_str) {
        Some("baseline") => TraversalPolicy::Baseline,
        _ => TraversalPolicy::CoopRt,
    };
    let out_path = args
        .get(3)
        .cloned()
        .unwrap_or_else(|| format!("{scene_name}.ppm"));

    let Some(id) = ALL_SCENES.iter().copied().find(|s| s.name() == scene_name) else {
        eprintln!("unknown scene '{scene_name}'; choose one of:");
        for s in ALL_SCENES {
            eprint!(" {s}");
        }
        eprintln!();
        std::process::exit(1);
    };

    let scene = id.build(16);
    let config = GpuConfig::rtx2060();
    println!(
        "rendering '{id}' at {res}x{res} under {} ({} triangles, {:.2} MiB BVH)",
        policy.label(),
        scene.triangle_count(),
        scene.stats.size_mib
    );

    let start = std::time::Instant::now();
    let frame = Simulation::new(&scene, &config, policy)
        .run_frame(ShaderKind::PathTrace, res, res)
        .unwrap();
    println!(
        "simulated {} GPU cycles ({:.2} ms at {:.0} MHz) in {:.1?} wall time",
        frame.cycles,
        frame.cycles as f64 / (config.mem.core_clock_mhz * 1e3),
        config.mem.core_clock_mhz,
        start.elapsed()
    );
    println!(
        "memory: L1 miss {:.1}%, L2 miss {:.1}%, DRAM {:.2} MB moved, utilization {:.1}%",
        frame.mem.l1.miss_rate() * 100.0,
        frame.mem.l2.miss_rate() * 100.0,
        frame.mem.dram_bytes as f64 / 1e6,
        frame.dram_utilization * 100.0
    );
    println!(
        "energy: {:.2} mJ total, {:.1} W average power",
        frame.energy.total_j() * 1e3,
        frame.energy.avg_power_w()
    );

    std::fs::write(&out_path, frame.image_buffer().to_ppm()).expect("write output file");
    println!("wrote {out_path}");
}
