//! Compares the three ray-tracing workloads of the paper — path
//! tracing, ambient occlusion and shadows — on one scene, showing why
//! CoopRT helps divergent PT far more than the coherent AO/SH shaders
//! (§7.3).
//!
//! ```sh
//! cargo run --release --example shader_compare -- bath
//! ```

use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::ALL_SCENES;

fn main() {
    let scene_name = std::env::args().nth(1).unwrap_or_else(|| "bath".into());
    let Some(id) = ALL_SCENES.iter().copied().find(|s| s.name() == scene_name) else {
        eprintln!("unknown scene '{scene_name}'");
        std::process::exit(1);
    };
    let scene = id.build(16);
    let cfg = GpuConfig::rtx2060();
    let res = 48;

    println!("shader comparison on '{id}' ({res}x{res})\n");
    println!(
        "{:<18} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "shader", "base cycles", "coop cycles", "speedup", "base util", "coop util"
    );
    for kind in [
        ShaderKind::PathTrace,
        ShaderKind::AmbientOcclusion,
        ShaderKind::Shadow,
    ] {
        let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .run_frame(kind, res, res)
            .unwrap();
        let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(kind, res, res)
            .unwrap();
        assert_eq!(base.image, coop.image);
        println!(
            "{:<18} {:>12} {:>12} {:>8.2}x {:>11.1}% {:>11.1}%",
            format!("{kind:?}"),
            base.cycles,
            coop.cycles,
            base.cycles as f64 / coop.cycles as f64,
            base.activity.avg_utilization() * 100.0,
            coop.activity.avg_utilization() * 100.0
        );
    }
    println!();
    println!("expected (paper Fig. 9/17): PT speedup >> AO >= SH, because AO and");
    println!("shadow rays are short and coherent while PT bounces diverge.");
}
