//! Quickstart: trace one frame on the baseline RT unit and on CoopRT,
//! verify they agree, and report the speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::SceneId;

fn main() {
    // Build a small procedural scene (the "Ray Tracing in One Weekend"
    // analog) and the Table 1 desktop GPU configuration.
    let scene = SceneId::Wknd.build(8);
    let config = GpuConfig::rtx2060();
    println!(
        "scene '{}': {} triangles, BVH {:.2} MiB, depth {}",
        scene.name,
        scene.triangle_count(),
        scene.stats.size_mib,
        scene.stats.depth
    );

    // Path-trace one 32x32 frame under both traversal policies.
    let base = Simulation::new(&scene, &config, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 32, 32)
        .unwrap();
    let coop = Simulation::new(&scene, &config, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 32, 32)
        .unwrap();

    // Cooperative traversal is functionally exact...
    assert_eq!(
        base.image, coop.image,
        "CoopRT must render the identical image"
    );
    println!("images identical across policies ✓");

    // ...and faster where warps diverge.
    println!(
        "baseline: {} cycles | CoopRT: {} cycles | speedup {:.2}x",
        base.cycles,
        coop.cycles,
        base.cycles as f64 / coop.cycles as f64
    );
    println!(
        "RT-unit thread utilization: {:.1}% -> {:.1}%",
        base.activity.avg_utilization() * 100.0,
        coop.activity.avg_utilization() * 100.0
    );
}
