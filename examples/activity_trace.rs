//! AerialVision-style activity tracing: dumps the per-interval RT-unit
//! thread-status samples of a run as CSV (the raw data behind the
//! paper's Figs. 2, 4 and 10) and sketches the busy-fraction curve.
//!
//! ```sh
//! cargo run --release --example activity_trace -- spnza cooprt trace.csv
//! ```

use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::ALL_SCENES;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scene_name = args.first().map(String::as_str).unwrap_or("spnza");
    let policy = match args.get(1).map(String::as_str) {
        Some("cooprt") => TraversalPolicy::CoopRt,
        _ => TraversalPolicy::Baseline,
    };
    let out_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| format!("{scene_name}_activity.csv"));

    let Some(id) = ALL_SCENES.iter().copied().find(|s| s.name() == scene_name) else {
        eprintln!("unknown scene '{scene_name}'");
        std::process::exit(1);
    };
    let scene = id.build(16);
    let cfg = GpuConfig::rtx2060();
    println!("tracing '{id}' under {} ...", policy.label());
    let frame = Simulation::new(&scene, &cfg, policy)
        .run_frame(ShaderKind::PathTrace, 48, 48)
        .unwrap();

    // CSV dump.
    let mut f = std::io::BufWriter::new(std::fs::File::create(&out_path).expect("create CSV"));
    writeln!(f, "cycle,busy,waiting,inactive,busy_fraction").expect("write header");
    for s in &frame.activity.samples {
        let present = s.present().max(1);
        writeln!(
            f,
            "{},{},{},{},{:.4}",
            s.cycle,
            s.busy,
            s.waiting,
            s.inactive,
            s.busy as f64 / present as f64
        )
        .expect("write row");
    }
    drop(f);
    println!(
        "wrote {} samples to {out_path}",
        frame.activity.samples.len()
    );

    // ASCII sketch of the Fig. 2 curve.
    println!("\nbusy-thread fraction over time:");
    let step = (frame.activity.samples.len() / 24).max(1);
    for s in frame.activity.samples.iter().step_by(step) {
        let frac = if s.present() == 0 {
            0.0
        } else {
            s.busy as f64 / s.present() as f64
        };
        println!(
            "{:>9} |{:<50}| {:.0}%",
            s.cycle,
            "#".repeat((frac * 50.0) as usize),
            frac * 100.0
        );
    }
    println!(
        "\naverage RT-unit utilization: {:.1}%  (status split busy/wait/inactive = {:.2}/{:.2}/{:.2})",
        frame.activity.avg_utilization() * 100.0,
        frame.activity.status_distribution()[0],
        frame.activity.status_distribution()[1],
        frame.activity.status_distribution()[2],
    );
}
