//! Differential fuzzing driver: replays seeds through every
//! `cooprt-check` oracle (cache/MSHR/calendar reference models, BVH vs
//! brute force, baseline-vs-CoopRT image identity with engine
//! invariants enabled), plus the JSON-parser fuzzer, the serve
//! result-cache identity oracle, the trace record/replay differential
//! (record → encode → decode → replay must be bitwise cycle- and
//! image-identical to live simulation under both policies), and the
//! ray-reordering differential (every reorder policy renders the
//! unordered image bitwise; sort keys are reproducible at any worker
//! count), and the predictor differential (intersection and ray-path
//! prediction — alone and stacked — render the speculation-free image
//! bitwise with honest stats counters), and the spatial-query
//! differential (kNN / radius / containment answers through the timing
//! model must equal a brute-force scan of the raw domain exactly).
//!
//! ```sh
//! # CI smoke: 64 consecutive seeds starting at 0.
//! cargo run --release --example simcheck -- --seeds 64
//!
//! # Fuzz the JSON parser, the serve result cache, and record/replay too.
//! cargo run --release --example simcheck -- --seeds 64 --json-seeds 256 \
//!     --serve-seeds 8 --trace-seeds 16 --reorder-seeds 8 --predict-seeds 8 \
//!     --query-seeds 8
//!
//! # Replay a failing seed reported by the fuzzer.
//! cargo run --release --example simcheck -- --seed 12345
//! cargo run --release --example simcheck -- --json-seed 12345
//! cargo run --release --example simcheck -- --serve-seed 12345
//! cargo run --release --example simcheck -- --trace-seed 12345
//! cargo run --release --example simcheck -- --reorder-seed 12345
//! cargo run --release --example simcheck -- --predict-seed 12345
//! cargo run --release --example simcheck -- --query-seed 12345
//! ```
//!
//! On failure the harness prints the shrunk, minimized configuration
//! (resolution halved, triangles dropped, warps shrunk — whatever still
//! reproduces), the diverging oracle, and the exact replay command,
//! then exits non-zero.

use cooprt_check::{
    fuzz, jsonfuzz, predictcheck, querycheck, reordercheck, servecache, tracecheck, FuzzCase,
};

struct Args {
    /// Replay exactly this seed (overrides the budget).
    seed: Option<u64>,
    /// Number of consecutive simulator seeds to run.
    seeds: u64,
    /// First seed of the budget.
    start: u64,
    /// Replay exactly this JSON-fuzzer seed.
    json_seed: Option<u64>,
    /// JSON-parser fuzzing budget (0 = skip).
    json_seeds: u64,
    /// Replay exactly this serve-cache seed.
    serve_seed: Option<u64>,
    /// Serve result-cache identity budget (0 = skip).
    serve_seeds: u64,
    /// Replay exactly this trace record/replay seed.
    trace_seed: Option<u64>,
    /// Trace record/replay differential budget (0 = skip).
    trace_seeds: u64,
    /// Replay exactly this ray-reordering seed.
    reorder_seed: Option<u64>,
    /// Ray-reordering differential budget (0 = skip).
    reorder_seeds: u64,
    /// Replay exactly this predictor seed.
    predict_seed: Option<u64>,
    /// Predictor differential budget (0 = skip).
    predict_seeds: u64,
    /// Replay exactly this spatial-query seed.
    query_seed: Option<u64>,
    /// Spatial-query differential budget (0 = skip).
    query_seeds: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: None,
        seeds: 64,
        start: 0,
        json_seed: None,
        json_seeds: 0,
        serve_seed: None,
        serve_seeds: 0,
        trace_seed: None,
        trace_seeds: 0,
        reorder_seed: None,
        reorder_seeds: 0,
        predict_seed: None,
        predict_seeds: 0,
        query_seed: None,
        query_seeds: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        let parse_u64 = |s: String| -> u64 {
            s.parse().unwrap_or_else(|_| {
                eprintln!("not a number: {s}");
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--seed" => args.seed = Some(parse_u64(value(&mut i))),
            "--seeds" => args.seeds = parse_u64(value(&mut i)),
            "--start" => args.start = parse_u64(value(&mut i)),
            "--json-seed" => args.json_seed = Some(parse_u64(value(&mut i))),
            "--json-seeds" => args.json_seeds = parse_u64(value(&mut i)),
            "--serve-seed" => args.serve_seed = Some(parse_u64(value(&mut i))),
            "--serve-seeds" => args.serve_seeds = parse_u64(value(&mut i)),
            "--trace-seed" => args.trace_seed = Some(parse_u64(value(&mut i))),
            "--trace-seeds" => args.trace_seeds = parse_u64(value(&mut i)),
            "--reorder-seed" => args.reorder_seed = Some(parse_u64(value(&mut i))),
            "--reorder-seeds" => args.reorder_seeds = parse_u64(value(&mut i)),
            "--predict-seed" => args.predict_seed = Some(parse_u64(value(&mut i))),
            "--predict-seeds" => args.predict_seeds = parse_u64(value(&mut i)),
            "--query-seed" => args.query_seed = Some(parse_u64(value(&mut i))),
            "--query-seeds" => args.query_seeds = parse_u64(value(&mut i)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: simcheck [--seed N | --seeds COUNT [--start FIRST]]\n\
                     \x20               [--json-seed N | --json-seeds COUNT]\n\
                     \x20               [--serve-seed N | --serve-seeds COUNT]\n\
                     \x20               [--trace-seed N | --trace-seeds COUNT]\n\
                     \x20               [--reorder-seed N | --reorder-seeds COUNT]\n\
                     \x20               [--predict-seed N | --predict-seeds COUNT]\n\
                     \x20               [--query-seed N | --query-seeds COUNT]\n\
                     \n\
                     --seed N          replay one seed through every simulator oracle\n\
                     --seeds COUNT     run COUNT consecutive seeds (default 64)\n\
                     --start FIRST     first seed of the budget (default 0)\n\
                     --json-seed N     replay one JSON-parser fuzz seed\n\
                     --json-seeds N    fuzz the JSON parser with N seeds (default 0)\n\
                     --serve-seed N    replay one serve cache-identity seed\n\
                     --serve-seeds N   fuzz the serve result cache with N seeds (default 0)\n\
                     --trace-seed N    replay one trace record/replay seed\n\
                     --trace-seeds N   fuzz trace record/replay with N seeds (default 0)\n\
                     --reorder-seed N  replay one ray-reordering seed\n\
                     --reorder-seeds N fuzz ray reordering with N seeds (default 0)\n\
                     --predict-seed N  replay one predictor seed\n\
                     --predict-seeds N fuzz the predictors with N seeds (default 0)\n\
                     --query-seed N    replay one spatial-query seed\n\
                     --query-seeds N   fuzz spatial queries with N seeds (default 0)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn fail(failure: impl std::fmt::Display) -> ! {
    eprintln!("{failure}");
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    if let Some(seed) = args.json_seed {
        match jsonfuzz::run_json_seed(seed) {
            Ok(()) => println!("json seed {seed}: parser behaved"),
            Err(failure) => fail(failure),
        }
        return;
    }
    if let Some(seed) = args.serve_seed {
        match servecache::run_serve_seed(seed) {
            Ok(()) => println!("serve seed {seed}: cache hit identical to fresh run"),
            Err(failure) => fail(failure),
        }
        return;
    }
    if let Some(seed) = args.trace_seed {
        println!(
            "replaying trace differential on {}",
            FuzzCase::from_seed(seed)
        );
        match tracecheck::run_trace_seed(seed) {
            Ok(()) => println!("trace seed {seed}: record/replay bitwise identical to live"),
            Err(failure) => fail(failure),
        }
        return;
    }
    if let Some(seed) = args.predict_seed {
        println!(
            "replaying predictor differential on {}",
            FuzzCase::from_seed(seed)
        );
        match predictcheck::run_predict_seed(seed) {
            Ok(()) => {
                println!("predict seed {seed}: speculative images bitwise identical, stats honest")
            }
            Err(failure) => fail(failure),
        }
        return;
    }
    if let Some(seed) = args.query_seed {
        println!(
            "replaying query differential on {}",
            FuzzCase::from_seed(seed)
        );
        match querycheck::run_query_seed(seed) {
            Ok(()) => {
                println!("query seed {seed}: engine answers exactly match brute force")
            }
            Err(failure) => fail(failure),
        }
        return;
    }
    if let Some(seed) = args.reorder_seed {
        println!(
            "replaying reorder differential on {}",
            FuzzCase::from_seed(seed)
        );
        match reordercheck::run_reorder_seed(seed) {
            Ok(()) => println!(
                "reorder seed {seed}: reordered images bitwise identical, keys deterministic"
            ),
            Err(failure) => fail(failure),
        }
        return;
    }
    if let Some(seed) = args.seed {
        println!("replaying {}", FuzzCase::from_seed(seed));
        match fuzz::run_seed(seed) {
            Ok(()) => println!("seed {seed}: every oracle agrees"),
            Err(failure) => fail(failure),
        }
        return;
    }
    println!(
        "fuzzing {} seeds starting at {} (differential oracles: cache, mshr, \
         calendar, bvh, image identity, engine invariants)",
        args.seeds, args.start
    );
    match fuzz::run_budget(args.start, args.seeds) {
        Ok(count) => println!("{count}/{count} seeds passed"),
        Err(failure) => fail(failure),
    }
    if args.json_seeds > 0 {
        println!(
            "fuzzing the JSON parser: adversarial corpus + {} seeds",
            args.json_seeds
        );
        match jsonfuzz::run_json_budget(args.start, args.json_seeds) {
            Ok(count) => println!("{count}/{count} json seeds passed"),
            Err(failure) => fail(failure),
        }
    }
    if args.serve_seeds > 0 {
        println!(
            "fuzzing serve result-cache identity: {} seeds",
            args.serve_seeds
        );
        match servecache::run_serve_budget(args.start, args.serve_seeds) {
            Ok(count) => println!("{count}/{count} serve seeds passed"),
            Err(failure) => fail(failure),
        }
    }
    if args.trace_seeds > 0 {
        println!(
            "fuzzing trace record/replay identity: {} seeds",
            args.trace_seeds
        );
        match tracecheck::run_trace_budget(args.start, args.trace_seeds) {
            Ok(count) => println!("{count}/{count} trace seeds passed"),
            Err(failure) => fail(failure),
        }
    }
    if args.reorder_seeds > 0 {
        println!(
            "fuzzing ray-reordering identity: {} seeds",
            args.reorder_seeds
        );
        match reordercheck::run_reorder_budget(args.start, args.reorder_seeds) {
            Ok(count) => println!("{count}/{count} reorder seeds passed"),
            Err(failure) => fail(failure),
        }
    }
    if args.predict_seeds > 0 {
        println!(
            "fuzzing predictor image identity: {} seeds",
            args.predict_seeds
        );
        match predictcheck::run_predict_budget(args.start, args.predict_seeds) {
            Ok(count) => println!("{count}/{count} predict seeds passed"),
            Err(failure) => fail(failure),
        }
    }
    if args.query_seeds > 0 {
        println!(
            "fuzzing spatial-query exactness: {} seeds",
            args.query_seeds
        );
        match querycheck::run_query_budget(args.start, args.query_seeds) {
            Ok(count) => println!("{count}/{count} query seeds passed"),
            Err(failure) => fail(failure),
        }
    }
}
