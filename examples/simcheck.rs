//! Differential fuzzing driver: replays seeds through every
//! `cooprt-check` oracle (cache/MSHR/calendar reference models, BVH vs
//! brute force, baseline-vs-CoopRT image identity with engine
//! invariants enabled).
//!
//! ```sh
//! # CI smoke: 64 consecutive seeds starting at 0.
//! cargo run --release --example simcheck -- --seeds 64
//!
//! # Replay a failing seed reported by the fuzzer.
//! cargo run --release --example simcheck -- --seed 12345
//! ```
//!
//! On failure the harness prints the shrunk, minimized configuration
//! (resolution halved, triangles dropped, warps shrunk — whatever still
//! reproduces), the diverging oracle, and the exact replay command,
//! then exits non-zero.

use cooprt_check::{fuzz, FuzzCase};

struct Args {
    /// Replay exactly this seed (overrides the budget).
    seed: Option<u64>,
    /// Number of consecutive seeds to run.
    seeds: u64,
    /// First seed of the budget.
    start: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: None,
        seeds: 64,
        start: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        let parse_u64 = |s: String| -> u64 {
            s.parse().unwrap_or_else(|_| {
                eprintln!("not a number: {s}");
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--seed" => args.seed = Some(parse_u64(value(&mut i))),
            "--seeds" => args.seeds = parse_u64(value(&mut i)),
            "--start" => args.start = parse_u64(value(&mut i)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: simcheck [--seed N | --seeds COUNT [--start FIRST]]\n\
                     \n\
                     --seed N       replay one seed through every oracle\n\
                     --seeds COUNT  run COUNT consecutive seeds (default 64)\n\
                     --start FIRST  first seed of the budget (default 0)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    if let Some(seed) = args.seed {
        println!("replaying {}", FuzzCase::from_seed(seed));
        match fuzz::run_seed(seed) {
            Ok(()) => println!("seed {seed}: every oracle agrees"),
            Err(failure) => {
                eprintln!("{failure}");
                std::process::exit(1);
            }
        }
        return;
    }
    println!(
        "fuzzing {} seeds starting at {} (differential oracles: cache, mshr, \
         calendar, bvh, image identity, engine invariants)",
        args.seeds, args.start
    );
    match fuzz::run_budget(args.start, args.seeds) {
        Ok(count) => println!("{count}/{count} seeds passed"),
        Err(failure) => {
            eprintln!("{failure}");
            std::process::exit(1);
        }
    }
}
