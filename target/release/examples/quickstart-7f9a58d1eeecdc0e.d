/root/repo/target/release/examples/quickstart-7f9a58d1eeecdc0e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7f9a58d1eeecdc0e: examples/quickstart.rs

examples/quickstart.rs:
