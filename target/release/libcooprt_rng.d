/root/repo/target/release/libcooprt_rng.rlib: /root/repo/crates/rng/src/lib.rs
