/root/repo/target/release/deps/cooprt-c6ed252cb0df0da3.d: src/bin/cooprt.rs

/root/repo/target/release/deps/cooprt-c6ed252cb0df0da3: src/bin/cooprt.rs

src/bin/cooprt.rs:
