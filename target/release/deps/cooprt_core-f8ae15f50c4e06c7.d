/root/repo/target/release/deps/cooprt_core-f8ae15f50c4e06c7.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs

/root/repo/target/release/deps/libcooprt_core-f8ae15f50c4e06c7.rlib: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs

/root/repo/target/release/deps/libcooprt_core-f8ae15f50c4e06c7.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/latency.rs:
crates/core/src/lbu.rs:
crates/core/src/parallel.rs:
crates/core/src/predictor.rs:
crates/core/src/rtunit.rs:
crates/core/src/shader.rs:
