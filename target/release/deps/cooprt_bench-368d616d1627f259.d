/root/repo/target/release/deps/cooprt_bench-368d616d1627f259.d: crates/bench/src/lib.rs crates/bench/src/perf.rs

/root/repo/target/release/deps/libcooprt_bench-368d616d1627f259.rlib: crates/bench/src/lib.rs crates/bench/src/perf.rs

/root/repo/target/release/deps/libcooprt_bench-368d616d1627f259.rmeta: crates/bench/src/lib.rs crates/bench/src/perf.rs

crates/bench/src/lib.rs:
crates/bench/src/perf.rs:
