/root/repo/target/release/deps/cooprt_bvh-39347fad022f7cbc.d: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs

/root/repo/target/release/deps/libcooprt_bvh-39347fad022f7cbc.rlib: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs

/root/repo/target/release/deps/libcooprt_bvh-39347fad022f7cbc.rmeta: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs

crates/bvh/src/lib.rs:
crates/bvh/src/builder.rs:
crates/bvh/src/image.rs:
crates/bvh/src/stats.rs:
crates/bvh/src/traverse.rs:
crates/bvh/src/wide.rs:
