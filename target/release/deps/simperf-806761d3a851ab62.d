/root/repo/target/release/deps/simperf-806761d3a851ab62.d: crates/bench/benches/simperf.rs

/root/repo/target/release/deps/simperf-806761d3a851ab62: crates/bench/benches/simperf.rs

crates/bench/benches/simperf.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
