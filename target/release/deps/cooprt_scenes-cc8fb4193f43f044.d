/root/repo/target/release/deps/cooprt_scenes-cc8fb4193f43f044.d: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs

/root/repo/target/release/deps/libcooprt_scenes-cc8fb4193f43f044.rlib: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs

/root/repo/target/release/deps/libcooprt_scenes-cc8fb4193f43f044.rmeta: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs

crates/scenes/src/lib.rs:
crates/scenes/src/camera.rs:
crates/scenes/src/generators.rs:
crates/scenes/src/material.rs:
crates/scenes/src/scene.rs:
crates/scenes/src/sky.rs:
crates/scenes/src/suite.rs:
