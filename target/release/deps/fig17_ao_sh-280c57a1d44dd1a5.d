/root/repo/target/release/deps/fig17_ao_sh-280c57a1d44dd1a5.d: crates/bench/benches/fig17_ao_sh.rs

/root/repo/target/release/deps/fig17_ao_sh-280c57a1d44dd1a5: crates/bench/benches/fig17_ao_sh.rs

crates/bench/benches/fig17_ao_sh.rs:
