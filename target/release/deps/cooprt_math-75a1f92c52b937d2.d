/root/repo/target/release/deps/cooprt_math-75a1f92c52b937d2.d: crates/math/src/lib.rs crates/math/src/aabb.rs crates/math/src/color.rs crates/math/src/image.rs crates/math/src/onb.rs crates/math/src/ray.rs crates/math/src/sampling.rs crates/math/src/triangle.rs crates/math/src/vec3.rs

/root/repo/target/release/deps/libcooprt_math-75a1f92c52b937d2.rlib: crates/math/src/lib.rs crates/math/src/aabb.rs crates/math/src/color.rs crates/math/src/image.rs crates/math/src/onb.rs crates/math/src/ray.rs crates/math/src/sampling.rs crates/math/src/triangle.rs crates/math/src/vec3.rs

/root/repo/target/release/deps/libcooprt_math-75a1f92c52b937d2.rmeta: crates/math/src/lib.rs crates/math/src/aabb.rs crates/math/src/color.rs crates/math/src/image.rs crates/math/src/onb.rs crates/math/src/ray.rs crates/math/src/sampling.rs crates/math/src/triangle.rs crates/math/src/vec3.rs

crates/math/src/lib.rs:
crates/math/src/aabb.rs:
crates/math/src/color.rs:
crates/math/src/image.rs:
crates/math/src/onb.rs:
crates/math/src/ray.rs:
crates/math/src/sampling.rs:
crates/math/src/triangle.rs:
crates/math/src/vec3.rs:
