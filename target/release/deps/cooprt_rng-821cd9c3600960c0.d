/root/repo/target/release/deps/cooprt_rng-821cd9c3600960c0.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libcooprt_rng-821cd9c3600960c0.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libcooprt_rng-821cd9c3600960c0.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
