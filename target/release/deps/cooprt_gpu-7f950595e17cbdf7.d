/root/repo/target/release/deps/cooprt_gpu-7f950595e17cbdf7.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs

/root/repo/target/release/deps/libcooprt_gpu-7f950595e17cbdf7.rlib: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs

/root/repo/target/release/deps/libcooprt_gpu-7f950595e17cbdf7.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/dram.rs:
crates/gpu/src/hierarchy.rs:
crates/gpu/src/mshr.rs:
crates/gpu/src/power.rs:
