/root/repo/target/release/deps/cooprt-7308708ed1d550e5.d: src/lib.rs

/root/repo/target/release/deps/libcooprt-7308708ed1d550e5.rlib: src/lib.rs

/root/repo/target/release/deps/libcooprt-7308708ed1d550e5.rmeta: src/lib.rs

src/lib.rs:
