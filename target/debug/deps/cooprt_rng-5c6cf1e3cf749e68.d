/root/repo/target/debug/deps/cooprt_rng-5c6cf1e3cf749e68.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_rng-5c6cf1e3cf749e68.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
