/root/repo/target/debug/deps/determinism-238163270d0cdb6b.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-238163270d0cdb6b: tests/determinism.rs

tests/determinism.rs:
