/root/repo/target/debug/deps/fig13_warp_buffer_sweep-d1a405a61ca5a25f.d: crates/bench/benches/fig13_warp_buffer_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_warp_buffer_sweep-d1a405a61ca5a25f.rmeta: crates/bench/benches/fig13_warp_buffer_sweep.rs Cargo.toml

crates/bench/benches/fig13_warp_buffer_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
