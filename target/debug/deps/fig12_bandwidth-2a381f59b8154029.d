/root/repo/target/debug/deps/fig12_bandwidth-2a381f59b8154029.d: crates/bench/benches/fig12_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_bandwidth-2a381f59b8154029.rmeta: crates/bench/benches/fig12_bandwidth.rs Cargo.toml

crates/bench/benches/fig12_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
