/root/repo/target/debug/deps/rendering_quality-04468ccc190eee5b.d: tests/rendering_quality.rs Cargo.toml

/root/repo/target/debug/deps/librendering_quality-04468ccc190eee5b.rmeta: tests/rendering_quality.rs Cargo.toml

tests/rendering_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
