/root/repo/target/debug/deps/cooprt_math-3434485aae77b599.d: crates/math/src/lib.rs crates/math/src/aabb.rs crates/math/src/color.rs crates/math/src/image.rs crates/math/src/onb.rs crates/math/src/ray.rs crates/math/src/sampling.rs crates/math/src/triangle.rs crates/math/src/vec3.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_math-3434485aae77b599.rmeta: crates/math/src/lib.rs crates/math/src/aabb.rs crates/math/src/color.rs crates/math/src/image.rs crates/math/src/onb.rs crates/math/src/ray.rs crates/math/src/sampling.rs crates/math/src/triangle.rs crates/math/src/vec3.rs Cargo.toml

crates/math/src/lib.rs:
crates/math/src/aabb.rs:
crates/math/src/color.rs:
crates/math/src/image.rs:
crates/math/src/onb.rs:
crates/math/src/ray.rs:
crates/math/src/sampling.rs:
crates/math/src/triangle.rs:
crates/math/src/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
