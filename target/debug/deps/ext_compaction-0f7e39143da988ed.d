/root/repo/target/debug/deps/ext_compaction-0f7e39143da988ed.d: crates/bench/benches/ext_compaction.rs Cargo.toml

/root/repo/target/debug/deps/libext_compaction-0f7e39143da988ed.rmeta: crates/bench/benches/ext_compaction.rs Cargo.toml

crates/bench/benches/ext_compaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
