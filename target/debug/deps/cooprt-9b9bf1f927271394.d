/root/repo/target/debug/deps/cooprt-9b9bf1f927271394.d: src/lib.rs

/root/repo/target/debug/deps/libcooprt-9b9bf1f927271394.rlib: src/lib.rs

/root/repo/target/debug/deps/libcooprt-9b9bf1f927271394.rmeta: src/lib.rs

src/lib.rs:
