/root/repo/target/debug/deps/cooprt_gpu-667a7b212f6f325c.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_gpu-667a7b212f6f325c.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/dram.rs:
crates/gpu/src/hierarchy.rs:
crates/gpu/src/mshr.rs:
crates/gpu/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
