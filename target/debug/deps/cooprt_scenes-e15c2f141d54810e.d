/root/repo/target/debug/deps/cooprt_scenes-e15c2f141d54810e.d: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs

/root/repo/target/debug/deps/cooprt_scenes-e15c2f141d54810e: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs

crates/scenes/src/lib.rs:
crates/scenes/src/camera.rs:
crates/scenes/src/generators.rs:
crates/scenes/src/material.rs:
crates/scenes/src/scene.rs:
crates/scenes/src/sky.rs:
crates/scenes/src/suite.rs:
