/root/repo/target/debug/deps/ext_predictor-d430bb8ec9db6289.d: crates/bench/benches/ext_predictor.rs Cargo.toml

/root/repo/target/debug/deps/libext_predictor-d430bb8ec9db6289.rmeta: crates/bench/benches/ext_predictor.rs Cargo.toml

crates/bench/benches/ext_predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
