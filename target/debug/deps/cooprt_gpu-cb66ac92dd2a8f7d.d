/root/repo/target/debug/deps/cooprt_gpu-cb66ac92dd2a8f7d.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs

/root/repo/target/debug/deps/cooprt_gpu-cb66ac92dd2a8f7d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/dram.rs:
crates/gpu/src/hierarchy.rs:
crates/gpu/src/mshr.rs:
crates/gpu/src/power.rs:
