/root/repo/target/debug/deps/supp_latency-167d3a0c33f9c764.d: crates/bench/benches/supp_latency.rs Cargo.toml

/root/repo/target/debug/deps/libsupp_latency-167d3a0c33f9c764.rmeta: crates/bench/benches/supp_latency.rs Cargo.toml

crates/bench/benches/supp_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
