/root/repo/target/debug/deps/micro_kernels-c8055663e6b51de4.d: crates/bench/benches/micro_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_kernels-c8055663e6b51de4.rmeta: crates/bench/benches/micro_kernels.rs Cargo.toml

crates/bench/benches/micro_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
