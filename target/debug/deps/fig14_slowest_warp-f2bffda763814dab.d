/root/repo/target/debug/deps/fig14_slowest_warp-f2bffda763814dab.d: crates/bench/benches/fig14_slowest_warp.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_slowest_warp-f2bffda763814dab.rmeta: crates/bench/benches/fig14_slowest_warp.rs Cargo.toml

crates/bench/benches/fig14_slowest_warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
