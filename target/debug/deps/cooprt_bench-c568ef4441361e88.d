/root/repo/target/debug/deps/cooprt_bench-c568ef4441361e88.d: crates/bench/src/lib.rs crates/bench/src/perf.rs

/root/repo/target/debug/deps/cooprt_bench-c568ef4441361e88: crates/bench/src/lib.rs crates/bench/src/perf.rs

crates/bench/src/lib.rs:
crates/bench/src/perf.rs:
