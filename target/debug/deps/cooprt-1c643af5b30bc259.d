/root/repo/target/debug/deps/cooprt-1c643af5b30bc259.d: src/bin/cooprt.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt-1c643af5b30bc259.rmeta: src/bin/cooprt.rs Cargo.toml

src/bin/cooprt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
