/root/repo/target/debug/deps/cooprt_core-21191d03d7daca79.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_core-21191d03d7daca79.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/latency.rs:
crates/core/src/lbu.rs:
crates/core/src/parallel.rs:
crates/core/src/predictor.rs:
crates/core/src/rtunit.rs:
crates/core/src/shader.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
