/root/repo/target/debug/deps/cooprt-fa6e10948da2d27c.d: src/lib.rs

/root/repo/target/debug/deps/cooprt-fa6e10948da2d27c: src/lib.rs

src/lib.rs:
