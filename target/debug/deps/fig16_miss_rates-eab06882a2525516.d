/root/repo/target/debug/deps/fig16_miss_rates-eab06882a2525516.d: crates/bench/benches/fig16_miss_rates.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_miss_rates-eab06882a2525516.rmeta: crates/bench/benches/fig16_miss_rates.rs Cargo.toml

crates/bench/benches/fig16_miss_rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
