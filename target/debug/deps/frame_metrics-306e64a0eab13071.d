/root/repo/target/debug/deps/frame_metrics-306e64a0eab13071.d: tests/frame_metrics.rs

/root/repo/target/debug/deps/frame_metrics-306e64a0eab13071: tests/frame_metrics.rs

tests/frame_metrics.rs:
