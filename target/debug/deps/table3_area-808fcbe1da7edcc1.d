/root/repo/target/debug/deps/table3_area-808fcbe1da7edcc1.d: crates/bench/benches/table3_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_area-808fcbe1da7edcc1.rmeta: crates/bench/benches/table3_area.rs Cargo.toml

crates/bench/benches/table3_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
