/root/repo/target/debug/deps/paper_claims-0496c596897f48bb.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-0496c596897f48bb: tests/paper_claims.rs

tests/paper_claims.rs:
