/root/repo/target/debug/deps/fig04_thread_status-ca5c38507cb21426.d: crates/bench/benches/fig04_thread_status.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_thread_status-ca5c38507cb21426.rmeta: crates/bench/benches/fig04_thread_status.rs Cargo.toml

crates/bench/benches/fig04_thread_status.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
