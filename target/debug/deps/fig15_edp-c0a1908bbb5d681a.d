/root/repo/target/debug/deps/fig15_edp-c0a1908bbb5d681a.d: crates/bench/benches/fig15_edp.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_edp-c0a1908bbb5d681a.rmeta: crates/bench/benches/fig15_edp.rs Cargo.toml

crates/bench/benches/fig15_edp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
