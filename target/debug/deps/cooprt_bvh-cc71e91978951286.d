/root/repo/target/debug/deps/cooprt_bvh-cc71e91978951286.d: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_bvh-cc71e91978951286.rmeta: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs Cargo.toml

crates/bvh/src/lib.rs:
crates/bvh/src/builder.rs:
crates/bvh/src/image.rs:
crates/bvh/src/stats.rs:
crates/bvh/src/traverse.rs:
crates/bvh/src/wide.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
