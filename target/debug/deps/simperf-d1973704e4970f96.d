/root/repo/target/debug/deps/simperf-d1973704e4970f96.d: crates/bench/benches/simperf.rs Cargo.toml

/root/repo/target/debug/deps/libsimperf-d1973704e4970f96.rmeta: crates/bench/benches/simperf.rs Cargo.toml

crates/bench/benches/simperf.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
