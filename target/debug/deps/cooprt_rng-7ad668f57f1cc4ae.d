/root/repo/target/debug/deps/cooprt_rng-7ad668f57f1cc4ae.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libcooprt_rng-7ad668f57f1cc4ae.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libcooprt_rng-7ad668f57f1cc4ae.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
