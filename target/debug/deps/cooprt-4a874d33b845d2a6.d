/root/repo/target/debug/deps/cooprt-4a874d33b845d2a6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt-4a874d33b845d2a6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
