/root/repo/target/debug/deps/properties-d904be04d9e09c85.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d904be04d9e09c85: tests/properties.rs

tests/properties.rs:
