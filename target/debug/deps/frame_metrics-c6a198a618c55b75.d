/root/repo/target/debug/deps/frame_metrics-c6a198a618c55b75.d: tests/frame_metrics.rs Cargo.toml

/root/repo/target/debug/deps/libframe_metrics-c6a198a618c55b75.rmeta: tests/frame_metrics.rs Cargo.toml

tests/frame_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
