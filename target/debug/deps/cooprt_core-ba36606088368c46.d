/root/repo/target/debug/deps/cooprt_core-ba36606088368c46.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs

/root/repo/target/debug/deps/libcooprt_core-ba36606088368c46.rlib: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs

/root/repo/target/debug/deps/libcooprt_core-ba36606088368c46.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/latency.rs:
crates/core/src/lbu.rs:
crates/core/src/parallel.rs:
crates/core/src/predictor.rs:
crates/core/src/rtunit.rs:
crates/core/src/shader.rs:
