/root/repo/target/debug/deps/cooprt_bench-a56ff3945e6414df.d: crates/bench/src/lib.rs crates/bench/src/perf.rs

/root/repo/target/debug/deps/libcooprt_bench-a56ff3945e6414df.rlib: crates/bench/src/lib.rs crates/bench/src/perf.rs

/root/repo/target/debug/deps/libcooprt_bench-a56ff3945e6414df.rmeta: crates/bench/src/lib.rs crates/bench/src/perf.rs

crates/bench/src/lib.rs:
crates/bench/src/perf.rs:
