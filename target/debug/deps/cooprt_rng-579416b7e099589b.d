/root/repo/target/debug/deps/cooprt_rng-579416b7e099589b.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_rng-579416b7e099589b.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
