/root/repo/target/debug/deps/cooprt_bvh-18a28fa424240867.d: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs

/root/repo/target/debug/deps/libcooprt_bvh-18a28fa424240867.rlib: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs

/root/repo/target/debug/deps/libcooprt_bvh-18a28fa424240867.rmeta: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs

crates/bvh/src/lib.rs:
crates/bvh/src/builder.rs:
crates/bvh/src/image.rs:
crates/bvh/src/stats.rs:
crates/bvh/src/traverse.rs:
crates/bvh/src/wide.rs:
