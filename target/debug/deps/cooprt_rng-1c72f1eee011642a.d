/root/repo/target/debug/deps/cooprt_rng-1c72f1eee011642a.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/cooprt_rng-1c72f1eee011642a: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
