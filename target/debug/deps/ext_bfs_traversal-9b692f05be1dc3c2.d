/root/repo/target/debug/deps/ext_bfs_traversal-9b692f05be1dc3c2.d: crates/bench/benches/ext_bfs_traversal.rs Cargo.toml

/root/repo/target/debug/deps/libext_bfs_traversal-9b692f05be1dc3c2.rmeta: crates/bench/benches/ext_bfs_traversal.rs Cargo.toml

crates/bench/benches/ext_bfs_traversal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
