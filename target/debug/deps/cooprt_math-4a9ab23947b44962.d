/root/repo/target/debug/deps/cooprt_math-4a9ab23947b44962.d: crates/math/src/lib.rs crates/math/src/aabb.rs crates/math/src/color.rs crates/math/src/image.rs crates/math/src/onb.rs crates/math/src/ray.rs crates/math/src/sampling.rs crates/math/src/triangle.rs crates/math/src/vec3.rs

/root/repo/target/debug/deps/libcooprt_math-4a9ab23947b44962.rlib: crates/math/src/lib.rs crates/math/src/aabb.rs crates/math/src/color.rs crates/math/src/image.rs crates/math/src/onb.rs crates/math/src/ray.rs crates/math/src/sampling.rs crates/math/src/triangle.rs crates/math/src/vec3.rs

/root/repo/target/debug/deps/libcooprt_math-4a9ab23947b44962.rmeta: crates/math/src/lib.rs crates/math/src/aabb.rs crates/math/src/color.rs crates/math/src/image.rs crates/math/src/onb.rs crates/math/src/ray.rs crates/math/src/sampling.rs crates/math/src/triangle.rs crates/math/src/vec3.rs

crates/math/src/lib.rs:
crates/math/src/aabb.rs:
crates/math/src/color.rs:
crates/math/src/image.rs:
crates/math/src/onb.rs:
crates/math/src/ray.rs:
crates/math/src/sampling.rs:
crates/math/src/triangle.rs:
crates/math/src/vec3.rs:
