/root/repo/target/debug/deps/fig18_mobile-b903a865d4ae6b25.d: crates/bench/benches/fig18_mobile.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_mobile-b903a865d4ae6b25.rmeta: crates/bench/benches/fig18_mobile.rs Cargo.toml

crates/bench/benches/fig18_mobile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
