/root/repo/target/debug/deps/fig01_stall_breakdown-ee6013a122e372bd.d: crates/bench/benches/fig01_stall_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_stall_breakdown-ee6013a122e372bd.rmeta: crates/bench/benches/fig01_stall_breakdown.rs Cargo.toml

crates/bench/benches/fig01_stall_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
