/root/repo/target/debug/deps/parallel-44efcbfbbd80d4ca.d: crates/bench/tests/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-44efcbfbbd80d4ca.rmeta: crates/bench/tests/parallel.rs Cargo.toml

crates/bench/tests/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
