/root/repo/target/debug/deps/fig19_subwarp_sweep-719bcc268c7bb3ea.d: crates/bench/benches/fig19_subwarp_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_subwarp_sweep-719bcc268c7bb3ea.rmeta: crates/bench/benches/fig19_subwarp_sweep.rs Cargo.toml

crates/bench/benches/fig19_subwarp_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
