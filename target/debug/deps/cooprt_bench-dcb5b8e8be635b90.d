/root/repo/target/debug/deps/cooprt_bench-dcb5b8e8be635b90.d: crates/bench/src/lib.rs crates/bench/src/perf.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_bench-dcb5b8e8be635b90.rmeta: crates/bench/src/lib.rs crates/bench/src/perf.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
