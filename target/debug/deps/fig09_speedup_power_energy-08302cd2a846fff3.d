/root/repo/target/debug/deps/fig09_speedup_power_energy-08302cd2a846fff3.d: crates/bench/benches/fig09_speedup_power_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_speedup_power_energy-08302cd2a846fff3.rmeta: crates/bench/benches/fig09_speedup_power_energy.rs Cargo.toml

crates/bench/benches/fig09_speedup_power_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
