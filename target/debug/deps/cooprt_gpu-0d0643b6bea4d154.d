/root/repo/target/debug/deps/cooprt_gpu-0d0643b6bea4d154.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs

/root/repo/target/debug/deps/libcooprt_gpu-0d0643b6bea4d154.rlib: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs

/root/repo/target/debug/deps/libcooprt_gpu-0d0643b6bea4d154.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/dram.rs crates/gpu/src/hierarchy.rs crates/gpu/src/mshr.rs crates/gpu/src/power.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/dram.rs:
crates/gpu/src/hierarchy.rs:
crates/gpu/src/mshr.rs:
crates/gpu/src/power.rs:
