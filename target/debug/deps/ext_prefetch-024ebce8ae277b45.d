/root/repo/target/debug/deps/ext_prefetch-024ebce8ae277b45.d: crates/bench/benches/ext_prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libext_prefetch-024ebce8ae277b45.rmeta: crates/bench/benches/ext_prefetch.rs Cargo.toml

crates/bench/benches/ext_prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
