/root/repo/target/debug/deps/cooprt_scenes-0deb28777a3b20a1.d: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_scenes-0deb28777a3b20a1.rmeta: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs Cargo.toml

crates/scenes/src/lib.rs:
crates/scenes/src/camera.rs:
crates/scenes/src/generators.rs:
crates/scenes/src/material.rs:
crates/scenes/src/scene.rs:
crates/scenes/src/sky.rs:
crates/scenes/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
