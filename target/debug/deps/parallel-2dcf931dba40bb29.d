/root/repo/target/debug/deps/parallel-2dcf931dba40bb29.d: crates/bench/tests/parallel.rs

/root/repo/target/debug/deps/parallel-2dcf931dba40bb29: crates/bench/tests/parallel.rs

crates/bench/tests/parallel.rs:
