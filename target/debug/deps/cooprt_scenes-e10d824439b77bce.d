/root/repo/target/debug/deps/cooprt_scenes-e10d824439b77bce.d: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs

/root/repo/target/debug/deps/libcooprt_scenes-e10d824439b77bce.rlib: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs

/root/repo/target/debug/deps/libcooprt_scenes-e10d824439b77bce.rmeta: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs

crates/scenes/src/lib.rs:
crates/scenes/src/camera.rs:
crates/scenes/src/generators.rs:
crates/scenes/src/material.rs:
crates/scenes/src/scene.rs:
crates/scenes/src/sky.rs:
crates/scenes/src/suite.rs:
