/root/repo/target/debug/deps/fig10_thread_utilization-d8ca3eb4b2f5557c.d: crates/bench/benches/fig10_thread_utilization.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_thread_utilization-d8ca3eb4b2f5557c.rmeta: crates/bench/benches/fig10_thread_utilization.rs Cargo.toml

crates/bench/benches/fig10_thread_utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
