/root/repo/target/debug/deps/fig02_thread_activity-1deafb7c884735af.d: crates/bench/benches/fig02_thread_activity.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_thread_activity-1deafb7c884735af.rmeta: crates/bench/benches/fig02_thread_activity.rs Cargo.toml

crates/bench/benches/fig02_thread_activity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
