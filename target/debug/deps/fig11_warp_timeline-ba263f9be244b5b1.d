/root/repo/target/debug/deps/fig11_warp_timeline-ba263f9be244b5b1.d: crates/bench/benches/fig11_warp_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_warp_timeline-ba263f9be244b5b1.rmeta: crates/bench/benches/fig11_warp_timeline.rs Cargo.toml

crates/bench/benches/fig11_warp_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
