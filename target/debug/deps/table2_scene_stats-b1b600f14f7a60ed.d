/root/repo/target/debug/deps/table2_scene_stats-b1b600f14f7a60ed.d: crates/bench/benches/table2_scene_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_scene_stats-b1b600f14f7a60ed.rmeta: crates/bench/benches/table2_scene_stats.rs Cargo.toml

crates/bench/benches/table2_scene_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
