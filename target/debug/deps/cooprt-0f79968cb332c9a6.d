/root/repo/target/debug/deps/cooprt-0f79968cb332c9a6.d: src/bin/cooprt.rs

/root/repo/target/debug/deps/cooprt-0f79968cb332c9a6: src/bin/cooprt.rs

src/bin/cooprt.rs:
