/root/repo/target/debug/deps/fig17_ao_sh-f45c82c827c67dbd.d: crates/bench/benches/fig17_ao_sh.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_ao_sh-f45c82c827c67dbd.rmeta: crates/bench/benches/fig17_ao_sh.rs Cargo.toml

crates/bench/benches/fig17_ao_sh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
