/root/repo/target/debug/deps/cooprt_bvh-1e3a919a029cdf07.d: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs

/root/repo/target/debug/deps/cooprt_bvh-1e3a919a029cdf07: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs

crates/bvh/src/lib.rs:
crates/bvh/src/builder.rs:
crates/bvh/src/image.rs:
crates/bvh/src/stats.rs:
crates/bvh/src/traverse.rs:
crates/bvh/src/wide.rs:
