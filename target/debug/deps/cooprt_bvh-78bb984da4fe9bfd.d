/root/repo/target/debug/deps/cooprt_bvh-78bb984da4fe9bfd.d: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_bvh-78bb984da4fe9bfd.rmeta: crates/bvh/src/lib.rs crates/bvh/src/builder.rs crates/bvh/src/image.rs crates/bvh/src/stats.rs crates/bvh/src/traverse.rs crates/bvh/src/wide.rs Cargo.toml

crates/bvh/src/lib.rs:
crates/bvh/src/builder.rs:
crates/bvh/src/image.rs:
crates/bvh/src/stats.rs:
crates/bvh/src/traverse.rs:
crates/bvh/src/wide.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
