/root/repo/target/debug/deps/cooprt_scenes-a660edb1fac32688.d: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt_scenes-a660edb1fac32688.rmeta: crates/scenes/src/lib.rs crates/scenes/src/camera.rs crates/scenes/src/generators.rs crates/scenes/src/material.rs crates/scenes/src/scene.rs crates/scenes/src/sky.rs crates/scenes/src/suite.rs Cargo.toml

crates/scenes/src/lib.rs:
crates/scenes/src/camera.rs:
crates/scenes/src/generators.rs:
crates/scenes/src/material.rs:
crates/scenes/src/scene.rs:
crates/scenes/src/sky.rs:
crates/scenes/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
