/root/repo/target/debug/deps/ablations-8109a5bdb3cc7d17.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-8109a5bdb3cc7d17.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
