/root/repo/target/debug/deps/ablation_tiling-aa2c10c9b8b876f7.d: crates/bench/benches/ablation_tiling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tiling-aa2c10c9b8b876f7.rmeta: crates/bench/benches/ablation_tiling.rs Cargo.toml

crates/bench/benches/ablation_tiling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
