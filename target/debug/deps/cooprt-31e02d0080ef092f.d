/root/repo/target/debug/deps/cooprt-31e02d0080ef092f.d: src/bin/cooprt.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt-31e02d0080ef092f.rmeta: src/bin/cooprt.rs Cargo.toml

src/bin/cooprt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
