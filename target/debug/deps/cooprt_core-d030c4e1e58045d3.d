/root/repo/target/debug/deps/cooprt_core-d030c4e1e58045d3.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs

/root/repo/target/debug/deps/cooprt_core-d030c4e1e58045d3: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/latency.rs crates/core/src/lbu.rs crates/core/src/parallel.rs crates/core/src/predictor.rs crates/core/src/rtunit.rs crates/core/src/shader.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/latency.rs:
crates/core/src/lbu.rs:
crates/core/src/parallel.rs:
crates/core/src/predictor.rs:
crates/core/src/rtunit.rs:
crates/core/src/shader.rs:
