/root/repo/target/debug/deps/cooprt-75c2abf3f53af2e9.d: src/bin/cooprt.rs

/root/repo/target/debug/deps/cooprt-75c2abf3f53af2e9: src/bin/cooprt.rs

src/bin/cooprt.rs:
