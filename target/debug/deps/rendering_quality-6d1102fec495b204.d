/root/repo/target/debug/deps/rendering_quality-6d1102fec495b204.d: tests/rendering_quality.rs

/root/repo/target/debug/deps/rendering_quality-6d1102fec495b204: tests/rendering_quality.rs

tests/rendering_quality.rs:
