/root/repo/target/debug/deps/cooprt-a2859f17d7c29a08.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcooprt-a2859f17d7c29a08.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
