/root/repo/target/debug/deps/functional_equivalence-685e0804a0b586b3.d: tests/functional_equivalence.rs

/root/repo/target/debug/deps/functional_equivalence-685e0804a0b586b3: tests/functional_equivalence.rs

tests/functional_equivalence.rs:
