/root/repo/target/debug/examples/activity_trace-6c90285cad207f93.d: examples/activity_trace.rs

/root/repo/target/debug/examples/activity_trace-6c90285cad207f93: examples/activity_trace.rs

examples/activity_trace.rs:
