/root/repo/target/debug/examples/shader_compare-9c6ec5628e8a14cb.d: examples/shader_compare.rs Cargo.toml

/root/repo/target/debug/examples/libshader_compare-9c6ec5628e8a14cb.rmeta: examples/shader_compare.rs Cargo.toml

examples/shader_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
