/root/repo/target/debug/examples/arch_explorer-df916f2186e551af.d: examples/arch_explorer.rs

/root/repo/target/debug/examples/arch_explorer-df916f2186e551af: examples/arch_explorer.rs

examples/arch_explorer.rs:
