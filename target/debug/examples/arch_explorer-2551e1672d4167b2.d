/root/repo/target/debug/examples/arch_explorer-2551e1672d4167b2.d: examples/arch_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libarch_explorer-2551e1672d4167b2.rmeta: examples/arch_explorer.rs Cargo.toml

examples/arch_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
