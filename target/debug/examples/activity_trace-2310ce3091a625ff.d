/root/repo/target/debug/examples/activity_trace-2310ce3091a625ff.d: examples/activity_trace.rs Cargo.toml

/root/repo/target/debug/examples/libactivity_trace-2310ce3091a625ff.rmeta: examples/activity_trace.rs Cargo.toml

examples/activity_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
