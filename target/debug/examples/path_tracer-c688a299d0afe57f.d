/root/repo/target/debug/examples/path_tracer-c688a299d0afe57f.d: examples/path_tracer.rs

/root/repo/target/debug/examples/path_tracer-c688a299d0afe57f: examples/path_tracer.rs

examples/path_tracer.rs:
