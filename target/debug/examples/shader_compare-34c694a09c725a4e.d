/root/repo/target/debug/examples/shader_compare-34c694a09c725a4e.d: examples/shader_compare.rs

/root/repo/target/debug/examples/shader_compare-34c694a09c725a4e: examples/shader_compare.rs

examples/shader_compare.rs:
