/root/repo/target/debug/examples/quickstart-df59569d5f793fce.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-df59569d5f793fce.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
