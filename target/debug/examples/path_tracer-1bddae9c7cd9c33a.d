/root/repo/target/debug/examples/path_tracer-1bddae9c7cd9c33a.d: examples/path_tracer.rs Cargo.toml

/root/repo/target/debug/examples/libpath_tracer-1bddae9c7cd9c33a.rmeta: examples/path_tracer.rs Cargo.toml

examples/path_tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
