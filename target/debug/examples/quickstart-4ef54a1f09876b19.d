/root/repo/target/debug/examples/quickstart-4ef54a1f09876b19.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4ef54a1f09876b19: examples/quickstart.rs

examples/quickstart.rs:
