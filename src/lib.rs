//! # CoopRT — Cooperative BVH Traversal for GPU Ray Tracing
//!
//! A from-scratch Rust reproduction of *CoopRT: Accelerating BVH Traversal
//! for Ray Tracing via Cooperative Threads* (Tozlu & Zhou, ISCA 2025).
//!
//! This façade crate re-exports the workspace's public API:
//!
//! - [`math`] — vectors, rays, AABBs, triangles, intersection tests.
//! - [`bvh`] — binned-SAH 6-ary BVH builder and byte-addressed memory image.
//! - [`scenes`] — the 15-scene LumiBench-analog procedural suite.
//! - [`gpu`] — memory hierarchy (L1/L2/DRAM), clock domains, power model.
//! - [`core`] — the cycle-level RT-unit simulator with the CoopRT Load
//!   Balancing Unit, shader drivers and area model.
//! - [`telemetry`] — sim-time event tracing, the shared JSON writer,
//!   Chrome/Perfetto trace export and host-side profiling spans.
//! - [`serve`] — a dependency-free HTTP/1.1 + JSON batch service over
//!   the simulator: bounded job queue with backpressure, worker pool,
//!   content-addressed scene/result caches, graceful drain
//!   (`cooprt serve` on the CLI).
//!
//! # Quickstart
//!
//! ```
//! use cooprt::core::{GpuConfig, Simulation, TraversalPolicy, ShaderKind};
//! use cooprt::scenes::SceneId;
//!
//! // Trace a tiny path-traced frame on the baseline RT unit and on CoopRT.
//! let scene = SceneId::Wknd.build(16);
//! let config = GpuConfig::rtx2060();
//! let base = Simulation::new(&scene, &config, TraversalPolicy::Baseline)
//!     .run_frame(ShaderKind::PathTrace, 8, 8).unwrap();
//! let coop = Simulation::new(&scene, &config, TraversalPolicy::CoopRt)
//!     .run_frame(ShaderKind::PathTrace, 8, 8).unwrap();
//! // Both policies compute identical images...
//! assert_eq!(base.image, coop.image);
//! // ...but the cooperative traversal takes fewer cycles on divergent work.
//! assert!(coop.cycles <= base.cycles);
//! ```

pub use cooprt_bvh as bvh;
pub use cooprt_core as core;
pub use cooprt_gpu as gpu;
pub use cooprt_math as math;
pub use cooprt_query as query;
pub use cooprt_scenes as scenes;
pub use cooprt_serve as serve;
pub use cooprt_telemetry as telemetry;
