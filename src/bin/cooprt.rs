//! The `cooprt` command-line tool: render scenes through the simulated
//! GPU, compare traversal policies, inspect the scene suite, and query
//! the area model — the whole library surface behind one binary.

use cooprt::core::area::{cooprt_area, overhead_fraction, warp_buffer_bits};
use cooprt::core::{
    FrameResult, GpuConfig, PredictPolicy, ReorderPolicy, ShaderKind, Simulation, Trace,
    TraversalPolicy,
};
use cooprt::query::QueryRun;
use cooprt::scenes::{Scene, SceneId, ALL_SCENES, QUERY_SCENES};
use cooprt::serve::{ServeConfig, Server};
use std::process::ExitCode;

const USAGE: &str = "\
cooprt — cooperative BVH traversal simulator (CoopRT, ISCA 2025)

USAGE:
    cooprt <COMMAND> [OPTIONS]

COMMANDS:
    render <scene>     render a scene and write a PPM image
    compare <scene>    baseline vs CoopRT side by side
    query <scene>      run a spatial-query batch (kNN / radius / containment)
    scenes             list the benchmark suite (Table 2 style)
    area               print the CoopRT area model (Table 3 style)
    serve              run the batch render/simulation HTTP service
    trace record <scene>   record the front end once into a trace file
    trace replay <file>    replay the timing model from a trace
    trace info <file>      decode a trace and print its header/stats
    help               show this message

OPTIONS (render / compare):
    --res <N>          square frame resolution      [default: 64]
    --detail <N>       scene detail level           [default: 16]
    --shader <S>       pt | ao | sh                 [default: pt]
    --policy <P>       baseline | cooprt            [default: cooprt]
    --reorder <R>      off | morton | octant-hash   [default: off]
    --predict <P>      off | ray-path               [default: off]
    --mobile           use the 8-SM mobile GPU configuration
    --out <FILE>       PPM output path (render only)

OPTIONS (query):
    --detail <N>       scene detail level           [default: 16]
    --count <N>        query points in the batch    [default: 1024]
    --salt <N>         query sampling salt          [default: 1]
    --shader <S>       knn | rad | cont             [default: by scene domain]
    --policy <P>       baseline | cooprt            [default: cooprt]
    --reorder <R>      off | morton | octant-hash   [default: off]
    --mobile           use the 8-SM mobile GPU configuration
    --compare          run baseline and CoopRT, assert identical answers
    --no-verify        skip the brute-force oracle check

    Query scenes: quni (uniform points), qclu (clustered points),
    qsrf (surface-sampled points), qamr (AMR cell grid). Point scenes
    default to the knn shader, cell scenes to cont.

OPTIONS (trace record / trace replay):
    record takes the render options above; --out sets the trace path
    (default <scene>.cprt). replay takes --policy / --mobile, plus:
    --verify           also run the same point live and assert the
                       replayed cycles and image are bitwise identical

OPTIONS (serve):
    --addr <A>         listen address               [default: 127.0.0.1:7878]
    --workers <N>      simulation worker threads    [default: 2]
    --queue <N>        admission queue capacity     [default: 32]
    --smoke            bind an ephemeral port, self-test every endpoint
                       (health, render miss/hit identity, JSON and
                       Prometheus metrics, request spans, structured
                       logging, graceful drain), then exit

    Structured JSON-lines logging to stderr is controlled by the
    COOPRT_LOG environment variable (e.g. COOPRT_LOG=debug or
    COOPRT_LOG=info,serve::queue=trace).

EXAMPLES:
    cooprt render crnvl --res 96 --out crnvl.ppm
    cooprt compare fox --shader ao
    cooprt query qclu --shader rad --compare
    cooprt query qamr --count 4096
    cooprt scenes
    cooprt area
    COOPRT_LOG=info cooprt serve --addr 127.0.0.1:7878 --workers 4
    cooprt trace record wknd --res 64 --out wknd.cprt
    cooprt trace replay wknd.cprt --policy baseline --reorder morton --verify
    cooprt trace info wknd.cprt
";

struct Options {
    res: usize,
    detail: u32,
    shader: ShaderKind,
    policy: TraversalPolicy,
    reorder: ReorderPolicy,
    predict: PredictPolicy,
    mobile: bool,
    out: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            res: 64,
            detail: 16,
            shader: ShaderKind::PathTrace,
            policy: TraversalPolicy::CoopRt,
            reorder: ReorderPolicy::Off,
            predict: PredictPolicy::Off,
            mobile: false,
            out: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--res" => {
                    opts.res = value("--res")?
                        .parse()
                        .map_err(|_| "--res expects a positive integer".to_string())?;
                }
                "--detail" => {
                    opts.detail = value("--detail")?
                        .parse()
                        .map_err(|_| "--detail expects a positive integer".to_string())?;
                }
                "--shader" => {
                    opts.shader = match value("--shader")?.as_str() {
                        "pt" => ShaderKind::PathTrace,
                        "ao" => ShaderKind::AmbientOcclusion,
                        "sh" => ShaderKind::Shadow,
                        other => return Err(format!("unknown shader '{other}' (pt|ao|sh)")),
                    };
                }
                "--policy" => {
                    opts.policy = match value("--policy")?.as_str() {
                        "baseline" => TraversalPolicy::Baseline,
                        "cooprt" => TraversalPolicy::CoopRt,
                        other => return Err(format!("unknown policy '{other}' (baseline|cooprt)")),
                    };
                }
                "--reorder" => {
                    let v = value("--reorder")?;
                    opts.reorder = ReorderPolicy::parse(&v)
                        .ok_or_else(|| format!("unknown reorder '{v}' (off|morton|octant-hash)"))?;
                }
                "--predict" => {
                    let v = value("--predict")?;
                    opts.predict = PredictPolicy::parse(&v)
                        .ok_or_else(|| format!("unknown predict '{v}' (off|ray-path)"))?;
                }
                "--mobile" => opts.mobile = true,
                "--out" => opts.out = Some(value("--out")?),
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        if opts.res == 0 || opts.detail == 0 {
            return Err("--res and --detail must be positive".into());
        }
        Ok(opts)
    }

    fn config(&self) -> GpuConfig {
        let base = if self.mobile {
            GpuConfig::mobile()
        } else {
            GpuConfig::rtx2060()
        };
        base.with_reorder(self.reorder).with_predict(self.predict)
    }
}

fn find_scene(name: &str) -> Result<SceneId, String> {
    ALL_SCENES
        .iter()
        .chain(QUERY_SCENES.iter())
        .copied()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = ALL_SCENES
                .iter()
                .chain(QUERY_SCENES.iter())
                .map(|s| s.name())
                .collect();
            format!("unknown scene '{name}'; available: {}", names.join(" "))
        })
}

fn report(label: &str, scene: &Scene, cfg: &GpuConfig, frame: &FrameResult) {
    println!("--- {label} ---");
    println!(
        "cycles: {} ({:.3} ms at {:.0} MHz) | slowest warp: {}",
        frame.cycles,
        frame.cycles as f64 / (cfg.mem.core_clock_mhz * 1e3),
        cfg.mem.core_clock_mhz,
        frame.slowest_warp_cycles
    );
    println!(
        "RT-unit utilization: {:.1}% | L1 miss {:.1}% | L2 miss {:.1}% | DRAM util {:.1}%",
        frame.activity.avg_utilization() * 100.0,
        frame.mem.l1.miss_rate() * 100.0,
        frame.mem.l2.miss_rate() * 100.0,
        frame.dram_utilization * 100.0
    );
    if frame.reorder.passes > 0 {
        println!(
            "reorder: {} passes | {} keys | {} rays moved | SIMT efficiency {:.1}%",
            frame.reorder.passes,
            frame.reorder.keys_computed,
            frame.reorder.rays_moved,
            frame.simt_efficiency() * 100.0
        );
    }
    if frame.predictor.path_lookups > 0 {
        let p = &frame.predictor;
        println!(
            "predict: {} lookups | {:.1}% entry-hit | {} go-up steps | {} node fetches saved",
            p.path_lookups,
            if p.path_candidates > 0 {
                p.path_entry_hits as f64 / p.path_candidates as f64 * 100.0
            } else {
                0.0
            },
            p.path_go_up_steps,
            p.node_fetches_saved
        );
    }
    println!(
        "energy: {:.3} mJ | avg power {:.1} W | scene '{}' {} triangles",
        frame.energy.total_j() * 1e3,
        frame.energy.avg_power_w(),
        scene.name,
        scene.triangle_count()
    );
}

fn cmd_render(scene_name: &str, opts: &Options) -> Result<(), String> {
    let id = find_scene(scene_name)?;
    let scene = id.build(opts.detail);
    let cfg = opts.config();
    println!(
        "rendering '{id}' at {0}x{0} under {1} ({2} shader)...",
        opts.res,
        opts.policy.label(),
        opts.shader.key()
    );
    let frame = Simulation::new(&scene, &cfg, opts.policy)
        .run_frame(opts.shader, opts.res, opts.res)
        .unwrap();
    report(opts.policy.label(), &scene, &cfg, &frame);
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("{scene_name}.ppm"));
    std::fs::write(&out, frame.image_buffer().to_ppm())
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_compare(scene_name: &str, opts: &Options) -> Result<(), String> {
    let id = find_scene(scene_name)?;
    let scene = id.build(opts.detail);
    let cfg = opts.config();
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(opts.shader, opts.res, opts.res)
        .unwrap();
    let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(opts.shader, opts.res, opts.res)
        .unwrap();
    report("baseline", &scene, &cfg, &base);
    report("cooprt", &scene, &cfg, &coop);
    assert_eq!(base.image, coop.image, "policies must agree functionally");
    println!("--- verdict ---");
    println!(
        "speedup {:.2}x | power {:.2}x | energy {:.2}x | images identical ✓",
        base.cycles as f64 / coop.cycles.max(1) as f64,
        coop.energy.avg_power_w() / base.energy.avg_power_w().max(1e-12),
        coop.energy.total_j() / base.energy.total_j().max(1e-300)
    );
    Ok(())
}

/// Options of the `query` command.
struct QueryOptions {
    detail: u32,
    count: usize,
    salt: u64,
    shader: Option<ShaderKind>,
    policy: TraversalPolicy,
    reorder: ReorderPolicy,
    mobile: bool,
    compare: bool,
    verify: bool,
}

impl QueryOptions {
    fn parse(args: &[String]) -> Result<QueryOptions, String> {
        let mut opts = QueryOptions {
            detail: 16,
            count: 1024,
            salt: 1,
            shader: None,
            policy: TraversalPolicy::CoopRt,
            reorder: ReorderPolicy::Off,
            mobile: false,
            compare: false,
            verify: true,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--detail" => {
                    opts.detail = value("--detail")?
                        .parse()
                        .map_err(|_| "--detail expects a positive integer".to_string())?;
                }
                "--count" => {
                    opts.count = value("--count")?
                        .parse()
                        .map_err(|_| "--count expects a positive integer".to_string())?;
                }
                "--salt" => {
                    opts.salt = value("--salt")?
                        .parse()
                        .map_err(|_| "--salt expects an unsigned integer".to_string())?;
                }
                "--shader" => {
                    opts.shader = Some(match value("--shader")?.as_str() {
                        "knn" => ShaderKind::Knn,
                        "rad" | "radius" => ShaderKind::Radius,
                        "cont" | "contain" => ShaderKind::Contain,
                        other => {
                            return Err(format!("unknown query shader '{other}' (knn|rad|cont)"))
                        }
                    });
                }
                "--policy" => {
                    opts.policy = match value("--policy")?.as_str() {
                        "baseline" => TraversalPolicy::Baseline,
                        "cooprt" => TraversalPolicy::CoopRt,
                        other => return Err(format!("unknown policy '{other}' (baseline|cooprt)")),
                    };
                }
                "--reorder" => {
                    let v = value("--reorder")?;
                    opts.reorder = ReorderPolicy::parse(&v)
                        .ok_or_else(|| format!("unknown reorder '{v}' (off|morton|octant-hash)"))?;
                }
                "--mobile" => opts.mobile = true,
                "--compare" => opts.compare = true,
                "--no-verify" => opts.verify = false,
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        if opts.detail == 0 || opts.count == 0 {
            return Err("--detail and --count must be positive".into());
        }
        Ok(opts)
    }

    fn config(&self) -> GpuConfig {
        let base = if self.mobile {
            GpuConfig::mobile()
        } else {
            GpuConfig::rtx2060()
        };
        base.with_reorder(self.reorder)
    }
}

fn query_report(label: &str, cfg: &GpuConfig, run: &QueryRun) {
    let nonempty = run.answers.iter().filter(|a| !a.is_empty()).count();
    let entries: usize = run.answers.iter().map(Vec::len).sum();
    println!("--- {label} ---");
    println!(
        "cycles: {} ({:.3} ms at {:.0} MHz) | probe rays: {}",
        run.cycles,
        run.cycles as f64 / (cfg.mem.core_clock_mhz * 1e3),
        cfg.mem.core_clock_mhz,
        run.rays
    );
    println!(
        "answers: {}/{} non-empty | {} entries | RT-unit utilization {:.1}%",
        nonempty,
        run.answers.len(),
        entries,
        run.frame.activity.avg_utilization() * 100.0
    );
}

fn cmd_query(scene_name: &str, opts: &QueryOptions) -> Result<(), String> {
    let id = find_scene(scene_name)?;
    let scene = id.build(opts.detail);
    let domain = scene.query.as_ref().ok_or_else(|| {
        let names: Vec<&str> = QUERY_SCENES.iter().map(|s| s.name()).collect();
        format!(
            "'{scene_name}' has no query domain; query scenes: {}",
            names.join(" ")
        )
    })?;
    let kind = opts.shader.unwrap_or(if domain.cells.is_empty() {
        ShaderKind::Knn
    } else {
        ShaderKind::Contain
    });
    let cfg = opts.config();
    println!(
        "running {} '{}' queries against '{id}' (detail {}, {} triangles)...",
        opts.count,
        kind.key(),
        opts.detail,
        scene.triangle_count()
    );
    let run = |policy: TraversalPolicy| {
        cooprt::query::run_queries(&scene, &cfg, policy, kind, opts.count, opts.salt)
            .map_err(|e| e.to_string())
    };
    let result = if opts.compare {
        let base = run(TraversalPolicy::Baseline)?;
        let coop = run(TraversalPolicy::CoopRt)?;
        query_report("baseline", &cfg, &base);
        query_report("cooprt", &cfg, &coop);
        if base.answers != coop.answers {
            return Err("policies disagree: baseline and CoopRT answers differ".into());
        }
        println!(
            "speedup {:.2}x | answers identical ✓",
            base.cycles as f64 / coop.cycles.max(1) as f64
        );
        coop
    } else {
        let r = run(opts.policy)?;
        query_report(opts.policy.label(), &cfg, &r);
        r
    };
    for (i, answer) in result.answers.iter().take(3).enumerate() {
        println!("q{i} -> {answer:?}");
    }
    if opts.verify {
        let want = cooprt::query::oracle_answers(&scene, kind, opts.count, opts.salt);
        if result.answers != want {
            return Err("oracle mismatch: simulated answers differ from brute force".into());
        }
        println!("oracle: all {} answers exact ✓", opts.count);
    }
    Ok(())
}

fn cmd_scenes(opts: &Options) {
    println!(
        "{:<8} {:>10} {:>11} {:>6} {:>7} {:>7}",
        "scene", "triangles", "tree(MiB)", "depth", "lights", "closed"
    );
    for id in ALL_SCENES {
        let s = id.build(opts.detail);
        println!(
            "{:<8} {:>10} {:>11.3} {:>6} {:>7} {:>7}",
            s.name,
            s.triangle_count(),
            s.stats.size_mib,
            s.stats.depth,
            s.lights.len(),
            s.is_closed()
        );
    }
}

fn cmd_area() {
    println!(
        "{:<8} {:>8} {:>11} {:>10}",
        "subwarp", "cells", "area(um2)", "overhead"
    );
    for sw in [32usize, 16, 8, 4] {
        let a = cooprt_area(sw);
        println!(
            "{:<8} {:>8} {:>11.0} {:>9.2}%",
            sw,
            a.cells(),
            a.area_um2(),
            overhead_fraction(sw, 4) * 100.0
        );
    }
    println!("\nwarp buffer (4 entries): {} bits", warp_buffer_bits(4));
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("record") if args.len() >= 2 => {
            Options::parse(&args[2..]).and_then(|o| cmd_trace_record(&args[1], &o))
        }
        Some("replay") if args.len() >= 2 => cmd_trace_replay(&args[1], &args[2..]),
        Some("info") if args.len() >= 2 => cmd_trace_info(&args[1]),
        _ => Err("usage: cooprt trace record <scene> | replay <file> | info <file>".into()),
    }
}

fn cmd_trace_record(scene_name: &str, opts: &Options) -> Result<(), String> {
    let id = find_scene(scene_name)?;
    let scene = id.build(opts.detail);
    let cfg = opts.config();
    println!(
        "recording '{id}' at {0}x{0} under {1} ({2} shader)...",
        opts.res,
        opts.policy.label(),
        opts.shader.key()
    );
    let (frame, trace) = Trace::record(
        &scene,
        opts.detail,
        &cfg,
        opts.policy,
        opts.shader,
        opts.res,
        opts.res,
    )
    .unwrap();
    let bytes = trace.encode();
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("{scene_name}.cprt"));
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "cycles: {} | {} ray records over {} trace_rays | wrote {out} ({} bytes)",
        frame.cycles,
        trace.total_records(),
        trace.issues.len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_trace_replay(path: &str, args: &[String]) -> Result<(), String> {
    let verify = args.iter().any(|a| a == "--verify");
    let rest: Vec<String> = args.iter().filter(|a| *a != "--verify").cloned().collect();
    let opts = Options::parse(&rest)?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let cfg = opts.config();
    println!(
        "replaying '{}' ({}x{}, {} shader) under {}...",
        trace.scene_name,
        trace.width,
        trace.height,
        trace.kind.key(),
        opts.policy.label()
    );
    let frame = trace
        .replay(&cfg, opts.policy)
        .map_err(|e| format!("{path}: {e}"))?;
    println!(
        "cycles: {} | rays: {} | L1 miss {:.1}% | DRAM util {:.1}%",
        frame.cycles,
        frame.rays,
        frame.mem.l1.miss_rate() * 100.0,
        frame.dram_utilization * 100.0
    );
    if verify {
        let id = find_scene(&trace.scene_name)?;
        let scene = id.build(trace.detail);
        let live = Simulation::new(&scene, &cfg, opts.policy)
            .run_frame(trace.kind, trace.width, trace.height)
            .unwrap();
        if frame.cycles != live.cycles {
            return Err(format!(
                "verify failed: replay {} cycles, live {} cycles",
                frame.cycles, live.cycles
            ));
        }
        if frame.image != live.image {
            return Err("verify failed: replayed image differs from live".into());
        }
        println!(
            "verify: replay is bitwise identical to live simulation ({} cycles) ✓",
            live.cycles
        );
    }
    Ok(())
}

fn cmd_trace_info(path: &str) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
    println!("trace: {path} ({} bytes)", bytes.len());
    println!(
        "scene: '{}' (detail {}, BVH hash {:#018x})",
        trace.scene_name, trace.detail, trace.scene_hash
    );
    println!(
        "frame: {}x{} | shader {} | salt {}",
        trace.width,
        trace.height,
        trace.kind.key(),
        trace.sample_salt
    );
    println!(
        "shader config: max_bounces {} | ao {}x{:.2} | sh {}",
        trace.max_bounces, trace.ao_samples, trace.ao_radius, trace.sh_samples
    );
    println!(
        "bvh: {} nodes, {} triangles, {} bytes",
        trace.bvh.node_count(),
        trace.bvh.triangles().len(),
        trace.bvh.total_bytes()
    );
    let longest = trace.streams.iter().map(Vec::len).max().unwrap_or(0);
    println!(
        "streams: {} threads, {} ray records (longest {})",
        trace.streams.len(),
        trace.total_records(),
        longest
    );
    let sms = trace.issues.iter().map(|i| i.sm).max().map_or(0, |m| m + 1);
    println!(
        "issues: {} trace_rays across {} SMs",
        trace.issues.len(),
        sms
    );
    Ok(())
}

/// Options of the `serve` command.
struct ServeOptions {
    addr: String,
    workers: usize,
    queue: usize,
    smoke: bool,
}

impl ServeOptions {
    fn parse(args: &[String]) -> Result<ServeOptions, String> {
        let mut opts = ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            queue: 32,
            smoke: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--addr" => opts.addr = value("--addr")?,
                "--workers" => {
                    opts.workers = value("--workers")?
                        .parse()
                        .map_err(|_| "--workers expects a positive integer".to_string())?;
                }
                "--queue" => {
                    opts.queue = value("--queue")?
                        .parse()
                        .map_err(|_| "--queue expects a positive integer".to_string())?;
                }
                "--smoke" => opts.smoke = true,
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        if opts.workers == 0 || opts.queue == 0 {
            return Err("--workers and --queue must be positive".into());
        }
        Ok(opts)
    }
}

fn cmd_serve(opts: &ServeOptions) -> Result<(), String> {
    // Smoke mode captures debug-level logs in a buffer sink so the
    // self-test can assert every line parses; otherwise COOPRT_LOG
    // drives stderr logging (the ServeConfig default).
    let smoke_logger = if opts.smoke {
        Some(
            cooprt::telemetry::Logger::to_buffer("debug")
                .map_err(|e| format!("smoke: bad log spec: {e}"))?,
        )
    } else {
        None
    };
    let config = ServeConfig {
        addr: if opts.smoke {
            "127.0.0.1:0".to_string() // ephemeral: never collides in CI
        } else {
            opts.addr.clone()
        },
        workers: opts.workers,
        queue_capacity: opts.queue,
        handle_signals: !opts.smoke,
        logger: smoke_logger
            .clone()
            .unwrap_or_else(cooprt::telemetry::Logger::from_env),
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    if !opts.smoke {
        println!(
            "cooprt-serve listening on http://{addr} ({} workers, queue {})",
            opts.workers, opts.queue
        );
        println!("endpoints: POST /v1/render  POST /v1/simulate  POST /v1/query  GET /v1/jobs/<id>  GET /v1/spans/<id>  GET /metrics  GET /healthz");
        println!("ctrl-c or SIGTERM drains gracefully");
        return server.run().map_err(|e| e.to_string());
    }
    let logger = smoke_logger.expect("smoke mode always builds a buffer logger");
    serve_smoke(server, &addr.to_string(), &logger)
}

/// The `serve --smoke` self-test: every endpoint over a real socket,
/// cache-hit identity included, plus the observability surface (JSON
/// and Prometheus metrics, request spans, structured log lines), then
/// a graceful drain.
fn serve_smoke(
    server: Server,
    addr: &str,
    logger: &cooprt::telemetry::Logger,
) -> Result<(), String> {
    let io = |e: std::io::Error| format!("smoke: io error: {e}");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    let mut client = cooprt::serve::HttpClient::connect(addr).map_err(io)?;

    let health = client.get("/healthz").map_err(io)?;
    if health.status != 200 {
        return Err(format!("smoke: /healthz returned {}", health.status));
    }
    println!("smoke: /healthz ok");

    let job = r#"{"scene": "bunny", "width": 16, "height": 12, "spp": 2}"#;
    let first = client.post("/v1/render", job).map_err(io)?;
    if first.status != 200 || first.header("x-cache") != Some("miss") {
        return Err(format!(
            "smoke: first render expected 200/miss, got {}/{:?}: {}",
            first.status,
            first.header("x-cache"),
            first.text()
        ));
    }
    let second = client.post("/v1/render", job).map_err(io)?;
    if second.status != 200 || second.header("x-cache") != Some("hit") {
        return Err(format!(
            "smoke: second render expected 200/hit, got {}/{:?}",
            second.status,
            second.header("x-cache")
        ));
    }
    if first.body != second.body {
        return Err("smoke: cache hit is not bitwise identical to the fresh run".to_string());
    }
    println!(
        "smoke: /v1/render miss+hit identical ({} bytes)",
        first.body.len()
    );

    let metrics = client.get("/metrics").map_err(io)?;
    let doc = cooprt::telemetry::parse_json(&metrics.text())
        .map_err(|e| format!("smoke: /metrics is not valid JSON: {e}"))?;
    let hits = doc
        .get("result_cache")
        .and_then(|c| c.get("hits"))
        .and_then(|v| v.as_f64());
    if hits != Some(1.0) {
        return Err(format!("smoke: expected 1 result-cache hit, got {hits:?}"));
    }
    println!("smoke: /metrics parses, result-cache hit counted");

    let prom = client.get_accept("/metrics", "text/plain").map_err(io)?;
    if prom.status != 200 {
        return Err(format!(
            "smoke: prometheus /metrics returned {}",
            prom.status
        ));
    }
    cooprt::telemetry::validate_prometheus(&prom.text())
        .map_err(|e| format!("smoke: prometheus exposition invalid: {e}"))?;
    println!("smoke: /metrics (Accept: text/plain) passes the Prometheus validator");

    let id = first
        .header("x-request-id")
        .ok_or("smoke: render response has no X-Request-Id")?
        .to_string();
    let spans = client.get(&format!("/v1/spans/{id}")).map_err(io)?;
    if spans.status != 200 {
        return Err(format!("smoke: /v1/spans/{id} returned {}", spans.status));
    }
    cooprt::telemetry::validate_chrome_trace(&spans.text())
        .map_err(|e| format!("smoke: span trace invalid: {e}"))?;
    println!("smoke: /v1/spans/{id} validates as Chrome trace JSON");

    handle.shutdown();
    join.join()
        .map_err(|_| "smoke: server thread panicked".to_string())?
        .map_err(|e| format!("smoke: server run failed: {e}"))?;

    let lines = logger.captured();
    if lines.is_empty() {
        return Err("smoke: debug logging captured no lines".to_string());
    }
    for line in &lines {
        cooprt::telemetry::parse_json(line)
            .map_err(|e| format!("smoke: log line does not parse ({e}): {line}"))?;
    }
    println!(
        "smoke: {} structured log lines, every one parses as JSON",
        lines.len()
    );
    println!("smoke: graceful drain complete — all checks passed");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("render") if args.len() >= 2 => {
            Options::parse(&args[2..]).and_then(|o| cmd_render(&args[1], &o))
        }
        Some("compare") if args.len() >= 2 => {
            Options::parse(&args[2..]).and_then(|o| cmd_compare(&args[1], &o))
        }
        Some("query") if args.len() >= 2 => {
            QueryOptions::parse(&args[2..]).and_then(|o| cmd_query(&args[1], &o))
        }
        Some("scenes") => Options::parse(&args[1..]).map(|o| cmd_scenes(&o)),
        Some("area") => {
            cmd_area();
            Ok(())
        }
        Some("serve") => ServeOptions::parse(&args[1..]).and_then(|o| cmd_serve(&o)),
        Some("trace") => cmd_trace(&args[1..]),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
