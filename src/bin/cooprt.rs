//! The `cooprt` command-line tool: render scenes through the simulated
//! GPU, compare traversal policies, inspect the scene suite, and query
//! the area model — the whole library surface behind one binary.

use cooprt::core::area::{cooprt_area, overhead_fraction, warp_buffer_bits};
use cooprt::core::{FrameResult, GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::{Scene, SceneId, ALL_SCENES};
use std::process::ExitCode;

const USAGE: &str = "\
cooprt — cooperative BVH traversal simulator (CoopRT, ISCA 2025)

USAGE:
    cooprt <COMMAND> [OPTIONS]

COMMANDS:
    render <scene>     render a scene and write a PPM image
    compare <scene>    baseline vs CoopRT side by side
    scenes             list the benchmark suite (Table 2 style)
    area               print the CoopRT area model (Table 3 style)
    help               show this message

OPTIONS (render / compare):
    --res <N>          square frame resolution      [default: 64]
    --detail <N>       scene detail level           [default: 16]
    --shader <S>       pt | ao | sh                 [default: pt]
    --policy <P>       baseline | cooprt            [default: cooprt]
    --mobile           use the 8-SM mobile GPU configuration
    --out <FILE>       PPM output path (render only)

EXAMPLES:
    cooprt render crnvl --res 96 --out crnvl.ppm
    cooprt compare fox --shader ao
    cooprt scenes
    cooprt area
";

struct Options {
    res: usize,
    detail: u32,
    shader: ShaderKind,
    policy: TraversalPolicy,
    mobile: bool,
    out: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            res: 64,
            detail: 16,
            shader: ShaderKind::PathTrace,
            policy: TraversalPolicy::CoopRt,
            mobile: false,
            out: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--res" => {
                    opts.res = value("--res")?
                        .parse()
                        .map_err(|_| "--res expects a positive integer".to_string())?;
                }
                "--detail" => {
                    opts.detail = value("--detail")?
                        .parse()
                        .map_err(|_| "--detail expects a positive integer".to_string())?;
                }
                "--shader" => {
                    opts.shader = match value("--shader")?.as_str() {
                        "pt" => ShaderKind::PathTrace,
                        "ao" => ShaderKind::AmbientOcclusion,
                        "sh" => ShaderKind::Shadow,
                        other => return Err(format!("unknown shader '{other}' (pt|ao|sh)")),
                    };
                }
                "--policy" => {
                    opts.policy = match value("--policy")?.as_str() {
                        "baseline" => TraversalPolicy::Baseline,
                        "cooprt" => TraversalPolicy::CoopRt,
                        other => return Err(format!("unknown policy '{other}' (baseline|cooprt)")),
                    };
                }
                "--mobile" => opts.mobile = true,
                "--out" => opts.out = Some(value("--out")?),
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        if opts.res == 0 || opts.detail == 0 {
            return Err("--res and --detail must be positive".into());
        }
        Ok(opts)
    }

    fn config(&self) -> GpuConfig {
        if self.mobile {
            GpuConfig::mobile()
        } else {
            GpuConfig::rtx2060()
        }
    }
}

fn find_scene(name: &str) -> Result<SceneId, String> {
    ALL_SCENES
        .iter()
        .copied()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = ALL_SCENES.iter().map(|s| s.name()).collect();
            format!("unknown scene '{name}'; available: {}", names.join(" "))
        })
}

fn report(label: &str, scene: &Scene, cfg: &GpuConfig, frame: &FrameResult) {
    println!("--- {label} ---");
    println!(
        "cycles: {} ({:.3} ms at {:.0} MHz) | slowest warp: {}",
        frame.cycles,
        frame.cycles as f64 / (cfg.mem.core_clock_mhz * 1e3),
        cfg.mem.core_clock_mhz,
        frame.slowest_warp_cycles
    );
    println!(
        "RT-unit utilization: {:.1}% | L1 miss {:.1}% | L2 miss {:.1}% | DRAM util {:.1}%",
        frame.activity.avg_utilization() * 100.0,
        frame.mem.l1.miss_rate() * 100.0,
        frame.mem.l2.miss_rate() * 100.0,
        frame.dram_utilization * 100.0
    );
    println!(
        "energy: {:.3} mJ | avg power {:.1} W | scene '{}' {} triangles",
        frame.energy.total_j() * 1e3,
        frame.energy.avg_power_w(),
        scene.name,
        scene.triangle_count()
    );
}

fn cmd_render(scene_name: &str, opts: &Options) -> Result<(), String> {
    let id = find_scene(scene_name)?;
    let scene = id.build(opts.detail);
    let cfg = opts.config();
    println!(
        "rendering '{id}' at {0}x{0} under {1} ({2} shader)...",
        opts.res,
        opts.policy.label(),
        opts.shader.label()
    );
    let frame = Simulation::new(&scene, &cfg, opts.policy)
        .run_frame(opts.shader, opts.res, opts.res)
        .unwrap();
    report(opts.policy.label(), &scene, &cfg, &frame);
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("{scene_name}.ppm"));
    std::fs::write(&out, frame.image_buffer().to_ppm())
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_compare(scene_name: &str, opts: &Options) -> Result<(), String> {
    let id = find_scene(scene_name)?;
    let scene = id.build(opts.detail);
    let cfg = opts.config();
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(opts.shader, opts.res, opts.res)
        .unwrap();
    let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(opts.shader, opts.res, opts.res)
        .unwrap();
    report("baseline", &scene, &cfg, &base);
    report("cooprt", &scene, &cfg, &coop);
    assert_eq!(base.image, coop.image, "policies must agree functionally");
    println!("--- verdict ---");
    println!(
        "speedup {:.2}x | power {:.2}x | energy {:.2}x | images identical ✓",
        base.cycles as f64 / coop.cycles.max(1) as f64,
        coop.energy.avg_power_w() / base.energy.avg_power_w().max(1e-12),
        coop.energy.total_j() / base.energy.total_j().max(1e-300)
    );
    Ok(())
}

fn cmd_scenes(opts: &Options) {
    println!(
        "{:<8} {:>10} {:>11} {:>6} {:>7} {:>7}",
        "scene", "triangles", "tree(MiB)", "depth", "lights", "closed"
    );
    for id in ALL_SCENES {
        let s = id.build(opts.detail);
        println!(
            "{:<8} {:>10} {:>11.3} {:>6} {:>7} {:>7}",
            s.name,
            s.triangle_count(),
            s.stats.size_mib,
            s.stats.depth,
            s.lights.len(),
            s.is_closed()
        );
    }
}

fn cmd_area() {
    println!(
        "{:<8} {:>8} {:>11} {:>10}",
        "subwarp", "cells", "area(um2)", "overhead"
    );
    for sw in [32usize, 16, 8, 4] {
        let a = cooprt_area(sw);
        println!(
            "{:<8} {:>8} {:>11.0} {:>9.2}%",
            sw,
            a.cells(),
            a.area_um2(),
            overhead_fraction(sw, 4) * 100.0
        );
    }
    println!("\nwarp buffer (4 entries): {} bits", warp_buffer_bits(4));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("render") if args.len() >= 2 => {
            Options::parse(&args[2..]).and_then(|o| cmd_render(&args[1], &o))
        }
        Some("compare") if args.len() >= 2 => {
            Options::parse(&args[2..]).and_then(|o| cmd_compare(&args[1], &o))
        }
        Some("scenes") => Options::parse(&args[1..]).map(|o| cmd_scenes(&o)),
        Some("area") => {
            cmd_area();
            Ok(())
        }
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
