//! Property-style tests over the core data structures and the
//! simulator's functional invariants.
//!
//! Inputs are drawn from the workspace's deterministic PRNG (fixed
//! seeds, many cases per property) instead of an external property
//! testing framework, which is unavailable in offline builds. The
//! invariants themselves are unchanged.

use cooprt::bvh::traverse::{any_hit, brute_force_closest_hit, closest_hit};
use cooprt::bvh::{build_binary, BvhImage, WideBvh, MAX_ARITY};
use cooprt::math::{Aabb, Ray, Triangle, Vec3};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn arb_vec3(rng: &mut StdRng, range: f32) -> Vec3 {
    Vec3::new(
        rng.random_range(-range..range),
        rng.random_range(-range..range),
        rng.random_range(-range..range),
    )
}

fn arb_triangle(rng: &mut StdRng) -> Triangle {
    loop {
        let base = arb_vec3(rng, 10.0);
        let e1 = arb_vec3(rng, 2.0);
        let e2 = arb_vec3(rng, 2.0);
        let t = Triangle::new(base, base + e1, base + e2);
        if t.double_area() > 1e-4 {
            return t;
        }
    }
}

fn arb_ray(rng: &mut StdRng) -> Ray {
    loop {
        let o = arb_vec3(rng, 15.0);
        let d = arb_vec3(rng, 1.0);
        if d.length_squared() > 1e-4 {
            return Ray::new(o, d);
        }
    }
}

fn arb_triangles(rng: &mut StdRng, max: usize) -> Vec<Triangle> {
    let n = rng.random_range(1usize..max);
    (0..n).map(|_| arb_triangle(rng)).collect()
}

fn image_of(tris: &[Triangle]) -> BvhImage {
    BvhImage::serialize(&WideBvh::from_binary(&build_binary(tris)), tris)
}

#[test]
fn aabb_union_contains_both_operands() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..64 {
        let x = Aabb::new(arb_vec3(&mut rng, 10.0), arb_vec3(&mut rng, 10.0));
        let y = Aabb::new(arb_vec3(&mut rng, 10.0), arb_vec3(&mut rng, 10.0));
        let u = x.union(&y);
        assert!(u.contains(x.min) && u.contains(x.max));
        assert!(u.contains(y.min) && u.contains(y.max));
        // Union is commutative and idempotent.
        assert_eq!(u, y.union(&x));
        assert_eq!(u.union(&u), u);
    }
}

#[test]
fn slab_test_agrees_with_contained_points() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..256 {
        // If the point at parameter t is inside the box, the slab test
        // must report a hit with entry distance <= t.
        let bbox = Aabb::new(arb_vec3(&mut rng, 5.0), arb_vec3(&mut rng, 5.0));
        let ray = arb_ray(&mut rng);
        let t = rng.random_range(0.0f32..20.0);
        if bbox.contains(ray.at(t)) {
            let hit = bbox.intersect(&ray, f32::INFINITY);
            assert!(hit.is_some(), "point inside at t={t} but slab missed");
            assert!(hit.unwrap() <= t + 1e-3);
        }
    }
}

#[test]
fn triangle_hits_lie_on_the_plane() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..256 {
        let tri = arb_triangle(&mut rng);
        let ray = arb_ray(&mut rng);
        if let Some(h) = tri.intersect(&ray, f32::INFINITY) {
            let p = ray.at(h.t);
            let n = tri.normal();
            let dist = (p - tri.v0).dot(n).abs();
            assert!(dist < 2e-2, "hit point {dist} off the plane");
            assert!(h.u >= 0.0 && h.v >= 0.0 && h.u + h.v <= 1.0 + 1e-4);
        }
    }
}

#[test]
fn triangle_bounds_contain_all_hits() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..256 {
        let tri = arb_triangle(&mut rng);
        let ray = arb_ray(&mut rng);
        if let Some(h) = tri.intersect(&ray, f32::INFINITY) {
            let p = ray.at(h.t);
            let grown = {
                let b = tri.bounds();
                Aabb::new(b.min - Vec3::splat(1e-2), b.max + Vec3::splat(1e-2))
            };
            assert!(grown.contains(p));
        }
    }
}

#[test]
fn bvh_traversal_equals_brute_force() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..64 {
        let tris = arb_triangles(&mut rng, 60);
        let image = image_of(&tris);
        let n_rays = rng.random_range(1usize..20);
        for _ in 0..n_rays {
            let ray = arb_ray(&mut rng);
            let a = closest_hit(&image, &ray, f32::INFINITY);
            let b = brute_force_closest_hit(&image, &ray, f32::INFINITY);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    // Same distance always; same primitive unless two
                    // triangles coincide at the same t.
                    assert!((x.t - y.t).abs() < 1e-3, "t {} vs {}", x.t, y.t);
                }
                (x, y) => panic!("bvh {x:?} vs brute {y:?}"),
            }
        }
    }
}

#[test]
fn any_hit_is_consistent_with_closest_hit() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..64 {
        let tris = arb_triangles(&mut rng, 40);
        let image = image_of(&tris);
        let ray = arb_ray(&mut rng);
        let t_max = rng.random_range(0.5f32..50.0);
        let closest = closest_hit(&image, &ray, t_max);
        assert_eq!(any_hit(&image, &ray, t_max), closest.is_some());
    }
}

#[test]
fn wide_bvh_structure_invariants() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..64 {
        let tris = arb_triangles(&mut rng, 80);
        let binary = build_binary(&tris);
        let wide = WideBvh::from_binary(&binary);
        assert!(wide.max_arity() <= MAX_ARITY);
        assert_eq!(wide.leaf_count(), tris.len());
        assert!(wide.depth() <= binary.depth());
        // Serialization round-trips every node address.
        let image = BvhImage::serialize(&wide, &tris);
        assert_eq!(image.node_count(), wide.nodes.len());
        for node in &image {
            assert!(image.node_at(node.addr).is_some());
        }
    }
}

#[test]
fn node_lookup_is_exact_over_random_scenes() {
    // The O(1) addr->node table must agree with a linear scan on every
    // possible probe: node starts resolve to their node, every other
    // address resolves to None.
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..32 {
        let tris = arb_triangles(&mut rng, 120);
        let image = image_of(&tris);
        let starts: std::collections::HashSet<u64> = image.iter().map(|n| n.addr).collect();
        let base = image.root_addr();
        // Every serialized address round-trips to the same node.
        for node in &image {
            assert_eq!(image.node_at(node.addr), Some(node));
        }
        // Every 4-byte-aligned probe across the image agrees with the
        // ground-truth set of node starts.
        let mut off = 0u64;
        while off < image.total_bytes() {
            let addr = base + off;
            assert_eq!(
                image.node_at(addr).is_some(),
                starts.contains(&addr),
                "addr {addr:#x}"
            );
            off += 4;
        }
        // Out-of-range probes never resolve.
        assert!(image.node_at(base.wrapping_sub(16)).is_none());
        assert!(image.node_at(base + image.total_bytes()).is_none());
        assert!(image.node_at(0).is_none());
        assert!(image.node_at(u64::MAX).is_none());
    }
}

#[test]
fn shrinking_t_max_never_adds_hits() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..64 {
        let tris = arb_triangles(&mut rng, 30);
        let image = image_of(&tris);
        let ray = arb_ray(&mut rng);
        let t1 = rng.random_range(1.0f32..10.0);
        let t2 = rng.random_range(10.0f32..100.0);
        let near = closest_hit(&image, &ray, t1);
        let far = closest_hit(&image, &ray, t2);
        if let Some(n) = near {
            // Anything found within t1 must also be the closest within t2.
            assert!(far.is_some());
            assert!((far.unwrap().t - n.t).abs() < 1e-4);
        }
    }
}

mod cache_properties {
    use cooprt::gpu::Cache;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn hits_never_exceed_accesses() {
        let mut rng = StdRng::seed_from_u64(201);
        for _ in 0..64 {
            let n = rng.random_range(1usize..200);
            let addrs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..4096)).collect();
            let mut c = Cache::new(512, 2, 64);
            for a in &addrs {
                c.access_line(*a);
            }
            let s = c.stats();
            assert_eq!(s.accesses, addrs.len() as u64);
            assert!(s.hits <= s.accesses);
        }
    }

    #[test]
    fn immediate_reaccess_always_hits() {
        let mut rng = StdRng::seed_from_u64(202);
        for _ in 0..64 {
            let n = rng.random_range(1usize..100);
            let mut c = Cache::new(1024, 0, 64);
            for _ in 0..n {
                let a = rng.random_range(0u64..4096);
                c.access_line(a);
                assert!(c.access_line(a), "line {a} must hit right after fill");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_converges_to_all_hits() {
        let mut rng = StdRng::seed_from_u64(203);
        for _ in 0..64 {
            // 8 lines of capacity, addresses drawn from 8 lines: after
            // one full pass, everything hits.
            let mut c = Cache::new(8 * 64, 0, 64);
            for l in 0u64..8 {
                c.access_line(l * 64);
            }
            let n = rng.random_range(1usize..50);
            for _ in 0..n {
                let l = rng.random_range(0u64..8);
                assert!(c.access_line(l * 64));
            }
        }
    }
}

mod lbu_properties {
    use cooprt::core::lbu::find_pairs;
    use rand::rngs::StdRng;
    use rand::{Rng, RngExt, SeedableRng};

    #[test]
    fn pairs_are_valid_and_disjoint() {
        let mut rng = StdRng::seed_from_u64(301);
        for _ in 0..256 {
            let can = rng.next_u32();
            // The hardware masks are disjoint by construction (an empty
            // stack is not a non-empty stack).
            let needs = rng.next_u32() & !can;
            let sw = [4usize, 8, 16, 32][rng.random_range(0usize..4)];
            let pairs = find_pairs(can, needs, sw);
            assert!(pairs.len() <= 32 / sw);
            for p in &pairs {
                assert!(can & (1 << p.helper) != 0, "helper must be eligible");
                assert!(needs & (1 << p.main) != 0, "main must need help");
                assert_eq!(p.helper / sw, p.main / sw, "pair stays in its subwarp");
                assert_ne!(p.helper, p.main);
            }
            // At most one pair per subwarp group.
            let mut groups: Vec<usize> = pairs.iter().map(|p| p.helper / sw).collect();
            groups.sort_unstable();
            groups.dedup();
            assert_eq!(groups.len(), pairs.len());
        }
    }

    #[test]
    fn whole_warp_finds_a_pair_iff_both_masks_nonempty() {
        let mut rng = StdRng::seed_from_u64(302);
        for _ in 0..256 {
            let can = rng.next_u32();
            let needs = rng.next_u32() & !can;
            let pairs = find_pairs(can, needs, 32);
            assert_eq!(pairs.is_empty(), can == 0 || needs == 0);
        }
    }
}

mod mshr_properties {
    use cooprt::gpu::Mshr;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn lookups_never_return_expired_fills() {
        let mut rng = StdRng::seed_from_u64(401);
        for _ in 0..128 {
            let mut mshr = Mshr::new(8);
            let mut now = 0u64;
            let ops = rng.random_range(1usize..100);
            for _ in 0..ops {
                let line = rng.random_range(0u64..32);
                let delay = rng.random_range(1u64..1000);
                if let Some(done) = mshr.lookup(line, now) {
                    assert!(done > now, "a merged fill must still be in flight");
                } else {
                    mshr.insert(line, now + delay, now);
                }
                now += 7;
            }
        }
    }
}

mod camera_properties {
    use cooprt::math::Vec3;
    use cooprt::scenes::Camera;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn primary_rays_are_unit_and_forward() {
        let mut rng = StdRng::seed_from_u64(501);
        for _ in 0..64 {
            let s = rng.random_range(0.0f32..1.0);
            let t = rng.random_range(0.0f32..1.0);
            let fov = rng.random_range(20.0f32..100.0);
            let cam = Camera::look_at(Vec3::new(0.0, 2.0, 10.0), Vec3::ZERO, Vec3::Y, fov, 1.0);
            let r = cam.primary_ray(s, t);
            assert!((r.dir.length() - 1.0).abs() < 1e-4);
            assert_eq!(r.orig, Vec3::new(0.0, 2.0, 10.0));
            // All rays within the frustum point broadly toward the target.
            let toward = (Vec3::ZERO - r.orig).normalized();
            assert!(r.dir.dot(toward) > 0.0);
        }
    }
}

mod tie_break_regression {
    use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
    use cooprt::scenes::SceneId;

    /// Regression for a bug property testing found: a camera ray
    /// through a shared mesh edge ties between the two adjacent
    /// triangles at the exact same `t`; without index tie-breaking the
    /// winner depended on traversal order, so CoopRT with (buffer=2,
    /// subwarp=16) rendered one pixel differently from the baseline.
    #[test]
    fn edge_ties_are_order_independent() {
        let scene = SceneId::Wknd.build(2);
        let reference = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        let cfg = GpuConfig::small(2).with_warp_buffer(2).with_subwarp(16);
        let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        assert_eq!(r.image, reference.image);
    }
}

mod simulator_properties {
    use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
    use cooprt::scenes::SceneId;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn image_invariance_over_microarchitecture() {
        let scene = SceneId::Wknd.build(2);
        let reference = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(601);
        // Each case simulates a frame; keep the count small.
        for _ in 0..6 {
            let buffer = [2usize, 4, 8][rng.random_range(0usize..3)];
            let subwarp = [4usize, 8, 16, 32][rng.random_range(0usize..4)];
            let sms = rng.random_range(1usize..3);
            let cfg = GpuConfig::small(sms)
                .with_warp_buffer(buffer)
                .with_subwarp(subwarp);
            let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap();
            assert_eq!(
                r.image, reference.image,
                "buffer={buffer} subwarp={subwarp} sms={sms}"
            );
            assert!(r.cycles > 0);
        }
    }
}
