//! Property-based tests over the core data structures and the
//! simulator's functional invariants.

use cooprt::bvh::traverse::{any_hit, brute_force_closest_hit, closest_hit};
use cooprt::bvh::{build_binary, BvhImage, WideBvh, MAX_ARITY};
use cooprt::math::{Aabb, Ray, Triangle, Vec3};
use proptest::prelude::*;

fn arb_vec3(range: f32) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_triangle() -> impl Strategy<Value = Triangle> {
    (arb_vec3(10.0), arb_vec3(2.0), arb_vec3(2.0)).prop_filter_map(
        "non-degenerate triangle",
        |(base, e1, e2)| {
            let t = Triangle::new(base, base + e1, base + e2);
            (t.double_area() > 1e-4).then_some(t)
        },
    )
}

fn arb_ray() -> impl Strategy<Value = Ray> {
    (arb_vec3(15.0), arb_vec3(1.0)).prop_filter_map("non-zero direction", |(o, d)| {
        (d.length_squared() > 1e-4).then(|| Ray::new(o, d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aabb_union_contains_both_operands(a in arb_vec3(10.0), b in arb_vec3(10.0),
                                         c in arb_vec3(10.0), d in arb_vec3(10.0)) {
        let x = Aabb::new(a, b);
        let y = Aabb::new(c, d);
        let u = x.union(&y);
        prop_assert!(u.contains(x.min) && u.contains(x.max));
        prop_assert!(u.contains(y.min) && u.contains(y.max));
        // Union is commutative and idempotent.
        prop_assert_eq!(u, y.union(&x));
        prop_assert_eq!(u.union(&u), u);
    }

    #[test]
    fn slab_test_agrees_with_contained_points(a in arb_vec3(5.0), b in arb_vec3(5.0),
                                              ray in arb_ray(), t in 0.0f32..20.0) {
        // If the point at parameter t is inside the box, the slab test
        // must report a hit with entry distance <= t.
        let bbox = Aabb::new(a, b);
        if bbox.contains(ray.at(t)) {
            let hit = bbox.intersect(&ray, f32::INFINITY);
            prop_assert!(hit.is_some(), "point inside at t={t} but slab missed");
            prop_assert!(hit.unwrap() <= t + 1e-3);
        }
    }

    #[test]
    fn triangle_hits_lie_on_the_plane(tri in arb_triangle(), ray in arb_ray()) {
        if let Some(h) = tri.intersect(&ray, f32::INFINITY) {
            let p = ray.at(h.t);
            let n = tri.normal();
            let dist = (p - tri.v0).dot(n).abs();
            prop_assert!(dist < 2e-2, "hit point {dist} off the plane");
            prop_assert!(h.u >= 0.0 && h.v >= 0.0 && h.u + h.v <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn triangle_bounds_contain_all_hits(tri in arb_triangle(), ray in arb_ray()) {
        if let Some(h) = tri.intersect(&ray, f32::INFINITY) {
            let p = ray.at(h.t);
            let grown = {
                let b = tri.bounds();
                Aabb::new(b.min - Vec3::splat(1e-2), b.max + Vec3::splat(1e-2))
            };
            prop_assert!(grown.contains(p));
        }
    }

    #[test]
    fn bvh_traversal_equals_brute_force(tris in prop::collection::vec(arb_triangle(), 1..60),
                                        rays in prop::collection::vec(arb_ray(), 1..20)) {
        let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris);
        for ray in &rays {
            let a = closest_hit(&image, ray, f32::INFINITY);
            let b = brute_force_closest_hit(&image, ray, f32::INFINITY);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    // Same distance always; same primitive unless two
                    // triangles coincide at the same t.
                    prop_assert!((x.t - y.t).abs() < 1e-3, "t {} vs {}", x.t, y.t);
                }
                (x, y) => prop_assert!(false, "bvh {x:?} vs brute {y:?}"),
            }
        }
    }

    #[test]
    fn any_hit_is_consistent_with_closest_hit(tris in prop::collection::vec(arb_triangle(), 1..40),
                                              ray in arb_ray(), t_max in 0.5f32..50.0) {
        let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris);
        let closest = closest_hit(&image, &ray, t_max);
        prop_assert_eq!(any_hit(&image, &ray, t_max), closest.is_some());
    }

    #[test]
    fn wide_bvh_structure_invariants(tris in prop::collection::vec(arb_triangle(), 1..80)) {
        let binary = build_binary(&tris);
        let wide = WideBvh::from_binary(&binary);
        prop_assert!(wide.max_arity() <= MAX_ARITY);
        prop_assert_eq!(wide.leaf_count(), tris.len());
        prop_assert!(wide.depth() <= binary.depth());
        // Serialization round-trips every node address.
        let image = BvhImage::serialize(&wide, &tris);
        prop_assert_eq!(image.node_count(), wide.nodes.len());
        for node in &image {
            prop_assert!(image.node_at(node.addr).is_some());
        }
    }

    #[test]
    fn shrinking_t_max_never_adds_hits(tris in prop::collection::vec(arb_triangle(), 1..30),
                                       ray in arb_ray(), t1 in 1.0f32..10.0, t2 in 10.0f32..100.0) {
        let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris);
        let near = closest_hit(&image, &ray, t1);
        let far = closest_hit(&image, &ray, t2);
        if let Some(n) = near {
            // Anything found within t1 must also be the closest within t2.
            prop_assert!(far.is_some());
            prop_assert!((far.unwrap().t - n.t).abs() < 1e-4);
        }
    }
}

mod cache_properties {
    use cooprt::gpu::Cache;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn hits_never_exceed_accesses(addrs in prop::collection::vec(0u64..4096, 1..200)) {
            let mut c = Cache::new(512, 2, 64);
            for a in &addrs {
                c.access_line(*a);
            }
            let s = c.stats();
            prop_assert_eq!(s.accesses, addrs.len() as u64);
            prop_assert!(s.hits <= s.accesses);
        }

        #[test]
        fn immediate_reaccess_always_hits(addrs in prop::collection::vec(0u64..4096, 1..100)) {
            let mut c = Cache::new(1024, 0, 64);
            for a in &addrs {
                c.access_line(*a);
                prop_assert!(c.access_line(*a), "line {a} must hit right after fill");
            }
        }

        #[test]
        fn working_set_within_capacity_converges_to_all_hits(
            lines in prop::collection::vec(0u64..8, 1..50)
        ) {
            // 8 lines of capacity, addresses drawn from 8 lines: after one
            // full pass, everything hits.
            let mut c = Cache::new(8 * 64, 0, 64);
            for l in 0u64..8 {
                c.access_line(l * 64);
            }
            for l in &lines {
                prop_assert!(c.access_line(l * 64));
            }
        }
    }
}

mod lbu_properties {
    use cooprt::core::lbu::find_pairs;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn pairs_are_valid_and_disjoint(can in any::<u32>(), needs_raw in any::<u32>(),
                                        sw in prop::sample::select(vec![4usize, 8, 16, 32])) {
            // The hardware masks are disjoint by construction (an empty
            // stack is not a non-empty stack).
            let needs = needs_raw & !can;
            let pairs = find_pairs(can, needs, sw);
            prop_assert!(pairs.len() <= 32 / sw);
            for p in &pairs {
                prop_assert!(can & (1 << p.helper) != 0, "helper must be eligible");
                prop_assert!(needs & (1 << p.main) != 0, "main must need help");
                prop_assert_eq!(p.helper / sw, p.main / sw, "pair stays in its subwarp");
                prop_assert_ne!(p.helper, p.main);
            }
            // At most one pair per subwarp group.
            let mut groups: Vec<usize> = pairs.iter().map(|p| p.helper / sw).collect();
            groups.sort_unstable();
            groups.dedup();
            prop_assert_eq!(groups.len(), pairs.len());
        }

        #[test]
        fn whole_warp_finds_a_pair_iff_both_masks_nonempty(can in any::<u32>(),
                                                           needs_raw in any::<u32>()) {
            let needs = needs_raw & !can;
            let pairs = find_pairs(can, needs, 32);
            prop_assert_eq!(pairs.is_empty(), can == 0 || needs == 0);
        }
    }
}

mod mshr_properties {
    use cooprt::gpu::Mshr;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn lookups_never_return_expired_fills(
            ops in prop::collection::vec((0u64..32, 1u64..1000), 1..100)
        ) {
            let mut mshr = Mshr::new(8);
            let mut now = 0u64;
            for (line, delay) in ops {
                if let Some(done) = mshr.lookup(line, now) {
                    prop_assert!(done > now, "a merged fill must still be in flight");
                } else {
                    mshr.insert(line, now + delay, now);
                }
                now += 7;
            }
        }
    }
}

mod camera_properties {
    use cooprt::scenes::Camera;
    use cooprt::math::Vec3;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn primary_rays_are_unit_and_forward(s in 0.0f32..1.0, t in 0.0f32..1.0,
                                             fov in 20.0f32..100.0) {
            let cam = Camera::look_at(
                Vec3::new(0.0, 2.0, 10.0),
                Vec3::ZERO,
                Vec3::Y,
                fov,
                1.0,
            );
            let r = cam.primary_ray(s, t);
            prop_assert!((r.dir.length() - 1.0).abs() < 1e-4);
            prop_assert_eq!(r.orig, Vec3::new(0.0, 2.0, 10.0));
            // All rays within the frustum point broadly toward the target.
            let toward = (Vec3::ZERO - r.orig).normalized();
            prop_assert!(r.dir.dot(toward) > 0.0);
        }
    }
}

mod tie_break_regression {
    use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
    use cooprt::scenes::SceneId;

    /// Regression for a bug proptest found: a camera ray through a
    /// shared mesh edge ties between the two adjacent triangles at the
    /// exact same `t`; without index tie-breaking the winner depended
    /// on traversal order, so CoopRT with (buffer=2, subwarp=16)
    /// rendered one pixel differently from the baseline.
    #[test]
    fn edge_ties_are_order_independent() {
        let scene = SceneId::Wknd.build(2);
        let reference = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8);
        let cfg = GpuConfig::small(2).with_warp_buffer(2).with_subwarp(16);
        let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 8, 8);
        assert_eq!(r.image, reference.image);
    }
}

mod simulator_properties {
    use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
    use cooprt::scenes::SceneId;
    use proptest::prelude::*;

    proptest! {
        // Each case simulates two frames; keep the count small.
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn image_invariance_over_microarchitecture(
            buffer in prop::sample::select(vec![2usize, 4, 8]),
            subwarp in prop::sample::select(vec![4usize, 8, 16, 32]),
            sms in 1usize..3,
        ) {
            let scene = SceneId::Wknd.build(2);
            let reference = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
                .run_frame(ShaderKind::PathTrace, 8, 8);
            let cfg = GpuConfig::small(sms).with_warp_buffer(buffer).with_subwarp(subwarp);
            let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
                .run_frame(ShaderKind::PathTrace, 8, 8);
            prop_assert_eq!(r.image, reference.image);
            prop_assert!(r.cycles > 0);
        }
    }
}
