//! End-to-end rendering-quality checks: the simulated GPU is also a
//! correct path tracer, so multi-sample accumulation must converge and
//! images must respond to the scene in physically sensible ways.

use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::math::{Image, Rgb};
use cooprt::scenes::SceneId;

fn mean_luminance(px: &[Rgb]) -> f64 {
    px.iter().map(|c| c.luminance() as f64).sum::<f64>() / px.len() as f64
}

#[test]
fn accumulation_converges_toward_a_reference() {
    // More samples per pixel must land closer to a high-spp reference
    // than one sample does (Monte Carlo convergence through the whole
    // simulated GPU stack).
    let scene = SceneId::Wknd.build(4);
    let cfg = GpuConfig::small(2);
    let sim = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt);
    let (reference, _) = sim
        .run_accumulated(ShaderKind::PathTrace, 12, 12, 24)
        .unwrap();
    let (one, _) = sim
        .run_accumulated(ShaderKind::PathTrace, 12, 12, 1)
        .unwrap();
    let (eight, _) = sim
        .run_accumulated(ShaderKind::PathTrace, 12, 12, 8)
        .unwrap();
    let reference = Image::from_pixels(12, 12, reference);
    let mse_one = reference.mse(&Image::from_pixels(12, 12, one));
    let mse_eight = reference.mse(&Image::from_pixels(12, 12, eight));
    assert!(
        mse_eight < mse_one,
        "8 spp (mse {mse_eight:.5}) must beat 1 spp (mse {mse_one:.5})"
    );
}

#[test]
fn closed_dark_scene_is_darker_than_daylight() {
    let cfg = GpuConfig::small(2);
    let day = SceneId::Wknd.build(2);
    let night = SceneId::Spnza.build(2); // closed room, small lights
    let day_img = Simulation::new(&day, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    let night_img = Simulation::new(&night, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    assert!(
        mean_luminance(&day_img.image) > mean_luminance(&night_img.image),
        "daylight {:.3} should out-shine the closed atrium {:.3}",
        mean_luminance(&day_img.image),
        mean_luminance(&night_img.image)
    );
}

#[test]
fn ao_images_are_bounded_by_albedo() {
    // AO = albedo * visibility, so no pixel can exceed the scene's
    // brightest albedo/sky value by construction.
    let scene = SceneId::Chsnt.build(2);
    let cfg = GpuConfig::small(2);
    let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::AmbientOcclusion, 12, 12)
        .unwrap();
    for px in &r.image {
        assert!(
            px.r <= 1.01 && px.g <= 1.01 && px.b <= 1.01,
            "AO pixel out of range: {px:?}"
        );
        assert!(px.r >= 0.0 && px.g >= 0.0 && px.b >= 0.0);
    }
}

#[test]
fn ppm_export_roundtrips_dimensions() {
    let scene = SceneId::Ship.build(2);
    let cfg = GpuConfig::small(2);
    let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 9, 7)
        .unwrap();
    let ppm = r.image_buffer().to_ppm();
    let header = b"P6\n9 7\n255\n";
    assert_eq!(&ppm[..header.len()], header);
    assert_eq!(ppm.len(), header.len() + 9 * 7 * 3);
}

#[test]
fn psnr_between_policies_is_infinite() {
    // Not just equal buffers: the metric itself reports perfection.
    let scene = SceneId::Bath.build(2);
    let cfg = GpuConfig::small(2);
    let a = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 8, 8)
        .unwrap();
    let b = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 8, 8)
        .unwrap();
    assert_eq!(a.image_buffer().psnr(&b.image_buffer()), f64::INFINITY);
}
