//! Cross-crate functional correctness: the simulated RT unit (baseline
//! and CoopRT, all subwarp scopes) must compute exactly the hits that
//! the CPU reference traversal computes, which in turn must match brute
//! force over the triangle soup.

use cooprt::bvh::traverse::{brute_force_closest_hit, closest_hit};
use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy, WARP_SIZE};
use cooprt::core::{RtUnit, TraceQuery};
use cooprt::gpu::MemoryHierarchy;
use cooprt::math::Ray;
use cooprt::scenes::{Scene, SceneId};

fn primary_rays(scene: &Scene, n: usize) -> [Option<Ray>; WARP_SIZE] {
    let mut rays = [None; WARP_SIZE];
    for (i, slot) in rays.iter_mut().enumerate().take(n) {
        let u = 0.1 + 0.8 * (i as f32 / WARP_SIZE as f32);
        *slot = Some(scene.camera.primary_ray(u, 0.4 + 0.01 * i as f32));
    }
    rays
}

fn drain_rt(
    rt: &mut RtUnit,
    mem: &mut MemoryHierarchy,
    scene: &Scene,
    policy: TraversalPolicy,
    cfg: &GpuConfig,
) -> Vec<cooprt::core::TraceResult> {
    let mut retired = Vec::new();
    let mut now = 0;
    while rt.occupied() > 0 {
        rt.step(now, mem, scene, policy, cfg, &mut retired);
        now += 1;
        assert!(now < 50_000_000, "RT unit wedged");
    }
    retired
}

#[test]
fn bvh_reference_matches_brute_force_on_every_scene() {
    for id in [SceneId::Wknd, SceneId::Spnza, SceneId::Crnvl, SceneId::Fox] {
        let scene = id.build(2);
        for i in 0..40 {
            let u = (i % 8) as f32 / 8.0 + 0.05;
            let v = (i / 8) as f32 / 5.0 + 0.05;
            let ray = scene.camera.primary_ray(u, v);
            let a = closest_hit(&scene.image, &ray, f32::INFINITY);
            let b = brute_force_closest_hit(&scene.image, &ray, f32::INFINITY);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.triangle, y.triangle, "{id} ray {i}");
                    assert!((x.t - y.t).abs() < 1e-4);
                }
                (x, y) => panic!("{id} ray {i}: bvh {x:?} vs brute {y:?}"),
            }
        }
    }
}

#[test]
fn rt_unit_matches_cpu_reference_for_all_policies_and_subwarps() {
    let scene = SceneId::Party.build(3);
    let rays = primary_rays(&scene, WARP_SIZE);
    let expected: Vec<_> = rays
        .iter()
        .map(|r| r.map(|ray| closest_hit(&scene.image, &ray, f32::INFINITY)))
        .collect();

    let cases = [
        (TraversalPolicy::Baseline, 32usize),
        (TraversalPolicy::CoopRt, 32),
        (TraversalPolicy::CoopRt, 16),
        (TraversalPolicy::CoopRt, 8),
        (TraversalPolicy::CoopRt, 4),
    ];
    for (policy, subwarp) in cases {
        let cfg = GpuConfig::small(1).with_subwarp(subwarp);
        let mut rt = RtUnit::new(0, cfg.warp_buffer_size);
        let mut mem = MemoryHierarchy::new(&cfg.mem);
        assert!(rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene));
        let retired = drain_rt(&mut rt, &mut mem, &scene, policy, &cfg);
        assert_eq!(retired.len(), 1);
        for (i, exp) in expected.iter().enumerate() {
            let got = retired[0].hits[i];
            match (exp, got) {
                (None, None) | (Some(None), None) => {}
                (Some(Some(e)), Some(g)) => {
                    assert_eq!(e.triangle, g.triangle, "{policy:?}/sw{subwarp} thread {i}");
                    assert!((e.t - g.t).abs() < 1e-4);
                }
                other => panic!("{policy:?}/sw{subwarp} thread {i}: {other:?}"),
            }
        }
    }
}

#[test]
fn frame_images_match_across_every_configuration() {
    // The rendered image is a pure function of the scene and shader —
    // never of the microarchitecture.
    let scene = SceneId::Chsnt.build(2);
    let reference = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 8, 8)
        .unwrap();
    let variations = [
        GpuConfig::small(2).with_warp_buffer(16),
        GpuConfig::small(4),
        GpuConfig::small(2).with_subwarp(8),
        GpuConfig::mobile(),
    ];
    for (i, cfg) in variations.iter().enumerate() {
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let r = Simulation::new(&scene, cfg, policy)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap();
            assert_eq!(r.image, reference.image, "variation {i} under {policy:?}");
        }
    }
}

#[test]
fn warp_with_mixed_active_and_masked_threads_is_exact() {
    let scene = SceneId::Bunny.build(2);
    let cfg = GpuConfig::small(1);
    let rays = primary_rays(&scene, 5); // 27 masked threads
    for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        let mut rt = RtUnit::new(0, 4);
        let mut mem = MemoryHierarchy::new(&cfg.mem);
        rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene);
        let retired = drain_rt(&mut rt, &mut mem, &scene, policy, &cfg);
        for i in 5..WARP_SIZE {
            assert!(
                retired[0].hits[i].is_none(),
                "masked thread {i} must report no hit"
            );
        }
        #[allow(clippy::needless_range_loop)] // i is the SIMT lane id
        for i in 0..5 {
            let exp = closest_hit(&scene.image, &rays[i].unwrap(), f32::INFINITY);
            assert_eq!(
                exp.is_some(),
                retired[0].hits[i].is_some(),
                "thread {i} ({policy:?})"
            );
        }
    }
}

#[test]
fn any_hit_results_agree_with_reference_any_hit() {
    let scene = SceneId::Ref.build(2);
    let cfg = GpuConfig::small(1);
    let rays = primary_rays(&scene, 16);
    let mut query = TraceQuery::closest_hit(0, rays);
    query.any_hit = true;
    query.t_max = [20.0; WARP_SIZE];
    for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        let mut rt = RtUnit::new(0, 4);
        let mut mem = MemoryHierarchy::new(&cfg.mem);
        rt.issue(query.clone(), 0, &scene);
        let retired = drain_rt(&mut rt, &mut mem, &scene, policy, &cfg);
        #[allow(clippy::needless_range_loop)] // i is the SIMT lane id
        for i in 0..16 {
            let expected = cooprt::bvh::traverse::any_hit(&scene.image, &rays[i].unwrap(), 20.0);
            assert_eq!(
                retired[0].hits[i].is_some(),
                expected,
                "thread {i} any-hit mismatch ({policy:?})"
            );
        }
    }
}
