//! Smoke-scale checks of the paper's qualitative claims. Each test runs
//! a reduced version of an evaluation experiment and asserts the *shape*
//! of the result (who wins, in which direction), not absolute numbers.

use cooprt::core::area::{cooprt_area, overhead_fraction, warp_buffer_bits};
use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::SceneId;

const RES: usize = 16;
const DETAIL: u32 = 6;

fn speedup(id: SceneId, cfg: &GpuConfig, kind: ShaderKind) -> f64 {
    let scene = id.build(DETAIL);
    let base = Simulation::new(&scene, cfg, TraversalPolicy::Baseline)
        .run_frame(kind, RES, RES)
        .unwrap();
    let coop = Simulation::new(&scene, cfg, TraversalPolicy::CoopRt)
        .run_frame(kind, RES, RES)
        .unwrap();
    assert_eq!(base.image, coop.image);
    base.cycles as f64 / coop.cycles as f64
}

#[test]
fn fig9_cooprt_speeds_up_path_tracing() {
    let cfg = GpuConfig::small(2);
    let mut product = 1.0;
    let ids = [SceneId::Ship, SceneId::Bunny, SceneId::Fox, SceneId::Lands];
    for id in ids {
        let s = speedup(id, &cfg, ShaderKind::PathTrace);
        assert!(s > 1.0, "{id}: speedup {s:.2} must exceed 1");
        product *= s;
    }
    let gmean = product.powf(1.0 / ids.len() as f64);
    assert!(
        gmean > 1.3,
        "gmean {gmean:.2} should be well above 1 (paper: 2.15)"
    );
}

#[test]
fn fig1_rt_instructions_dominate_stalls() {
    let scene = SceneId::Bath.build(DETAIL);
    let cfg = GpuConfig::small(2);
    let r = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let f = r.stalls.fractions();
    assert!(
        f[0] > f[1] && f[0] > f[2] && f[0] > f[3],
        "RT must dominate: {f:?}"
    );
}

#[test]
fn fig4_substantial_thread_time_is_wasted_at_baseline() {
    // At full experiment scale the wasted fraction is ~0.8 (see the
    // fig04 bench); at this smoke scale we assert it stays substantial.
    let scene = SceneId::Crnvl.build(DETAIL);
    let cfg = GpuConfig::small(2);
    let r = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let [busy, waiting, inactive] = r.activity.status_distribution();
    assert!(
        waiting + inactive > 0.35,
        "divergent scene should waste substantial thread-cycles: busy={busy:.2} waiting={waiting:.2} inactive={inactive:.2}"
    );
}

#[test]
fn fig10_utilization_improvement_tracks_speedup() {
    let cfg = GpuConfig::small(2);
    // A divergent open scene should improve utilization more than the
    // closed spnza atrium, and win more speedup.
    let measure = |id: SceneId| {
        let scene = id.build(DETAIL);
        let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, RES, RES)
            .unwrap();
        let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, RES, RES)
            .unwrap();
        (
            coop.activity.avg_utilization() - base.activity.avg_utilization(),
            base.cycles as f64 / coop.cycles as f64,
        )
    };
    let (delta_fox, s_fox) = measure(SceneId::Fox);
    assert!(delta_fox > 0.0, "CoopRT must raise utilization on fox");
    assert!(s_fox > 1.0);
}

#[test]
fn fig12_cooprt_raises_memory_bandwidth() {
    let scene = SceneId::Lands.build(DETAIL);
    let cfg = GpuConfig::small(2);
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    assert!(
        coop.mem.l2_bandwidth(coop.cycles) > base.mem.l2_bandwidth(base.cycles),
        "same fills in fewer cycles -> higher L2 bandwidth"
    );
}

#[test]
fn fig13_larger_warp_buffers_help_the_baseline() {
    let scene = SceneId::Frst.build(DETAIL);
    // Use one SM so all warps contend for one RT unit.
    let small = GpuConfig::small(1);
    let big = GpuConfig::small(1).with_warp_buffer(16);
    let r_small = Simulation::new(&scene, &small, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let r_big = Simulation::new(&scene, &big, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    assert!(
        r_big.cycles < r_small.cycles,
        "16-entry buffer ({}) should beat 4-entry ({})",
        r_big.cycles,
        r_small.cycles
    );
}

#[test]
fn fig13_cooprt_at_4_entries_competes_with_big_baseline_buffers() {
    let scene = SceneId::Fox.build(DETAIL);
    let cfg4 = GpuConfig::small(1);
    let cfg32 = GpuConfig::small(1).with_warp_buffer(32);
    let coop4 = Simulation::new(&scene, &cfg4, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let base32 = Simulation::new(&scene, &cfg32, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    assert!(
        coop4.cycles < base32.cycles,
        "paper: CoopRT@4 ({}) beats baseline@32 ({})",
        coop4.cycles,
        base32.cycles
    );
}

#[test]
fn fig14_cooprt_shortens_the_slowest_warp() {
    let scene = SceneId::Car.build(DETAIL);
    let cfg = GpuConfig::small(2);
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    assert!(coop.slowest_warp_cycles < base.slowest_warp_cycles);
}

#[test]
fn fig15_cooprt_improves_edp() {
    let scene = SceneId::Sprng.build(DETAIL);
    let cfg = GpuConfig::small(2);
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    assert!(
        coop.energy.edp() < base.energy.edp(),
        "EDP must improve under CoopRT"
    );
}

#[test]
fn fig17_pt_gains_exceed_coherent_shader_gains() {
    let cfg = GpuConfig::small(2);
    let pt = speedup(SceneId::Fox, &cfg, ShaderKind::PathTrace);
    let ao = speedup(SceneId::Fox, &cfg, ShaderKind::AmbientOcclusion);
    assert!(
        pt > ao,
        "divergent PT ({pt:.2}x) should gain more than coherent AO ({ao:.2}x)"
    );
    assert!(ao >= 0.95, "AO must not regress under CoopRT");
}

#[test]
fn fig18_mobile_config_still_wins() {
    let s = speedup(SceneId::Party, &GpuConfig::mobile(), ShaderKind::PathTrace);
    assert!(s > 1.0, "mobile speedup {s:.2}");
}

#[test]
fn fig19_whole_warp_scope_is_at_least_as_good_as_subwarp_4() {
    let scene = SceneId::Lands.build(DETAIL);
    let run_sw = |sw: usize| {
        let cfg = GpuConfig::small(2).with_subwarp(sw);
        Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, RES, RES)
            .unwrap()
            .cycles
    };
    let c4 = run_sw(4);
    let c32 = run_sw(32);
    assert!(
        c32 <= c4,
        "whole-warp ({c32}) must not lose to subwarp-4 ({c4})"
    );
}

#[test]
fn table3_area_claims() {
    assert!(cooprt_area(4).cells() < cooprt_area(32).cells());
    assert!(
        overhead_fraction(32, 4) < 0.033,
        "the <3% warp-buffer claim"
    );
    assert_eq!(warp_buffer_bits(4), 98_304);
}

#[test]
fn power_shape_matches_fig9() {
    // Same traversal work in fewer cycles: power up, energy roughly
    // flat or down — never up by more than a few percent beyond the
    // speedup structure allows.
    let scene = SceneId::Lands.build(DETAIL);
    let cfg = GpuConfig::small(2);
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, RES, RES)
        .unwrap();
    let power_ratio = coop.energy.avg_power_w() / base.energy.avg_power_w();
    let energy_ratio = coop.energy.total_j() / base.energy.total_j();
    assert!(
        power_ratio > 1.0,
        "CoopRT concentrates the same work: power must rise"
    );
    assert!(
        energy_ratio < 1.15,
        "energy should stay near baseline (paper: 0.94x)"
    );
}
