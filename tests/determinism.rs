//! Determinism: the whole stack — scene generation, BVH build,
//! simulation, statistics — must be bit-reproducible run to run, which
//! is what makes the benchmark harness trustworthy.

use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::{SceneId, ALL_SCENES};

#[test]
fn scene_generation_is_reproducible() {
    for id in ALL_SCENES {
        let a = id.build(2);
        let b = id.build(2);
        assert_eq!(a.image.triangles(), b.image.triangles(), "{id}");
        assert_eq!(a.stats, b.stats, "{id}");
        assert_eq!(a.lights, b.lights, "{id}");
    }
}

#[test]
fn full_simulation_is_reproducible() {
    let scene = SceneId::Crnvl.build(2);
    let cfg = GpuConfig::small(2);
    for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        let a = Simulation::new(&scene, &cfg, policy)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        let b = Simulation::new(&scene, &cfg, policy)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        assert_eq!(a.cycles, b.cycles, "{policy:?}");
        assert_eq!(a.image, b.image);
        assert_eq!(a.events, b.events);
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.stalls, b.stalls);
        assert_eq!(a.slowest_warp_cycles, b.slowest_warp_cycles);
    }
}

#[test]
fn activity_sampling_is_reproducible() {
    let scene = SceneId::Bath.build(2);
    let cfg = GpuConfig::small(2);
    let a = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    let b = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    assert_eq!(a.activity.samples, b.activity.samples);
}

#[test]
fn timelines_are_reproducible() {
    let scene = SceneId::Spnza.build(2);
    let cfg = GpuConfig::small(2);
    let a = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .with_timeline_warp(1)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    let b = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .with_timeline_warp(1)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    assert_eq!(a.timeline, b.timeline);
}

#[test]
fn accumulation_is_worker_count_invariant() {
    // The parallel sample runner distributes spp over worker threads but
    // reduces in fixed sample order, so any worker count produces the
    // same bits as the sequential path.
    let scene = SceneId::Fox.build(2);
    let sim = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::CoopRt);
    let (ref_accum, ref_frames) = sim
        .run_accumulated_with_threads(ShaderKind::PathTrace, 8, 8, 3, 1)
        .unwrap();
    for workers in [2, 8] {
        let (accum, frames) = sim
            .run_accumulated_with_threads(ShaderKind::PathTrace, 8, 8, 3, workers)
            .unwrap();
        assert_eq!(accum, ref_accum, "{workers} workers");
        for (a, b) in ref_frames.iter().zip(&frames) {
            assert_eq!(a.image, b.image);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.events, b.events);
        }
    }
}

#[test]
fn different_details_produce_different_scenes() {
    let a = SceneId::Fox.build(2);
    let b = SceneId::Fox.build(3);
    assert_ne!(a.triangle_count(), b.triangle_count());
}

#[test]
fn shader_kinds_produce_distinct_images() {
    let scene = SceneId::Wknd.build(2);
    let cfg = GpuConfig::small(2);
    let pt = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 8, 8)
        .unwrap();
    let ao = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::AmbientOcclusion, 8, 8)
        .unwrap();
    let sh = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::Shadow, 8, 8)
        .unwrap();
    assert_ne!(pt.image, ao.image);
    assert_ne!(ao.image, sh.image);
}
