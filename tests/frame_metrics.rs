//! Invariants of the measurement plumbing itself: every statistic a
//! `FrameResult` reports must be internally consistent, for every
//! combination of policy and shader.

use cooprt::core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt::scenes::SceneId;

fn all_runs() -> Vec<(TraversalPolicy, ShaderKind)> {
    let mut v = Vec::new();
    for p in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        for k in [
            ShaderKind::PathTrace,
            ShaderKind::AmbientOcclusion,
            ShaderKind::Shadow,
        ] {
            v.push((p, k));
        }
    }
    v
}

#[test]
fn frame_statistics_are_internally_consistent() {
    let scene = SceneId::Party.build(3);
    let cfg = GpuConfig::small(2);
    for (policy, kind) in all_runs() {
        let r = Simulation::new(&scene, &cfg, policy)
            .run_frame(kind, 10, 10)
            .unwrap();
        let label = format!("{policy:?}/{kind:?}");

        // Image geometry.
        assert_eq!(r.image.len(), 100, "{label}");
        let buf = r.image_buffer();
        assert_eq!((buf.width(), buf.height()), (10, 10));

        // One latency sample per trace instruction; none longer than
        // the frame.
        assert_eq!(
            r.trace_latencies.len() as u64,
            r.events.trace_instructions,
            "{label}"
        );
        assert!(r.trace_latencies.max() <= r.cycles, "{label}");
        assert!(r.slowest_warp_cycles <= r.cycles, "{label}");

        // Memory counters: hits never exceed accesses; fills imply
        // traffic in the right ratios.
        assert!(r.mem.l1.hits <= r.mem.l1.accesses, "{label}");
        assert!(r.mem.l2.hits <= r.mem.l2.accesses, "{label}");
        assert!(
            r.mem.dram_bytes <= r.mem.l2_bytes,
            "{label}: DRAM fills flow through L2"
        );

        // Activity samples are in increasing time order and within the
        // frame.
        assert!(
            r.activity
                .samples
                .windows(2)
                .all(|w| w[0].cycle < w[1].cycle),
            "{label}"
        );
        let dist = r.activity.status_distribution();
        assert!(
            (dist.iter().sum::<f64>() - 1.0).abs() < 1e-9 || dist == [0.0; 3],
            "{label}"
        );

        // Stall accounting covers all classes non-negatively and the
        // fractions normalize.
        let f = r.stalls.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{label}");

        // Energy: positive, consistent with cycles.
        assert!(r.energy.total_j() > 0.0, "{label}");
        assert_eq!(r.energy.cycles, r.cycles, "{label}");
        assert!(
            r.energy.dynamic_j > 0.0 && r.energy.static_j > 0.0,
            "{label}"
        );
    }
}

#[test]
fn lbu_moves_only_under_cooprt() {
    let scene = SceneId::Fox.build(3);
    let cfg = GpuConfig::small(2);
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    assert_eq!(base.events.lbu_moves, 0);
    assert!(coop.events.lbu_moves > 0);
}

#[test]
fn trace_count_matches_shader_structure() {
    // AO issues exactly 1 primary + ao_samples secondary trace waves per
    // warp that has a primary hit; with a closed room (every primary
    // hits), each warp issues 1 + ao_samples instructions.
    let scene = SceneId::Bath.build(2); // closed: all primaries hit
    let cfg = GpuConfig::small(2);
    let r = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::AmbientOcclusion, 16, 16)
        .unwrap();
    let warps = (16 * 16usize).div_ceil(32) as u64;
    assert_eq!(
        r.events.trace_instructions,
        warps * (1 + cfg.ao_samples as u64)
    );
}

#[test]
fn pt_trace_count_bounded_by_bounce_budget() {
    let scene = SceneId::Spnza.build(2);
    let mut cfg = GpuConfig::small(2);
    cfg.max_bounces = 5;
    let r = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 16, 16)
        .unwrap();
    let warps = (16 * 16usize).div_ceil(32) as u64;
    assert!(
        r.events.trace_instructions <= warps * 5,
        "budget must cap trace count"
    );
    assert!(
        r.events.trace_instructions >= warps,
        "every warp traces at least once"
    );
}

#[test]
fn mobile_and_desktop_agree_functionally() {
    let scene = SceneId::Sprng.build(2);
    let desktop = Simulation::new(&scene, &GpuConfig::small(4), TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 8, 8)
        .unwrap();
    let mobile = Simulation::new(&scene, &GpuConfig::mobile(), TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 8, 8)
        .unwrap();
    assert_eq!(desktop.image, mobile.image);
}

#[test]
fn bandwidth_metrics_scale_inversely_with_cycles() {
    // Same traffic in fewer cycles = more bandwidth; verify directly
    // from the counters rather than trusting the helper.
    let scene = SceneId::Lands.build(3);
    let cfg = GpuConfig::small(2);
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 10, 10)
        .unwrap();
    let bw = base.mem.l2_bandwidth(base.cycles);
    assert!((bw - base.mem.l2_bytes as f64 / base.cycles as f64).abs() < 1e-12);
    assert!(base.mem.l2_bandwidth(0) == 0.0);
}
