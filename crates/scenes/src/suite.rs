//! The 15-scene LumiBench-analog suite.
//!
//! Every scene is a deterministic procedural stand-in for its LumiBench
//! namesake (the paper's Table 2), matched in *character* rather than
//! geometry: relative size ordering, open/closed topology, light setup
//! and clutter density. The 16th LumiBench scene (`park`) is omitted, as
//! in the paper ("would not finish after 3 days of simulation").

use crate::generators::{box_at, heightfield, icosphere, room, scatter_clutter};
use crate::query::{
    amr_cells, cell_tris, clustered_points, point_cloud_tris, surface_points, uniform_points,
    QueryDomain,
};
use crate::{Camera, Material, Scene, SceneBuilder, Sky};
use cooprt_math::{Aabb, Rgb, Vec3};

/// Identifier of one benchmark scene.
///
/// Variants are ordered as in the paper's Fig. 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SceneId {
    /// "Ray Tracing in One Weekend" final scene: small, open, spheres on
    /// a ground plane. Smallest tree in the suite (paper: 0.2 MB).
    Wknd,
    /// A ship on open water.
    Ship,
    /// The Stanford bunny: one dense object over a ground plane.
    Bunny,
    /// Sponza atrium: **closed** interior, minimal exposed sky — the
    /// highest SIMT efficiency and thus the least CoopRT headroom.
    Spnza,
    /// A chestnut tree: trunk plus a dense foliage canopy.
    Chsnt,
    /// A bathroom interior: closed room with a large area light.
    Bath,
    /// A reflective interior ("ref"): closed room with metallic walls.
    Ref,
    /// A carnival: sparse, tall, widely spaced structures under open sky
    /// with many lights — highly divergent, biggest CoopRT win.
    Crnvl,
    /// A fox in a large landscape: huge open extent, one detailed blob.
    Fox,
    /// A night party: open plaza, strings of small lights.
    Party,
    /// Springlands terrain.
    Sprng,
    /// A large landscape height-field.
    Lands,
    /// A forest: terrain plus many trees.
    Frst,
    /// A detailed car model: very dense compact geometry (paper: 1.2 GB).
    Car,
    /// A robot model: the largest tree in the suite (paper: 1.7 GB).
    Robot,
    /// Query scene: uniformly distributed point cloud (kNN / radius
    /// search workload; not part of the paper's rendering suite).
    Quni,
    /// Query scene: clustered (Gaussian-mixture) point cloud — dense
    /// hotspots with sparse voids, the divergence-heavy profile.
    Qclu,
    /// Query scene: surface-sampled point cloud (a lidar-like shell).
    Qsrf,
    /// Query scene: two-level AMR cell grid (point-in-cell containment,
    /// after Zellmann et al.).
    Qamr,
}

/// All scenes in the paper's Fig. 9 order.
pub const ALL_SCENES: [SceneId; 15] = [
    SceneId::Wknd,
    SceneId::Ship,
    SceneId::Bunny,
    SceneId::Spnza,
    SceneId::Chsnt,
    SceneId::Bath,
    SceneId::Ref,
    SceneId::Crnvl,
    SceneId::Fox,
    SceneId::Party,
    SceneId::Sprng,
    SceneId::Lands,
    SceneId::Frst,
    SceneId::Car,
    SceneId::Robot,
];

/// The spatial-query scenes (point clouds and the AMR grid). Not part
/// of [`ALL_SCENES`]: rendering matrices and paper figures stay pinned
/// to the 15-scene suite; query workloads opt in explicitly.
pub const QUERY_SCENES: [SceneId; 4] = [SceneId::Quni, SceneId::Qclu, SceneId::Qsrf, SceneId::Qamr];

/// The scene subset used by the paper's Fig. 17 (AO/SH shaders).
pub const PAPER_FIG17_SCENES: [SceneId; 14] = [
    SceneId::Wknd,
    SceneId::Ship,
    SceneId::Bunny,
    SceneId::Spnza,
    SceneId::Bath,
    SceneId::Ref,
    SceneId::Crnvl,
    SceneId::Fox,
    SceneId::Party,
    SceneId::Sprng,
    SceneId::Lands,
    SceneId::Frst,
    SceneId::Car,
    SceneId::Robot,
];

impl SceneId {
    /// Scene label as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SceneId::Wknd => "wknd",
            SceneId::Ship => "ship",
            SceneId::Bunny => "bunny",
            SceneId::Spnza => "spnza",
            SceneId::Chsnt => "chsnt",
            SceneId::Bath => "bath",
            SceneId::Ref => "ref",
            SceneId::Crnvl => "crnvl",
            SceneId::Fox => "fox",
            SceneId::Party => "party",
            SceneId::Sprng => "sprng",
            SceneId::Lands => "lands",
            SceneId::Frst => "frst",
            SceneId::Car => "car",
            SceneId::Robot => "robot",
            SceneId::Quni => "quni",
            SceneId::Qclu => "qclu",
            SceneId::Qsrf => "qsrf",
            SceneId::Qamr => "qamr",
        }
    }

    /// Deterministic RNG seed for the scene's generators.
    fn seed(self) -> u64 {
        0xC00B_0000 + self as u64
    }

    /// Relative geometric weight, chosen to preserve the paper's Table 2
    /// tree-size ordering at any fixed `detail`.
    fn clutter_base(self) -> usize {
        match self {
            SceneId::Wknd => 2,
            SceneId::Ship => 4,
            SceneId::Bunny => 7,
            SceneId::Spnza => 10,
            SceneId::Chsnt => 12,
            SceneId::Bath => 14,
            SceneId::Ref => 16,
            SceneId::Crnvl => 46,
            SceneId::Party => 28,
            SceneId::Sprng => 26,
            SceneId::Lands => 30,
            SceneId::Frst => 54,
            SceneId::Fox => 60,
            SceneId::Car => 100,
            SceneId::Robot => 135,
            // Query scenes: points (or cells) per detail level.
            SceneId::Quni => 40,
            SceneId::Qclu => 40,
            SceneId::Qsrf => 40,
            SceneId::Qamr => 24,
        }
    }

    /// Grid side length for a height-field whose triangle count is
    /// roughly `tris_per_detail * detail` (linear in detail, like the
    /// clutter, so the Table 2 size ordering holds at every detail).
    fn hf_grid(detail: u32, tris_per_detail: u32) -> usize {
        let tris = (tris_per_detail * detail) as f64;
        2 + (tris / 2.0).sqrt().ceil() as usize
    }

    /// Builds the scene at the given `detail` level.
    ///
    /// Triangle count grows roughly linearly with `detail`; `detail = 8`
    /// yields suite sizes from ~100 to ~3500 triangles, enough for the
    /// BVHs to exceed the simulated L1 capacity on the larger scenes.
    ///
    /// # Panics
    ///
    /// Panics if `detail == 0`.
    pub fn build(self, detail: u32) -> Scene {
        assert!(detail > 0, "detail must be at least 1");
        let n = self.clutter_base() * detail as usize;
        let seed = self.seed();
        let gray = Material::Lambertian {
            albedo: Rgb::splat(0.5),
        };
        let tan = Material::Lambertian {
            albedo: Rgb::new(0.7, 0.6, 0.5),
        };
        let green = Material::Lambertian {
            albedo: Rgb::new(0.3, 0.6, 0.3),
        };
        let mirror = Material::Metal {
            albedo: Rgb::splat(0.9),
            fuzz: 0.05,
        };
        let glow = Rgb::new(6.0, 5.5, 5.0);

        match self {
            SceneId::Wknd => {
                // Spheres-on-a-plane under a daylight sky.
                let cam =
                    Camera::look_at(Vec3::new(13.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y, 30.0, 1.0);
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        crate::quad(
                            Vec3::new(-50.0, 0.0, -50.0),
                            Vec3::X * 100.0,
                            Vec3::Z * 100.0,
                        ),
                        green,
                    )
                    .push(icosphere(Vec3::new(0.0, 1.0, 0.0), 1.0, 0), tan)
                    .push(icosphere(Vec3::new(-4.0, 1.0, 0.0), 1.0, 0), mirror)
                    .push(
                        icosphere(Vec3::new(4.0, 1.0, 0.0), 1.0, 0),
                        Material::Dielectric {
                            refraction_index: 1.5,
                        },
                    )
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-11.0, 0.2, -11.0), Vec3::new(11.0, 0.6, 11.0)),
                            n,
                            0.15..0.35,
                            seed,
                        ),
                        gray,
                    )
                    .build()
            }
            SceneId::Ship => {
                let cam = Camera::look_at(
                    Vec3::new(0.0, 6.0, 24.0),
                    Vec3::new(0.0, 2.0, 0.0),
                    Vec3::Y,
                    40.0,
                    1.0,
                );
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    // Water.
                    .push(
                        crate::quad(
                            Vec3::new(-60.0, 0.0, -60.0),
                            Vec3::X * 120.0,
                            Vec3::Z * 120.0,
                        ),
                        Material::Metal {
                            albedo: Rgb::new(0.4, 0.5, 0.7),
                            fuzz: 0.3,
                        },
                    )
                    // Hull.
                    .push(
                        box_at(Vec3::new(0.0, 1.0, 0.0), Vec3::new(6.0, 1.0, 2.0)),
                        tan,
                    )
                    // Masts and rigging clutter.
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-5.0, 2.0, -1.5), Vec3::new(5.0, 9.0, 1.5)),
                            n,
                            0.1..0.4,
                            seed,
                        ),
                        gray,
                    )
                    .build()
            }
            SceneId::Bunny => {
                let cam = Camera::look_at(
                    Vec3::new(0.0, 3.0, 10.0),
                    Vec3::new(0.0, 2.0, 0.0),
                    Vec3::Y,
                    45.0,
                    1.0,
                );
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        crate::quad(Vec3::new(-30.0, 0.0, -30.0), Vec3::X * 60.0, Vec3::Z * 60.0),
                        green,
                    )
                    // One dense blob of geometry — the "bunny".
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-2.0, 0.5, -2.0), Vec3::new(2.0, 4.5, 2.0)),
                            n,
                            0.1..0.3,
                            seed,
                        ),
                        tan,
                    )
                    .build()
            }
            SceneId::Spnza => {
                // Closed atrium: every wall present, black sky; indoor
                // panel lights. All rays bounce the full budget unless
                // they die on a light — the paper's high-efficiency case.
                let cam = Camera::look_at(
                    Vec3::new(0.0, 6.0, 16.0),
                    Vec3::new(0.0, 5.0, 0.0),
                    Vec3::Y,
                    55.0,
                    1.0,
                );
                let shell = Aabb::new(Vec3::new(-20.0, 0.0, -20.0), Vec3::new(20.0, 14.0, 20.0));
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::Black)
                    .closed(true)
                    .push(room(shell, true), tan)
                    // Columns.
                    .push(
                        box_at(Vec3::new(-10.0, 5.0, 0.0), Vec3::new(1.0, 5.0, 1.0)),
                        gray,
                    )
                    .push(
                        box_at(Vec3::new(10.0, 5.0, 0.0), Vec3::new(1.0, 5.0, 1.0)),
                        gray,
                    )
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-16.0, 0.5, -16.0), Vec3::new(16.0, 9.0, 16.0)),
                            n,
                            0.2..0.6,
                            seed,
                        ),
                        gray,
                    )
                    // Two small ceiling lights.
                    .push_light(
                        Vec3::new(-6.0, 13.9, -6.0),
                        Vec3::X * 2.0,
                        Vec3::Z * 2.0,
                        glow,
                    )
                    .push_light(
                        Vec3::new(4.0, 13.9, 4.0),
                        Vec3::X * 2.0,
                        Vec3::Z * 2.0,
                        glow,
                    )
                    .build()
            }
            SceneId::Chsnt => {
                let cam = Camera::look_at(
                    Vec3::new(0.0, 5.0, 22.0),
                    Vec3::new(0.0, 7.0, 0.0),
                    Vec3::Y,
                    45.0,
                    1.0,
                );
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        crate::quad(Vec3::new(-40.0, 0.0, -40.0), Vec3::X * 80.0, Vec3::Z * 80.0),
                        green,
                    )
                    // Trunk.
                    .push(
                        box_at(Vec3::new(0.0, 3.0, 0.0), Vec3::new(0.8, 3.0, 0.8)),
                        tan,
                    )
                    // Canopy: dense foliage blob.
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-5.0, 6.0, -5.0), Vec3::new(5.0, 13.0, 5.0)),
                            n,
                            0.2..0.5,
                            seed,
                        ),
                        green,
                    )
                    .build()
            }
            SceneId::Bath => {
                // Closed room, one large area light; Fig. 11's example
                // warp (13 inactive threads) comes from this scene.
                let cam = Camera::look_at(
                    Vec3::new(0.0, 4.0, 11.0),
                    Vec3::new(0.0, 3.0, 0.0),
                    Vec3::Y,
                    50.0,
                    1.0,
                );
                let shell = Aabb::new(Vec3::new(-12.0, 0.0, -12.0), Vec3::new(12.0, 8.0, 12.0));
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::Black)
                    .closed(true)
                    .push(
                        room(shell, true),
                        Material::Lambertian {
                            albedo: Rgb::splat(0.75),
                        },
                    )
                    // Tub, sink, fixtures.
                    .push(
                        box_at(Vec3::new(-5.0, 1.0, -5.0), Vec3::new(3.0, 1.0, 1.5)),
                        gray,
                    )
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-10.0, 0.3, -10.0), Vec3::new(10.0, 5.0, 10.0)),
                            n,
                            0.15..0.45,
                            seed,
                        ),
                        gray,
                    )
                    // Large ceiling light: paths die on it often.
                    .push_light(
                        Vec3::new(-4.0, 7.9, -4.0),
                        Vec3::X * 8.0,
                        Vec3::Z * 8.0,
                        glow,
                    )
                    .build()
            }
            SceneId::Ref => {
                // Closed, mirrored interior: long specular chains.
                let cam = Camera::look_at(
                    Vec3::new(0.0, 4.0, 13.0),
                    Vec3::new(0.0, 3.0, 0.0),
                    Vec3::Y,
                    50.0,
                    1.0,
                );
                let shell = Aabb::new(Vec3::new(-14.0, 0.0, -14.0), Vec3::new(14.0, 9.0, 14.0));
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::Black)
                    .closed(true)
                    .push(room(shell, true), mirror)
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-11.0, 0.3, -11.0), Vec3::new(11.0, 6.0, 11.0)),
                            n,
                            0.2..0.5,
                            seed,
                        ),
                        tan,
                    )
                    .push_light(
                        Vec3::new(-2.0, 8.9, -2.0),
                        Vec3::X * 4.0,
                        Vec3::Z * 4.0,
                        glow,
                    )
                    .build()
            }
            SceneId::Crnvl => {
                // The paper's most divergent scene: sparse tall
                // structures under open sky, many lights.
                let cam = Camera::look_at(
                    Vec3::new(0.0, 9.0, 20.0),
                    Vec3::new(0.0, 11.0, 0.0),
                    Vec3::Y,
                    55.0,
                    1.0,
                );
                let mut b = SceneBuilder::new(self.name(), cam)
                    .sky(Sky::Gradient {
                        horizon: Rgb::new(0.2, 0.1, 0.3),
                        zenith: Rgb::new(0.02, 0.02, 0.08),
                    })
                    .push(
                        crate::quad(
                            Vec3::new(-80.0, 0.0, -80.0),
                            Vec3::X * 160.0,
                            Vec3::Z * 160.0,
                        ),
                        gray,
                    );
                // A dense fairground floor: primary rays mostly hit
                // *something* with a deep traversal, then escape to the
                // night sky after a bounce or two.
                b = b.push(
                    scatter_clutter(
                        Aabb::new(Vec3::new(-10.0, 0.2, -10.0), Vec3::new(10.0, 1.8, 10.0)),
                        n / 2,
                        0.04..0.16,
                        seed + 17,
                    ),
                    gray,
                );
                // Widely spaced tall "rides".
                for (i, x) in [-10.5f32, -3.5, 3.5, 10.5].iter().enumerate() {
                    b = b.push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(x - 2.0, 0.5, -2.0), Vec3::new(x + 2.0, 21.0, 2.0)),
                            n / 8,
                            0.04..0.16,
                            seed + i as u64,
                        ),
                        tan,
                    );
                    b = b.push_light(
                        Vec3::new(x - 1.0, 18.0, 0.0),
                        Vec3::X * 2.0,
                        Vec3::Z * 2.0,
                        glow,
                    );
                }
                b.build()
            }
            SceneId::Fox => {
                // Vast open extent; one dense detailed blob off-center.
                let cam = Camera::look_at(
                    Vec3::new(0.0, 4.0, 30.0),
                    Vec3::new(0.0, 2.0, 0.0),
                    Vec3::Y,
                    50.0,
                    1.0,
                );
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        {
                            let g = Self::hf_grid(detail, 190);
                            heightfield(g, g, 8.0, 1.2, seed)
                        },
                        green,
                    )
                    // The fox: dense small geometry.
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-4.0, 1.2, -4.0), Vec3::new(4.0, 6.0, 4.0)),
                            n,
                            0.05..0.2,
                            seed + 1,
                        ),
                        Material::Lambertian {
                            albedo: Rgb::new(0.8, 0.4, 0.1),
                        },
                    )
                    .build()
            }
            SceneId::Party => {
                let cam = Camera::look_at(
                    Vec3::new(0.0, 5.0, 28.0),
                    Vec3::new(0.0, 4.0, 0.0),
                    Vec3::Y,
                    50.0,
                    1.0,
                );
                let mut b = SceneBuilder::new(self.name(), cam)
                    .sky(Sky::Gradient {
                        horizon: Rgb::new(0.15, 0.1, 0.2),
                        zenith: Rgb::new(0.01, 0.01, 0.05),
                    })
                    .push(
                        crate::quad(
                            Vec3::new(-50.0, 0.0, -50.0),
                            Vec3::X * 100.0,
                            Vec3::Z * 100.0,
                        ),
                        gray,
                    )
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-14.0, 0.3, -14.0), Vec3::new(14.0, 7.0, 14.0)),
                            n,
                            0.1..0.35,
                            seed,
                        ),
                        tan,
                    );
                // Strings of small lights.
                for i in 0..8 {
                    let x = -14.0 + 4.0 * i as f32;
                    b = b.push_light(Vec3::new(x, 8.0, -8.0), Vec3::X * 0.8, Vec3::Z * 0.8, glow);
                }
                b.build()
            }
            SceneId::Sprng => {
                let cam = Camera::look_at(
                    Vec3::new(0.0, 10.0, 50.0),
                    Vec3::new(0.0, 2.0, 0.0),
                    Vec3::Y,
                    50.0,
                    1.0,
                );
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        {
                            let g = Self::hf_grid(detail, 130);
                            heightfield(g, g, 5.0, 2.5, seed)
                        },
                        green,
                    )
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-40.0, 1.5, -40.0), Vec3::new(40.0, 6.0, 40.0)),
                            n,
                            0.2..0.6,
                            seed + 1,
                        ),
                        tan,
                    )
                    .build()
            }
            SceneId::Lands => {
                let cam = Camera::look_at(
                    Vec3::new(0.0, 14.0, 70.0),
                    Vec3::new(0.0, 2.0, 0.0),
                    Vec3::Y,
                    55.0,
                    1.0,
                );
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        {
                            let g = Self::hf_grid(detail, 240);
                            heightfield(g, g, 5.0, 6.0, seed)
                        },
                        green,
                    )
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-60.0, 2.0, -60.0), Vec3::new(60.0, 10.0, 60.0)),
                            n,
                            0.3..0.9,
                            seed + 1,
                        ),
                        gray,
                    )
                    .build()
            }
            SceneId::Frst => {
                let cam = Camera::look_at(
                    Vec3::new(0.0, 6.0, 45.0),
                    Vec3::new(0.0, 5.0, 0.0),
                    Vec3::Y,
                    50.0,
                    1.0,
                );
                let mut b = SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        {
                            let g = Self::hf_grid(detail, 130);
                            heightfield(g, g, 5.0, 1.5, seed)
                        },
                        green,
                    );
                // Trees: trunk + canopy each.
                let trees = 10;
                for i in 0..trees {
                    let x = -28.0 + 6.5 * i as f32;
                    let z = if i % 2 == 0 { -8.0 } else { 8.0 };
                    b = b.push(box_at(Vec3::new(x, 3.5, z), Vec3::new(0.5, 2.5, 0.5)), tan);
                    b = b.push(
                        scatter_clutter(
                            Aabb::new(
                                Vec3::new(x - 2.5, 6.0, z - 2.5),
                                Vec3::new(x + 2.5, 11.0, z + 2.5),
                            ),
                            n / trees,
                            0.2..0.5,
                            seed + 2 + i as u64,
                        ),
                        green,
                    );
                }
                b.build()
            }
            SceneId::Car => {
                let cam = Camera::look_at(
                    Vec3::new(8.0, 3.0, 12.0),
                    Vec3::new(0.0, 1.0, 0.0),
                    Vec3::Y,
                    40.0,
                    1.0,
                );
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        crate::quad(Vec3::new(-40.0, 0.0, -40.0), Vec3::X * 80.0, Vec3::Z * 80.0),
                        gray,
                    )
                    // Extremely dense compact body.
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-3.5, 0.2, -1.8), Vec3::new(3.5, 2.6, 1.8)),
                            n,
                            0.04..0.15,
                            seed,
                        ),
                        Material::Metal {
                            albedo: Rgb::new(0.7, 0.1, 0.1),
                            fuzz: 0.1,
                        },
                    )
                    .build()
            }
            SceneId::Robot => {
                let cam = Camera::look_at(
                    Vec3::new(0.0, 6.0, 16.0),
                    Vec3::new(0.0, 5.0, 0.0),
                    Vec3::Y,
                    45.0,
                    1.0,
                );
                SceneBuilder::new(self.name(), cam)
                    .sky(Sky::daylight())
                    .push(
                        crate::quad(Vec3::new(-40.0, 0.0, -40.0), Vec3::X * 80.0, Vec3::Z * 80.0),
                        gray,
                    )
                    // Tall, very dense body.
                    .push(
                        scatter_clutter(
                            Aabb::new(Vec3::new(-2.5, 0.2, -2.5), Vec3::new(2.5, 11.0, 2.5)),
                            n,
                            0.04..0.18,
                            seed,
                        ),
                        mirror,
                    )
                    .build()
            }
            SceneId::Quni => {
                let region = Aabb::new(Vec3::splat(-8.0), Vec3::splat(8.0));
                Self::point_scene(self.name(), uniform_points(region, n, seed), 1.5, 8)
            }
            SceneId::Qclu => {
                let region = Aabb::new(Vec3::splat(-8.0), Vec3::splat(8.0));
                Self::point_scene(
                    self.name(),
                    clustered_points(region, n, 6, 1.2, seed),
                    1.0,
                    8,
                )
            }
            SceneId::Qsrf => Self::point_scene(
                self.name(),
                surface_points(Vec3::ZERO, 6.0, n, seed),
                0.8,
                8,
            ),
            SceneId::Qamr => {
                // Grid side from the cell budget, rounded up to even
                // (the refined octant needs whole coarse cells).
                let g = ((n as f32).cbrt().ceil() as usize).max(2);
                let g = g + (g % 2);
                let region = Aabb::new(Vec3::splat(-8.0), Vec3::splat(8.0));
                let cells = amr_cells(region, g);
                let tris = cell_tris(&cells);
                SceneBuilder::new(self.name(), Self::query_camera())
                    .sky(Sky::Gradient {
                        horizon: Rgb::new(0.25, 0.25, 0.3),
                        zenith: Rgb::new(0.05, 0.05, 0.1),
                    })
                    .query(QueryDomain::cells(cells, 0))
                    .push(tris, gray)
                    .build()
            }
        }
    }

    /// Shared camera for the query scenes (render kinds still work on
    /// them; queries never read it).
    fn query_camera() -> Camera {
        Camera::look_at(Vec3::new(16.0, 14.0, 16.0), Vec3::ZERO, Vec3::Y, 45.0, 1.0)
    }

    /// Assembles a point-cloud query scene: octahedron primitives over
    /// the points, with the matching [`QueryDomain`] attached.
    fn point_scene(name: &str, points: Vec<Vec3>, radius: f32, k: usize) -> Scene {
        let tris = point_cloud_tris(&points, radius);
        SceneBuilder::new(name, Self::query_camera())
            .sky(Sky::Gradient {
                horizon: Rgb::new(0.25, 0.25, 0.3),
                zenith: Rgb::new(0.05, 0.05, 0.1),
            })
            .query(QueryDomain::points(points, radius, k, 0))
            .push(
                tris,
                Material::Lambertian {
                    albedo: Rgb::splat(0.6),
                },
            )
            .build()
    }
}

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_build_and_are_nonempty() {
        for id in ALL_SCENES {
            let scene = id.build(2);
            assert!(scene.triangle_count() > 10, "{id} too small");
            assert_eq!(scene.name, id.name());
            assert_eq!(scene.materials.len(), scene.triangle_count());
        }
    }

    #[test]
    fn scene_builds_are_deterministic() {
        let a = SceneId::Crnvl.build(3);
        let b = SceneId::Crnvl.build(3);
        assert_eq!(a.image.triangles(), b.image.triangles());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn closed_scenes_match_the_paper() {
        assert!(SceneId::Spnza.build(2).is_closed());
        assert!(SceneId::Bath.build(2).is_closed());
        assert!(SceneId::Ref.build(2).is_closed());
        assert!(!SceneId::Crnvl.build(2).is_closed());
        assert!(!SceneId::Wknd.build(2).is_closed());
    }

    #[test]
    fn tree_size_ordering_follows_table_2() {
        // wknd is the smallest; robot the largest; spnza < fox (Table 2).
        let detail = 3;
        let wknd = SceneId::Wknd.build(detail).stats.total_bytes;
        let spnza = SceneId::Spnza.build(detail).stats.total_bytes;
        let fox = SceneId::Fox.build(detail).stats.total_bytes;
        let robot = SceneId::Robot.build(detail).stats.total_bytes;
        assert!(wknd < spnza, "wknd {wknd} < spnza {spnza}");
        assert!(spnza < fox, "spnza {spnza} < fox {fox}");
        assert!(fox < robot, "fox {fox} < robot {robot}");
    }

    #[test]
    fn detail_scales_triangle_count() {
        let small = SceneId::Party.build(1).triangle_count();
        let big = SceneId::Party.build(4).triangle_count();
        assert!(
            big > 2 * small,
            "detail 4 ({big}) should dwarf detail 1 ({small})"
        );
    }

    #[test]
    fn lit_scenes_have_lights() {
        for id in [
            SceneId::Spnza,
            SceneId::Bath,
            SceneId::Ref,
            SceneId::Crnvl,
            SceneId::Party,
        ] {
            assert!(!id.build(2).lights.is_empty(), "{id} should have lights");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SceneId::Fox.to_string(), "fox");
        assert_eq!(format!("{}", SceneId::Wknd), "wknd");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL_SCENES
            .iter()
            .chain(QUERY_SCENES.iter())
            .map(|s| s.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_SCENES.len() + QUERY_SCENES.len());
    }

    #[test]
    fn query_scenes_build_with_matching_domains() {
        for id in QUERY_SCENES {
            let scene = id.build(2);
            assert_eq!(scene.name, id.name());
            let q = scene.query.as_ref().expect("query scenes carry a domain");
            if q.is_cells() {
                // Every cell contributes exactly 12 box triangles.
                assert_eq!(
                    scene.triangle_count(),
                    q.prim_base as usize + q.cells.len() * q.tris_per_prim as usize
                );
                assert!(q.points.is_empty());
            } else {
                // Every point contributes exactly 8 octahedron triangles.
                assert_eq!(
                    scene.triangle_count(),
                    q.prim_base as usize + q.points.len() * q.tris_per_prim as usize
                );
                assert_eq!(q.points.len(), id.clutter_base() * 2);
                assert!(q.radius > 0.0 && q.k > 0);
                // All data points inside the sampling bounds.
                for &p in &q.points {
                    assert!(q.bounds.contains(p), "{id}: point {p:?} outside bounds");
                }
            }
        }
    }

    #[test]
    fn query_scene_builds_are_deterministic() {
        for id in QUERY_SCENES {
            let a = id.build(2);
            let b = id.build(2);
            assert_eq!(
                a.image.content_hash(),
                b.image.content_hash(),
                "{id}: same seed must give a bitwise-identical BVH image"
            );
            assert_eq!(a.query, b.query, "{id}: domains must match");
        }
    }

    #[test]
    fn point_cloud_scene_round_trips_through_a_rebuild() {
        let scene = SceneId::Quni.build(2);
        let rebuilt = scene.rebuilt_with(cooprt_bvh::build_binary_median);
        // Different builder, same geometry and domain.
        assert_eq!(scene.image.triangles(), rebuilt.image.triangles());
        assert_eq!(scene.query, rebuilt.query);
        assert!(rebuilt.image.node_count() > 0);
    }
}
