//! Scene assembly: geometry + materials + camera + sky, with a built BVH.

use crate::{Camera, Material, QueryDomain, Sky};
use cooprt_bvh::{build_binary, BvhImage, TreeStats, WideBvh};
use cooprt_math::{Rgb, Triangle, Vec3};
use rand::Rng;

/// A complete, traversal-ready scene.
///
/// Holds the serialized BVH image (the address space the simulator
/// fetches from), per-triangle materials, the camera, the sky model and
/// the light list used by the shadow shader.
#[derive(Clone, Debug)]
pub struct Scene {
    /// Scene name (LumiBench-analog label).
    pub name: String,
    /// Serialized BVH; drives the simulator's memory traffic.
    pub image: BvhImage,
    /// Material of each triangle (parallel to `image.triangles()`).
    pub materials: Vec<Material>,
    /// Camera for primary rays.
    pub camera: Camera,
    /// Environment model.
    pub sky: Sky,
    /// Indices of emissive triangles (light sources).
    pub lights: Vec<u32>,
    /// BVH statistics (Table 2 data).
    pub stats: TreeStats,
    /// Spatial-query domain, for scenes that index a point cloud or an
    /// AMR cell grid (see [`QueryDomain`]). `None` for pure rendering
    /// scenes.
    pub query: Option<QueryDomain>,
    closed: bool,
}

impl Scene {
    /// Wraps an already-built BVH image in a minimal scene for
    /// trace-driven replay.
    ///
    /// Replay re-executes traversal against `image` inside the timing
    /// model but never shades, so the camera, sky, materials and lights
    /// are placeholders that no replay code path reads. The BVH
    /// statistics that derive from the image alone are filled in; the
    /// tree-shape fields (depth, arity, SAH) need the wide tree and
    /// stay zero.
    pub fn for_replay(name: impl Into<String>, image: BvhImage) -> Scene {
        let triangle_count = image.triangles().len();
        let stats = TreeStats {
            internal_nodes: image
                .iter()
                .filter(|n| matches!(n.kind, cooprt_bvh::NodeKind::Internal { .. }))
                .count(),
            leaf_nodes: image
                .iter()
                .filter(|n| matches!(n.kind, cooprt_bvh::NodeKind::Leaf { .. }))
                .count(),
            total_bytes: image.total_bytes(),
            size_mib: image.size_mib(),
            ..TreeStats::default()
        };
        Scene {
            name: name.into(),
            image,
            materials: vec![
                Material::Lambertian {
                    albedo: Rgb::splat(0.5),
                };
                triangle_count
            ],
            camera: Camera::look_at(Vec3::new(0.0, 1.0, 5.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0),
            sky: Sky::default(),
            lights: Vec::new(),
            stats,
            query: None,
            closed: false,
        }
    }

    /// Material of triangle `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn material(&self, index: u32) -> &Material {
        &self.materials[index as usize]
    }

    /// True if the scene is geometrically closed (no ray can escape to
    /// the sky), like the paper's `spnza` atrium.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.image.triangles().len()
    }

    /// Re-builds this scene's acceleration structure with a different
    /// binary-BVH builder, keeping geometry, materials, camera and sky
    /// identical. Used by the BVH-quality ablation.
    pub fn rebuilt_with(
        &self,
        builder: fn(&[cooprt_math::Triangle]) -> cooprt_bvh::BinaryBvh,
    ) -> Scene {
        let mut b = SceneBuilder::new(self.name.clone(), self.camera)
            .sky(self.sky)
            .closed(self.closed);
        if let Some(q) = &self.query {
            b = b.query(q.clone());
        }
        for (tri, mat) in self.image.triangles().iter().zip(&self.materials) {
            b = b.push(vec![*tri], *mat);
        }
        b.build_with(builder)
    }

    /// Samples a uniformly-distributed point on a random light triangle.
    ///
    /// Returns `None` if the scene has no lights.
    pub fn sample_light_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Vec3> {
        use rand::RngExt;
        if self.lights.is_empty() {
            return None;
        }
        let idx = self.lights[rng.random_range(0..self.lights.len())];
        let t = self.image.triangle(idx);
        // Uniform barycentric sample.
        let mut u: f32 = rng.random();
        let mut v: f32 = rng.random();
        if u + v > 1.0 {
            u = 1.0 - u;
            v = 1.0 - v;
        }
        Some(t.v0 + (t.v1 - t.v0) * u + (t.v2 - t.v0) * v)
    }
}

/// Incremental builder for [`Scene`].
///
/// # Examples
///
/// ```
/// use cooprt_scenes::{Camera, Material, Scene, SceneBuilder, Sky};
/// use cooprt_math::{Rgb, Triangle, Vec3};
///
/// let camera = Camera::look_at(Vec3::new(0.0, 1.0, 5.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0);
/// let scene = SceneBuilder::new("demo", camera)
///     .sky(Sky::daylight())
///     .push(
///         vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)],
///         Material::Lambertian { albedo: Rgb::splat(0.5) },
///     )
///     .build();
/// assert_eq!(scene.triangle_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SceneBuilder {
    name: String,
    triangles: Vec<Triangle>,
    materials: Vec<Material>,
    camera: Camera,
    sky: Sky,
    query: Option<QueryDomain>,
    closed: bool,
}

impl SceneBuilder {
    /// Starts a scene with a name and camera.
    pub fn new(name: impl Into<String>, camera: Camera) -> Self {
        SceneBuilder {
            name: name.into(),
            triangles: Vec::new(),
            materials: Vec::new(),
            camera,
            sky: Sky::default(),
            query: None,
            closed: false,
        }
    }

    /// Sets the sky model.
    pub fn sky(mut self, sky: Sky) -> Self {
        self.sky = sky;
        self
    }

    /// Attaches a spatial-query domain (see [`QueryDomain`]).
    pub fn query(mut self, query: QueryDomain) -> Self {
        self.query = Some(query);
        self
    }

    /// Marks the scene as geometrically closed.
    pub fn closed(mut self, closed: bool) -> Self {
        self.closed = closed;
        self
    }

    /// Adds a batch of triangles sharing one material.
    pub fn push(mut self, triangles: Vec<Triangle>, material: Material) -> Self {
        self.materials
            .extend(std::iter::repeat_n(material, triangles.len()));
        self.triangles.extend(triangles);
        self
    }

    /// Adds an emissive quad light (two triangles).
    pub fn push_light(self, origin: Vec3, e1: Vec3, e2: Vec3, radiance: Rgb) -> Self {
        self.push(crate::quad(origin, e1, e2), Material::Emissive { radiance })
    }

    /// Builds the BVH and finalizes the scene.
    pub fn build(self) -> Scene {
        self.build_with(build_binary)
    }

    /// Finalizes the scene with a custom binary-BVH builder (e.g.
    /// [`cooprt_bvh::build_binary_median`] for the BVH-quality
    /// ablation).
    pub fn build_with(
        self,
        builder: fn(&[cooprt_math::Triangle]) -> cooprt_bvh::BinaryBvh,
    ) -> Scene {
        let binary = builder(&self.triangles);
        let wide = WideBvh::from_binary(&binary);
        let image = BvhImage::serialize(&wide, &self.triangles);
        let stats = TreeStats::gather(&wide, &image);
        let lights = self
            .materials
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_emissive())
            .map(|(i, _)| i as u32)
            .collect();
        Scene {
            name: self.name,
            image,
            materials: self.materials,
            camera: self.camera,
            sky: self.sky,
            lights,
            stats,
            query: self.query,
            closed: self.closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn camera() -> Camera {
        Camera::look_at(Vec3::new(0.0, 2.0, 8.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0)
    }

    #[test]
    fn builder_tracks_materials_per_triangle() {
        let scene = SceneBuilder::new("t", camera())
            .push(
                crate::quad(Vec3::ZERO, Vec3::X, Vec3::Z),
                Material::Lambertian {
                    albedo: Rgb::splat(0.8),
                },
            )
            .push(
                crate::octahedron(Vec3::Y * 2.0, 0.5),
                Material::Metal {
                    albedo: Rgb::WHITE,
                    fuzz: 0.1,
                },
            )
            .build();
        assert_eq!(scene.triangle_count(), 10);
        assert_eq!(scene.materials.len(), 10);
        assert!(matches!(scene.material(0), Material::Lambertian { .. }));
        assert!(matches!(scene.material(5), Material::Metal { .. }));
    }

    #[test]
    fn lights_are_collected() {
        let scene = SceneBuilder::new("lit", camera())
            .push(
                crate::quad(Vec3::ZERO, Vec3::X, Vec3::Z),
                Material::Lambertian { albedo: Rgb::WHITE },
            )
            .push_light(Vec3::Y * 5.0, Vec3::X, Vec3::Z, Rgb::splat(4.0))
            .build();
        assert_eq!(scene.lights, vec![2, 3]);
        let mut rng = StdRng::seed_from_u64(1);
        let p = scene.sample_light_point(&mut rng).unwrap();
        assert!((p.y - 5.0).abs() < 1e-5);
        assert!(p.x >= 5.0 - 1e-5 || p.x >= 0.0); // inside the light quad
    }

    #[test]
    fn no_lights_sample_none() {
        let scene = SceneBuilder::new("dark", camera())
            .push(
                crate::quad(Vec3::ZERO, Vec3::X, Vec3::Z),
                Material::Lambertian { albedo: Rgb::WHITE },
            )
            .build();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(scene.sample_light_point(&mut rng).is_none());
    }

    #[test]
    fn light_points_lie_inside_the_light_triangle() {
        let scene = SceneBuilder::new("lit", camera())
            .push_light(Vec3::ZERO, Vec3::X * 2.0, Vec3::Z * 2.0, Rgb::WHITE)
            .build();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = scene.sample_light_point(&mut rng).unwrap();
            assert!((0.0..=2.0).contains(&p.x));
            assert!((0.0..=2.0).contains(&p.z));
            assert!(p.y.abs() < 1e-5);
        }
    }

    #[test]
    fn replay_stub_wraps_the_image() {
        let built = SceneBuilder::new("orig", camera())
            .push(
                crate::box_at(Vec3::ZERO, Vec3::ONE),
                Material::Lambertian { albedo: Rgb::WHITE },
            )
            .build();
        let stub = Scene::for_replay("replay", built.image.clone());
        assert_eq!(stub.name, "replay");
        assert_eq!(stub.image.content_hash(), built.image.content_hash());
        assert_eq!(stub.triangle_count(), built.triangle_count());
        assert_eq!(stub.materials.len(), built.triangle_count());
        assert_eq!(stub.stats.leaf_nodes, built.stats.leaf_nodes);
        assert_eq!(stub.stats.internal_nodes, built.stats.internal_nodes);
        assert_eq!(stub.stats.total_bytes, built.stats.total_bytes);
        assert!(stub.lights.is_empty());
        assert!(!stub.is_closed());
    }

    #[test]
    fn stats_and_closed_flag_propagate() {
        let scene = SceneBuilder::new("c", camera())
            .closed(true)
            .push(
                crate::box_at(Vec3::ZERO, Vec3::ONE),
                Material::Lambertian { albedo: Rgb::WHITE },
            )
            .build();
        assert!(scene.is_closed());
        assert_eq!(scene.stats.leaf_nodes, 12);
        assert_eq!(scene.name, "c");
    }
}
