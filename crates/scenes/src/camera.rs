//! Pinhole camera.

use cooprt_math::{Ray, Vec3};

/// A pinhole camera generating primary rays through an image plane.
///
/// # Examples
///
/// ```
/// use cooprt_scenes::Camera;
/// use cooprt_math::Vec3;
///
/// let cam = Camera::look_at(Vec3::new(0.0, 1.0, 5.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0);
/// let center = cam.primary_ray(0.5, 0.5);
/// // The center ray points from the eye toward the target.
/// assert!(center.dir.dot((Vec3::ZERO - Vec3::new(0.0, 1.0, 5.0)).normalized()) > 0.99);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Camera {
    origin: Vec3,
    lower_left: Vec3,
    horizontal: Vec3,
    vertical: Vec3,
}

impl Camera {
    /// Creates a camera at `from` looking at `at`.
    ///
    /// `vfov_deg` is the vertical field of view in degrees; `aspect` is
    /// width / height.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `from == at` or `up` is parallel to the
    /// view direction.
    pub fn look_at(from: Vec3, at: Vec3, up: Vec3, vfov_deg: f32, aspect: f32) -> Self {
        let theta = vfov_deg.to_radians();
        let half_height = (theta / 2.0).tan();
        let half_width = aspect * half_height;
        let w = (from - at).normalized();
        let u = up.cross(w).normalized();
        let v = w.cross(u);
        Camera {
            origin: from,
            lower_left: from - u * half_width - v * half_height - w,
            horizontal: u * (2.0 * half_width),
            vertical: v * (2.0 * half_height),
        }
    }

    /// Primary ray through normalized image coordinates `(s, t)` in
    /// `[0, 1]²`, with `(0, 0)` the lower-left corner.
    pub fn primary_ray(&self, s: f32, t: f32) -> Ray {
        Ray::new(
            self.origin,
            self.lower_left + self.horizontal * s + self.vertical * t - self.origin,
        )
    }

    /// The camera (eye) position.
    pub fn origin(&self) -> Vec3 {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rays_originate_at_the_eye() {
        let cam = Camera::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y, 45.0, 2.0);
        assert_eq!(cam.origin(), Vec3::new(1.0, 2.0, 3.0));
        for (s, t) in [(0.0, 0.0), (1.0, 1.0), (0.3, 0.8)] {
            assert_eq!(cam.primary_ray(s, t).orig, cam.origin());
        }
    }

    #[test]
    fn corner_rays_diverge() {
        let cam = Camera::look_at(Vec3::ZERO, -Vec3::Z * 5.0, Vec3::Y, 90.0, 1.0);
        let bl = cam.primary_ray(0.0, 0.0);
        let tr = cam.primary_ray(1.0, 1.0);
        assert!(bl.dir.dot(tr.dir) < 0.999, "corner rays must differ");
        // Left ray points left, right ray points right.
        let l = cam.primary_ray(0.0, 0.5);
        let r = cam.primary_ray(1.0, 0.5);
        assert!(l.dir.x < 0.0);
        assert!(r.dir.x > 0.0);
    }

    #[test]
    fn wider_fov_spreads_rays_more() {
        let narrow = Camera::look_at(Vec3::ZERO, -Vec3::Z, Vec3::Y, 30.0, 1.0);
        let wide = Camera::look_at(Vec3::ZERO, -Vec3::Z, Vec3::Y, 90.0, 1.0);
        let n = narrow
            .primary_ray(0.0, 0.5)
            .dir
            .dot(narrow.primary_ray(1.0, 0.5).dir);
        let w = wide
            .primary_ray(0.0, 0.5)
            .dir
            .dot(wide.primary_ray(1.0, 0.5).dir);
        assert!(w < n, "wide fov should have more divergent corner rays");
    }

    #[test]
    fn directions_are_unit_length() {
        let cam = Camera::look_at(Vec3::new(5.0, 5.0, 5.0), Vec3::ZERO, Vec3::Y, 60.0, 1.5);
        for (s, t) in [(0.0, 0.0), (0.5, 0.5), (1.0, 0.0)] {
            let r = cam.primary_ray(s, t);
            assert!((r.dir.length() - 1.0).abs() < 1e-5);
        }
    }
}
