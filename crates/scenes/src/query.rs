//! Spatial-query domains: point clouds and AMR cell grids mapped onto
//! BVH geometry.
//!
//! Following RTNN (Zhu) and Zellmann et al. (see PAPERS.md), spatial
//! queries ride the RT unit by mapping the query *data set* to BVH
//! primitives and the query *points* to probe rays
//! ([`cooprt_math::Ray::probe`]):
//!
//! - **Neighbor search** (kNN / fixed radius): every data point `p`
//!   becomes an octahedron of circumradius `r·√3`. The axis-aligned
//!   bounding boxes of the octahedron's eight faces tile the cube
//!   `[p − R, p + R]³` exactly, so a query point within distance `r`
//!   of `p` (in any norm ≤ L∞·√3) is guaranteed to fall inside at
//!   least one face AABB — the traversal enumerates a conservative
//!   candidate superset and an exact `f32` distance filter
//!   ([`QueryDomain::within_radius`]) trims it. The `√3` factor
//!   absorbs the `f32` rounding of `p ± R` so the superset guarantee
//!   is robust, not just exact-arithmetic.
//! - **Point containment**: every AMR cell becomes a 12-triangle box,
//!   shrunk by [`CELL_GAP`] so adjacent faces never coincide. A
//!   closest-hit probe from a contained query point first hits its own
//!   cell's `+X` face (every other cell is disjoint, hence strictly
//!   farther), and `triangle / 12` recovers the cell id.
//!
//! The domain carries everything both the engine-side shader driver and
//! the brute-force oracle need to agree bit-for-bit: the raw points or
//! cells, the radius/k parameters, and where the query primitives start
//! in the scene's triangle array.

use cooprt_math::{Aabb, Triangle, Vec3};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Octahedron inflation factor: primitives use circumradius
/// `radius * INFLATE` so the face-AABB superset is robust to `f32`
/// rounding at the ball boundary.
pub const INFLATE: f32 = 1.732_050_8; // sqrt(3)

/// Gap each AMR cell box is shrunk by (per side), so faces of adjacent
/// cells never coincide and the closest-hit containment probe is
/// unambiguous.
pub const CELL_GAP: f32 = 1.0e-2;

/// Guard band query points keep from any cell face, comfortably above
/// the Möller–Trumbore `GEOM_EPSILON` hit floor.
pub const QUERY_GUARD: f32 = 1.0e-3;

/// Triangles per point primitive (an octahedron).
pub const TRIS_PER_POINT: u32 = 8;

/// Triangles per cell primitive (a box).
pub const TRIS_PER_CELL: u32 = 12;

/// The query side of a scene: the data set the scene's BVH indexes and
/// the parameters query shaders and oracles share.
///
/// Exactly one of `points` / `cells` is non-empty: point domains serve
/// kNN and fixed-radius search, cell domains serve point-in-cell
/// containment.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryDomain {
    /// The data points (centers of the octahedron primitives). Empty
    /// for cell domains.
    pub points: Vec<Vec3>,
    /// Neighbor-search radius (kNN is radius-bounded: the `k` nearest
    /// within `radius`). Unused by containment.
    pub radius: f32,
    /// `k` for kNN queries.
    pub k: usize,
    /// The AMR cells, already shrunk by [`CELL_GAP`]. Empty for point
    /// domains.
    pub cells: Vec<Aabb>,
    /// Index of the first query-primitive triangle in the scene's
    /// triangle array (query scenes put primitives first, so this is
    /// `0` today; kept explicit so mixed scenes stay possible).
    pub prim_base: u32,
    /// Triangles per primitive: [`TRIS_PER_POINT`] or [`TRIS_PER_CELL`].
    pub tris_per_prim: u32,
    /// Region query points are sampled from.
    pub bounds: Aabb,
}

impl QueryDomain {
    /// Builds a point domain over `points` with the given search
    /// parameters; `bounds` defaults to the points' bounding box padded
    /// by `radius` so queries probe the interesting shell around the
    /// data.
    pub fn points(points: Vec<Vec3>, radius: f32, k: usize, prim_base: u32) -> QueryDomain {
        let bounds = points.iter().fold(Aabb::empty(), |a, &p| a.union_point(p));
        let bounds = Aabb::new(
            bounds.min - Vec3::splat(radius),
            bounds.max + Vec3::splat(radius),
        );
        QueryDomain {
            points,
            radius,
            k,
            cells: Vec::new(),
            prim_base,
            tris_per_prim: TRIS_PER_POINT,
            bounds,
        }
    }

    /// Builds a cell domain over already-shrunk `cells`.
    pub fn cells(cells: Vec<Aabb>, prim_base: u32) -> QueryDomain {
        let bounds = cells.iter().fold(Aabb::empty(), |a, c| a.union(c));
        QueryDomain {
            points: Vec::new(),
            radius: 0.0,
            k: 0,
            cells,
            prim_base,
            tris_per_prim: TRIS_PER_CELL,
            bounds,
        }
    }

    /// True for containment (cell) domains.
    pub fn is_cells(&self) -> bool {
        !self.cells.is_empty()
    }

    /// Maps a scene triangle index to its query-primitive index, or
    /// `None` for non-query geometry.
    pub fn primitive_of(&self, triangle: u32) -> Option<usize> {
        triangle
            .checked_sub(self.prim_base)
            .map(|t| (t / self.tris_per_prim) as usize)
    }

    /// The exact `f32` membership filter both the engine-side driver
    /// and the brute-force oracle apply: `|q − p|² ≤ r²`, compared in
    /// `f32` so the two sides agree bit-for-bit.
    pub fn within_radius(&self, q: Vec3, point: usize) -> bool {
        (self.points[point] - q).length_squared() <= self.radius * self.radius
    }

    /// Samples one query point. Point domains sample uniformly in
    /// `bounds`; cell domains pick a random cell and sample its
    /// interior at least [`QUERY_GUARD`] from every face, so the
    /// containment probe's first hit is never within the intersection
    /// epsilon of a face.
    pub fn sample_query_point(&self, rng: &mut StdRng) -> Vec3 {
        if self.is_cells() {
            let cell = &self.cells[rng.random_range(0..self.cells.len())];
            let lo = cell.min + Vec3::splat(QUERY_GUARD);
            let hi = cell.max - Vec3::splat(QUERY_GUARD);
            sample_in(rng, &Aabb { min: lo, max: hi })
        } else {
            sample_in(rng, &self.bounds)
        }
    }

    /// The cell containing `q`, if any. Cells are disjoint, so the
    /// first match is the only match.
    pub fn cell_containing(&self, q: Vec3) -> Option<usize> {
        self.cells.iter().position(|c| c.contains(q))
    }
}

fn sample_in(rng: &mut StdRng, region: &Aabb) -> Vec3 {
    let e = region.extent();
    region.min
        + Vec3::new(
            rng.random_range(0.0..e.x.max(f32::EPSILON)),
            rng.random_range(0.0..e.y.max(f32::EPSILON)),
            rng.random_range(0.0..e.z.max(f32::EPSILON)),
        )
}

/// One standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// `count` points uniformly distributed in `region`. Deterministic for
/// a seed.
pub fn uniform_points(region: Aabb, count: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| sample_in(&mut rng, &region)).collect()
}

/// `count` points drawn from a Gaussian mixture: `clusters` centers
/// uniform in `region`, isotropic deviation `sigma`, samples clamped
/// into `region`. Deterministic for a seed.
pub fn clustered_points(
    region: Aabb,
    count: usize,
    clusters: usize,
    sigma: f32,
    seed: u64,
) -> Vec<Vec3> {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec3> = (0..clusters)
        .map(|_| sample_in(&mut rng, &region))
        .collect();
    (0..count)
        .map(|_| {
            let c = centers[rng.random_range(0..centers.len())];
            let p = c + Vec3::new(
                gaussian(&mut rng) * sigma,
                gaussian(&mut rng) * sigma,
                gaussian(&mut rng) * sigma,
            );
            p.max(region.min).min(region.max)
        })
        .collect()
}

/// `count` points on the sphere of the given center/radius (the
/// surface-sampled profile: lidar-scan-like shells). Deterministic for
/// a seed.
pub fn surface_points(center: Vec3, radius: f32, count: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            // Isotropic direction from three gaussians; resample the
            // (measure-zero) near-degenerate draws.
            loop {
                let d = Vec3::new(gaussian(&mut rng), gaussian(&mut rng), gaussian(&mut rng));
                let len = d.length();
                if len > 1.0e-3 {
                    return center + d * (radius / len);
                }
            }
        })
        .collect()
}

/// The BVH geometry for a point domain: one octahedron of circumradius
/// `radius * INFLATE` per point (see the module docs for why the
/// inflation makes the face-AABB candidate superset robust).
pub fn point_cloud_tris(points: &[Vec3], radius: f32) -> Vec<Triangle> {
    let mut tris = Vec::with_capacity(points.len() * TRIS_PER_POINT as usize);
    for &p in points {
        tris.extend(crate::octahedron(p, radius * INFLATE));
    }
    tris
}

/// A two-level AMR cell grid over `region`: a coarse `g³` grid with the
/// `(-,-,-)` octant refined 2× (each coarse cell there split into 8).
/// Every cell is shrunk by [`CELL_GAP`] per side so no two faces
/// coincide. Returns the shrunk cells.
///
/// # Panics
///
/// Panics if `g < 2` or `g` is odd (the refined octant needs a whole
/// number of coarse cells).
pub fn amr_cells(region: Aabb, g: usize) -> Vec<Aabb> {
    assert!(
        g >= 2 && g.is_multiple_of(2),
        "grid must be even and >= 2, got {g}"
    );
    let e = region.extent();
    let step = e / g as f32;
    let corner = |ix: usize, iy: usize, iz: usize| {
        region.min + Vec3::new(ix as f32 * step.x, iy as f32 * step.y, iz as f32 * step.z)
    };
    let shrink = |b: Aabb| Aabb {
        min: b.min + Vec3::splat(CELL_GAP),
        max: b.max - Vec3::splat(CELL_GAP),
    };
    let mut cells = Vec::new();
    let h = g / 2;
    for iz in 0..g {
        for iy in 0..g {
            for ix in 0..g {
                let lo = corner(ix, iy, iz);
                let hi = corner(ix + 1, iy + 1, iz + 1);
                if ix < h && iy < h && iz < h {
                    // Refined octant: split this coarse cell into 8.
                    let mid = (lo + hi) * 0.5;
                    for oz in 0..2 {
                        for oy in 0..2 {
                            for ox in 0..2 {
                                let fmin = Vec3::new(
                                    if ox == 0 { lo.x } else { mid.x },
                                    if oy == 0 { lo.y } else { mid.y },
                                    if oz == 0 { lo.z } else { mid.z },
                                );
                                let fmax = Vec3::new(
                                    if ox == 0 { mid.x } else { hi.x },
                                    if oy == 0 { mid.y } else { hi.y },
                                    if oz == 0 { mid.z } else { hi.z },
                                );
                                cells.push(shrink(Aabb {
                                    min: fmin,
                                    max: fmax,
                                }));
                            }
                        }
                    }
                } else {
                    cells.push(shrink(Aabb { min: lo, max: hi }));
                }
            }
        }
    }
    cells
}

/// The BVH geometry for a cell domain: one 12-triangle box per (already
/// shrunk) cell.
pub fn cell_tris(cells: &[Aabb]) -> Vec<Triangle> {
    let mut tris = Vec::with_capacity(cells.len() * TRIS_PER_CELL as usize);
    for c in cells {
        tris.extend(crate::box_at(c.centroid(), c.extent() * 0.5));
    }
    tris
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn region() -> Aabb {
        Aabb::new(Vec3::splat(-4.0), Vec3::splat(4.0))
    }

    #[test]
    fn point_generators_are_deterministic_and_in_bounds() {
        for (a, b) in [
            (
                uniform_points(region(), 100, 7),
                uniform_points(region(), 100, 7),
            ),
            (
                clustered_points(region(), 100, 4, 0.5, 7),
                clustered_points(region(), 100, 4, 0.5, 7),
            ),
            (
                surface_points(Vec3::ZERO, 3.0, 100, 7),
                surface_points(Vec3::ZERO, 3.0, 100, 7),
            ),
        ] {
            assert_eq!(a, b);
            assert_eq!(a.len(), 100);
        }
        assert_ne!(
            uniform_points(region(), 100, 7),
            uniform_points(region(), 100, 8)
        );
        for p in uniform_points(region(), 200, 3) {
            assert!(region().contains(p));
        }
        for p in clustered_points(region(), 200, 4, 1.0, 3) {
            assert!(region().contains(p), "clamped into the region");
        }
        for p in surface_points(Vec3::ONE, 2.5, 200, 3) {
            assert!(((p - Vec3::ONE).length() - 2.5).abs() < 1e-3);
        }
    }

    #[test]
    fn octahedron_face_aabbs_tile_the_inflated_cube() {
        // The superset guarantee kNN/radius traversal rests on: any q
        // with |q - p|∞ <= R falls in at least one face AABB.
        let p = Vec3::new(1.0, -2.0, 0.5);
        let r = 0.7;
        let tris = point_cloud_tris(&[p], r);
        assert_eq!(tris.len(), TRIS_PER_POINT as usize);
        let mut rng = StdRng::seed_from_u64(11);
        let cube = Aabb::new(p - Vec3::splat(r), p + Vec3::splat(r));
        for _ in 0..500 {
            let q = sample_in(&mut rng, &cube);
            assert!(
                tris.iter().any(|t| t.bounds().contains(q)),
                "query point {q:?} escaped every face AABB"
            );
        }
    }

    #[test]
    fn amr_cells_are_disjoint_and_cover_two_levels() {
        let cells = amr_cells(region(), 4);
        // 4^3 coarse minus the 2^3 refined octant, plus 8 fine each.
        assert_eq!(cells.len(), 64 - 8 + 64);
        for (i, a) in cells.iter().enumerate() {
            assert!(!a.is_empty());
            for b in cells.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "cells {a:?} and {b:?} overlap");
            }
        }
        assert_eq!(cell_tris(&cells).len(), cells.len() * 12);
    }

    #[test]
    fn cell_domain_sampling_stays_inside_one_cell() {
        let domain = QueryDomain::cells(amr_cells(region(), 2), 0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let q = domain.sample_query_point(&mut rng);
            let cell = domain.cell_containing(q).expect("sampled inside a cell");
            let c = &domain.cells[cell];
            // At least the guard band from every face.
            assert!(q.x - c.min.x >= QUERY_GUARD * 0.99 && c.max.x - q.x >= QUERY_GUARD * 0.99);
            assert!(q.y - c.min.y >= QUERY_GUARD * 0.99 && c.max.y - q.y >= QUERY_GUARD * 0.99);
            assert!(q.z - c.min.z >= QUERY_GUARD * 0.99 && c.max.z - q.z >= QUERY_GUARD * 0.99);
        }
    }

    #[test]
    fn point_domain_filters_by_exact_distance() {
        let pts = vec![Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)];
        let d = QueryDomain::points(pts, 1.0, 4, 0);
        assert!(d.within_radius(Vec3::new(0.9, 0.0, 0.0), 0));
        assert!(!d.within_radius(Vec3::new(0.9, 0.0, 0.0), 1));
        assert_eq!(d.primitive_of(0), Some(0));
        assert_eq!(d.primitive_of(7), Some(0));
        assert_eq!(d.primitive_of(8), Some(1));
        assert!(!d.is_cells());
        // Bounds pad the data hull by the radius.
        assert!(d.bounds.contains(Vec3::new(-1.0, -1.0, -1.0)));
        assert!(d.bounds.contains(Vec3::new(3.0, 1.0, 1.0)));
    }
}
