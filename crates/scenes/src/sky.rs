//! Sky (environment) models.

use cooprt_math::{Rgb, Vec3};

/// The environment a ray samples when it escapes the scene.
///
/// Open scenes use [`Sky::Gradient`]; closed scenes (e.g. `spnza`, a
/// closed atrium) use [`Sky::Black`] — escaping rays contribute nothing,
/// and in a *truly* closed scene never occur at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sky {
    /// Vertical gradient between a horizon and a zenith color — the
    /// classic path-tracer sky.
    Gradient {
        /// Color at the horizon (`dir.y == 0`).
        horizon: Rgb,
        /// Color at the zenith (`dir.y == 1`).
        zenith: Rgb,
    },
    /// Uniform radiance in every direction.
    Solid(Rgb),
    /// No environment light.
    Black,
}

impl Sky {
    /// A pleasant default daylight gradient.
    pub fn daylight() -> Self {
        Sky::Gradient {
            horizon: Rgb::WHITE,
            zenith: Rgb::new(0.5, 0.7, 1.0),
        }
    }

    /// Radiance arriving from direction `dir` (unit length).
    pub fn radiance(&self, dir: Vec3) -> Rgb {
        match *self {
            Sky::Gradient { horizon, zenith } => {
                let t = 0.5 * (dir.y + 1.0);
                Rgb {
                    r: horizon.r * (1.0 - t) + zenith.r * t,
                    g: horizon.g * (1.0 - t) + zenith.g * t,
                    b: horizon.b * (1.0 - t) + zenith.b * t,
                }
            }
            Sky::Solid(c) => c,
            Sky::Black => Rgb::BLACK,
        }
    }
}

impl Default for Sky {
    fn default() -> Self {
        Sky::daylight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_interpolates_with_elevation() {
        let sky = Sky::Gradient {
            horizon: Rgb::BLACK,
            zenith: Rgb::WHITE,
        };
        let up = sky.radiance(Vec3::Y);
        let down = sky.radiance(-Vec3::Y);
        let side = sky.radiance(Vec3::X);
        assert_eq!(up, Rgb::WHITE);
        assert_eq!(down, Rgb::BLACK);
        assert!((side.r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn black_sky_is_dark_everywhere() {
        for dir in [Vec3::X, Vec3::Y, -Vec3::Z] {
            assert_eq!(Sky::Black.radiance(dir), Rgb::BLACK);
        }
    }

    #[test]
    fn solid_sky_is_uniform() {
        let sky = Sky::Solid(Rgb::splat(0.25));
        assert_eq!(sky.radiance(Vec3::Y), sky.radiance(-Vec3::X));
    }

    #[test]
    fn default_is_daylight() {
        assert_eq!(Sky::default(), Sky::daylight());
    }
}
