//! Surface materials and scattering, matching the reference path tracer
//! (RayTracingInVulkan / "Ray Tracing in One Weekend" style) that the
//! paper's workloads use.

use cooprt_math::{unit_sphere, Rgb, Vec3};
use rand::Rng;

/// A surface material.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Material {
    /// Diffuse surface: scatters around the normal with unit-sphere
    /// perturbation.
    Lambertian {
        /// Surface reflectance per channel.
        albedo: Rgb,
    },
    /// Specular surface: mirror reflection with optional fuzz.
    Metal {
        /// Surface reflectance per channel.
        albedo: Rgb,
        /// Roughness in `[0, 1]`; 0 is a perfect mirror.
        fuzz: f32,
    },
    /// Area light: emits and terminates the path.
    Emissive {
        /// Emitted radiance.
        radiance: Rgb,
    },
    /// Clear dielectric (glass): refracts or reflects per Snell's law
    /// with Schlick's approximation for the Fresnel term.
    Dielectric {
        /// Index of refraction (1.5 for common glass).
        refraction_index: f32,
    },
}

/// Outcome of a scattering event at a surface hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scatter {
    /// The path continues in `dir`, attenuated per channel.
    Bounce {
        /// New (unnormalized) ray direction.
        dir: Vec3,
        /// Per-channel throughput multiplier.
        attenuation: Rgb,
    },
    /// The path terminates on a light, collecting `Rgb` radiance.
    Emit(Rgb),
    /// The path terminates with no contribution (e.g. grazing metal).
    Absorb,
}

impl Material {
    /// Scatters an incoming ray at a hit.
    ///
    /// `dir` is the incoming (unit) ray direction, `normal` the geometric
    /// normal at the hit (any orientation — it is flipped to face the
    /// incoming ray).
    pub fn scatter<R: Rng + ?Sized>(&self, dir: Vec3, normal: Vec3, rng: &mut R) -> Scatter {
        // Face the normal against the incoming direction.
        let n = if dir.dot(normal) < 0.0 {
            normal
        } else {
            -normal
        };
        match *self {
            Material::Lambertian { albedo } => {
                let mut scatter_dir = n + unit_sphere(rng).normalized();
                if scatter_dir.near_zero() {
                    scatter_dir = n;
                }
                Scatter::Bounce {
                    dir: scatter_dir,
                    attenuation: albedo,
                }
            }
            Material::Metal { albedo, fuzz } => {
                let reflected = dir.reflect(n);
                let fuzzed = reflected + unit_sphere(rng) * fuzz;
                if fuzzed.dot(n) > 0.0 {
                    Scatter::Bounce {
                        dir: fuzzed,
                        attenuation: albedo,
                    }
                } else {
                    Scatter::Absorb
                }
            }
            Material::Emissive { radiance } => Scatter::Emit(radiance),
            Material::Dielectric { refraction_index } => {
                use rand::RngExt;
                let front_face = dir.dot(normal) < 0.0;
                let ri = if front_face {
                    1.0 / refraction_index
                } else {
                    refraction_index
                };
                let cos_theta = (-dir.dot(n)).min(1.0);
                let sin_theta = (1.0 - cos_theta * cos_theta).max(0.0).sqrt();
                let cannot_refract = ri * sin_theta > 1.0;
                let out = if cannot_refract || schlick(cos_theta, ri) > rng.random::<f32>() {
                    dir.reflect(n)
                } else {
                    refract(dir, n, ri)
                };
                Scatter::Bounce {
                    dir: out,
                    attenuation: Rgb::WHITE,
                }
            }
        }
    }

    /// True for light sources.
    pub fn is_emissive(&self) -> bool {
        matches!(self, Material::Emissive { .. })
    }
}

/// Snell-law refraction of unit direction `d` about unit normal `n`
/// (facing against `d`) with relative index `ri`.
fn refract(d: Vec3, n: Vec3, ri: f32) -> Vec3 {
    let cos_theta = (-d.dot(n)).min(1.0);
    let r_out_perp = (d + n * cos_theta) * ri;
    let r_out_parallel = n * -(1.0 - r_out_perp.length_squared()).abs().sqrt();
    r_out_perp + r_out_parallel
}

/// Schlick's reflectance approximation.
fn schlick(cos_theta: f32, ri: f32) -> f32 {
    let r0 = ((1.0 - ri) / (1.0 + ri)).powi(2);
    r0 + (1.0 - r0) * (1.0 - cos_theta).powi(5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lambertian_bounces_into_upper_hemisphere() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Material::Lambertian {
            albedo: Rgb::splat(0.5),
        };
        for _ in 0..100 {
            match m.scatter(-Vec3::Y, Vec3::Y, &mut rng) {
                Scatter::Bounce { dir, attenuation } => {
                    assert!(dir.dot(Vec3::Y) > 0.0, "scatter below surface: {dir:?}");
                    assert_eq!(attenuation, Rgb::splat(0.5));
                }
                other => panic!("lambertian must bounce, got {other:?}"),
            }
        }
    }

    #[test]
    fn lambertian_flips_backfacing_normal() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Material::Lambertian { albedo: Rgb::WHITE };
        // Incoming along +Y, normal also +Y (backface): flipped to -Y.
        match m.scatter(Vec3::Y, Vec3::Y, &mut rng) {
            Scatter::Bounce { dir, .. } => assert!(dir.dot(Vec3::Y) < 0.0),
            other => panic!("expected bounce, got {other:?}"),
        }
    }

    #[test]
    fn perfect_mirror_reflects_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Material::Metal {
            albedo: Rgb::WHITE,
            fuzz: 0.0,
        };
        let incoming = Vec3::new(1.0, -1.0, 0.0).normalized();
        match m.scatter(incoming, Vec3::Y, &mut rng) {
            Scatter::Bounce { dir, .. } => {
                let expected = incoming.reflect(Vec3::Y);
                assert!((dir - expected).length() < 1e-6);
            }
            other => panic!("expected bounce, got {other:?}"),
        }
    }

    #[test]
    fn fuzzy_metal_can_absorb_grazing_rays() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Material::Metal {
            albedo: Rgb::WHITE,
            fuzz: 1.0,
        };
        // Nearly parallel incoming: with heavy fuzz, some samples dip
        // below the surface and get absorbed.
        let grazing = Vec3::new(1.0, -1e-3, 0.0).normalized();
        let mut absorbed = 0;
        for _ in 0..200 {
            if matches!(m.scatter(grazing, Vec3::Y, &mut rng), Scatter::Absorb) {
                absorbed += 1;
            }
        }
        assert!(
            absorbed > 0,
            "heavy fuzz at grazing incidence should absorb sometimes"
        );
    }

    #[test]
    fn dielectric_always_bounces_with_white_attenuation() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = Material::Dielectric {
            refraction_index: 1.5,
        };
        for _ in 0..100 {
            match m.scatter(Vec3::new(0.3, -1.0, 0.1).normalized(), Vec3::Y, &mut rng) {
                Scatter::Bounce { attenuation, dir } => {
                    assert_eq!(attenuation, Rgb::WHITE);
                    assert!(
                        (dir.length() - 1.0).abs() < 1e-4,
                        "refraction keeps unit length"
                    );
                }
                other => panic!("glass never absorbs or emits, got {other:?}"),
            }
        }
    }

    #[test]
    fn dielectric_refracts_through_at_normal_incidence_mostly() {
        // Head-on, Schlick reflectance is ~4%: most samples transmit
        // straight through.
        let mut rng = StdRng::seed_from_u64(7);
        let m = Material::Dielectric {
            refraction_index: 1.5,
        };
        let mut through = 0;
        for _ in 0..200 {
            if let Scatter::Bounce { dir, .. } = m.scatter(-Vec3::Y, Vec3::Y, &mut rng) {
                if dir.y < 0.0 {
                    through += 1;
                }
            }
        }
        assert!(
            through > 150,
            "expected mostly transmission, got {through}/200"
        );
    }

    #[test]
    fn dielectric_total_internal_reflection() {
        // From inside glass (ri = 1.5) at a grazing angle, sin > 1/1.5
        // forces total internal reflection: the ray must stay inside.
        let mut rng = StdRng::seed_from_u64(8);
        let m = Material::Dielectric {
            refraction_index: 1.5,
        };
        // Incoming *from inside* the glass (below the surface, normal
        // +Y): the direction's positive Y component makes it a backface
        // hit, so the faced normal is -Y. At this grazing angle
        // (sin ≈ 0.95 > 1/1.5) refraction is impossible.
        let dir = Vec3::new(0.95, 0.31, 0.0).normalized();
        for _ in 0..50 {
            match m.scatter(dir, Vec3::Y, &mut rng) {
                Scatter::Bounce { dir: out, .. } => {
                    assert!(
                        out.y < 0.0,
                        "TIR must reflect back down into the glass: {out:?}"
                    );
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn emissive_terminates_with_radiance() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Material::Emissive {
            radiance: Rgb::new(4.0, 3.0, 2.0),
        };
        assert_eq!(
            m.scatter(-Vec3::Z, Vec3::Z, &mut rng),
            Scatter::Emit(Rgb::new(4.0, 3.0, 2.0))
        );
        assert!(m.is_emissive());
        assert!(!Material::Lambertian { albedo: Rgb::BLACK }.is_emissive());
    }
}
