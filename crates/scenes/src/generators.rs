//! Procedural mesh generators used to assemble the benchmark scenes.

use cooprt_math::{Aabb, Triangle, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Two triangles forming the parallelogram `origin + s*e1 + t*e2`,
/// `s, t ∈ [0, 1]`.
pub fn quad(origin: Vec3, e1: Vec3, e2: Vec3) -> Vec<Triangle> {
    vec![
        Triangle::new(origin, origin + e1, origin + e2),
        Triangle::new(origin + e1, origin + e1 + e2, origin + e2),
    ]
}

/// Twelve triangles forming an axis-aligned box.
pub fn box_at(center: Vec3, half: Vec3) -> Vec<Triangle> {
    let min = center - half;
    let ex = Vec3::new(2.0 * half.x, 0.0, 0.0);
    let ey = Vec3::new(0.0, 2.0 * half.y, 0.0);
    let ez = Vec3::new(0.0, 0.0, 2.0 * half.z);
    let mut tris = Vec::with_capacity(12);
    tris.extend(quad(min, ex, ey)); // front  (z = min)
    tris.extend(quad(min + ez, ex, ey)); // back
    tris.extend(quad(min, ey, ez)); // left
    tris.extend(quad(min + ex, ey, ez)); // right
    tris.extend(quad(min, ex, ez)); // bottom
    tris.extend(quad(min + ey, ex, ez)); // top
    tris
}

/// Eight triangles forming an octahedron (diamond) of radius `r`.
pub fn octahedron(center: Vec3, r: f32) -> Vec<Triangle> {
    let xp = center + Vec3::X * r;
    let xn = center - Vec3::X * r;
    let yp = center + Vec3::Y * r;
    let yn = center - Vec3::Y * r;
    let zp = center + Vec3::Z * r;
    let zn = center - Vec3::Z * r;
    vec![
        Triangle::new(yp, xp, zp),
        Triangle::new(yp, zp, xn),
        Triangle::new(yp, xn, zn),
        Triangle::new(yp, zn, xp),
        Triangle::new(yn, zp, xp),
        Triangle::new(yn, xn, zp),
        Triangle::new(yn, zn, xn),
        Triangle::new(yn, xp, zn),
    ]
}

/// Four triangles forming a tetrahedron of circumradius `r`.
pub fn tetrahedron(center: Vec3, r: f32) -> Vec<Triangle> {
    let s = r / 3.0f32.sqrt();
    let a = center + Vec3::new(s, s, s);
    let b = center + Vec3::new(s, -s, -s);
    let c = center + Vec3::new(-s, s, -s);
    let d = center + Vec3::new(-s, -s, s);
    vec![
        Triangle::new(a, b, c),
        Triangle::new(a, c, d),
        Triangle::new(a, d, b),
        Triangle::new(b, d, c),
    ]
}

/// A tessellated sphere: an icosahedron subdivided `subdivisions` times
/// and projected onto the sphere. Produces `20 * 4^subdivisions`
/// triangles.
///
/// # Panics
///
/// Panics if `subdivisions > 5` (the next step would be 81,920
/// triangles for a single sphere — almost certainly a bug).
pub fn icosphere(center: Vec3, radius: f32, subdivisions: u32) -> Vec<Triangle> {
    assert!(
        subdivisions <= 5,
        "more than 5 subdivisions is excessive ({subdivisions})"
    );
    // Icosahedron vertices from the three orthogonal golden rectangles.
    let phi = (1.0 + 5.0f32.sqrt()) / 2.0;
    let verts: [Vec3; 12] = [
        Vec3::new(-1.0, phi, 0.0),
        Vec3::new(1.0, phi, 0.0),
        Vec3::new(-1.0, -phi, 0.0),
        Vec3::new(1.0, -phi, 0.0),
        Vec3::new(0.0, -1.0, phi),
        Vec3::new(0.0, 1.0, phi),
        Vec3::new(0.0, -1.0, -phi),
        Vec3::new(0.0, 1.0, -phi),
        Vec3::new(phi, 0.0, -1.0),
        Vec3::new(phi, 0.0, 1.0),
        Vec3::new(-phi, 0.0, -1.0),
        Vec3::new(-phi, 0.0, 1.0),
    ];
    const FACES: [[usize; 3]; 20] = [
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 3],
    ];
    let project = |v: Vec3| center + v.normalized() * radius;
    let mut tris: Vec<Triangle> = FACES
        .iter()
        .map(|f| Triangle::new(verts[f[0]], verts[f[1]], verts[f[2]]))
        .collect();
    for _ in 0..subdivisions {
        let mut next = Vec::with_capacity(tris.len() * 4);
        for t in &tris {
            let ab = (t.v0 + t.v1) * 0.5;
            let bc = (t.v1 + t.v2) * 0.5;
            let ca = (t.v2 + t.v0) * 0.5;
            next.push(Triangle::new(t.v0, ab, ca));
            next.push(Triangle::new(t.v1, bc, ab));
            next.push(Triangle::new(t.v2, ca, bc));
            next.push(Triangle::new(ab, bc, ca));
        }
        tris = next;
    }
    tris.iter()
        .map(|t| Triangle::new(project(t.v0), project(t.v1), project(t.v2)))
        .collect()
}

/// A randomized height-field terrain: a grid of `nx × nz` vertices spaced
/// `cell` apart around the origin, with heights in `[0, amplitude]`.
/// Produces `2 * (nx-1) * (nz-1)` triangles.
///
/// # Panics
///
/// Panics if `nx < 2` or `nz < 2`.
pub fn heightfield(nx: usize, nz: usize, cell: f32, amplitude: f32, seed: u64) -> Vec<Triangle> {
    assert!(nx >= 2 && nz >= 2, "heightfield needs at least a 2x2 grid");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heights = vec![0.0f32; nx * nz];
    for h in heights.iter_mut() {
        *h = rng.random_range(0.0..amplitude.max(f32::EPSILON));
    }
    let x0 = -(nx as f32 - 1.0) * cell / 2.0;
    let z0 = -(nz as f32 - 1.0) * cell / 2.0;
    let vert = |ix: usize, iz: usize| -> Vec3 {
        Vec3::new(
            x0 + ix as f32 * cell,
            heights[iz * nx + ix],
            z0 + iz as f32 * cell,
        )
    };
    let mut tris = Vec::with_capacity(2 * (nx - 1) * (nz - 1));
    for iz in 0..nz - 1 {
        for ix in 0..nx - 1 {
            let v00 = vert(ix, iz);
            let v10 = vert(ix + 1, iz);
            let v01 = vert(ix, iz + 1);
            let v11 = vert(ix + 1, iz + 1);
            tris.push(Triangle::new(v00, v10, v01));
            tris.push(Triangle::new(v10, v11, v01));
        }
    }
    tris
}

/// An inward-facing room shell: floor, four walls and optionally a
/// ceiling. With the ceiling, the room is closed — no ray can escape.
pub fn room(bounds: Aabb, with_ceiling: bool) -> Vec<Triangle> {
    let min = bounds.min;
    let e = bounds.extent();
    let ex = Vec3::new(e.x, 0.0, 0.0);
    let ey = Vec3::new(0.0, e.y, 0.0);
    let ez = Vec3::new(0.0, 0.0, e.z);
    let mut tris = Vec::new();
    tris.extend(quad(min, ex, ez)); // floor
    tris.extend(quad(min, ex, ey)); // -z wall
    tris.extend(quad(min + ez, ex, ey)); // +z wall
    tris.extend(quad(min, ez, ey)); // -x wall
    tris.extend(quad(min + ex, ez, ey)); // +x wall
    if with_ceiling {
        tris.extend(quad(min + ey, ex, ez));
    }
    tris
}

/// Scatters `count` small shapes (alternating octahedra and tetrahedra)
/// inside `region`, sizes drawn from `radius`. Deterministic for a seed.
pub fn scatter_clutter(
    region: Aabb,
    count: usize,
    radius: std::ops::Range<f32>,
    seed: u64,
) -> Vec<Triangle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tris = Vec::new();
    for i in 0..count {
        let c = random_point_in(&mut rng, &region);
        let r = rng.random_range(radius.clone());
        if i % 2 == 0 {
            tris.extend(octahedron(c, r));
        } else {
            tris.extend(tetrahedron(c, r));
        }
    }
    tris
}

fn random_point_in<R: Rng + ?Sized>(rng: &mut R, region: &Aabb) -> Vec3 {
    let e = region.extent();
    region.min
        + Vec3::new(
            rng.random_range(0.0..e.x.max(f32::EPSILON)),
            rng.random_range(0.0..e.y.max(f32::EPSILON)),
            rng.random_range(0.0..e.z.max(f32::EPSILON)),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_is_two_triangles_covering_the_parallelogram() {
        let q = quad(Vec3::ZERO, Vec3::X * 2.0, Vec3::Z * 3.0);
        assert_eq!(q.len(), 2);
        let area: f32 = q.iter().map(|t| t.double_area() / 2.0).sum();
        assert!((area - 6.0).abs() < 1e-5);
    }

    #[test]
    fn box_has_twelve_triangles_and_correct_bounds() {
        let b = box_at(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(b.len(), 12);
        let bounds = b.iter().fold(Aabb::empty(), |a, t| a.union(&t.bounds()));
        assert!((bounds.min.x - -1.0).abs() < 1e-5);
        assert!((bounds.max.y - 1.0).abs() < 1e-5);
    }

    #[test]
    fn octahedron_and_tetrahedron_counts() {
        assert_eq!(octahedron(Vec3::ZERO, 1.0).len(), 8);
        assert_eq!(tetrahedron(Vec3::ZERO, 1.0).len(), 4);
    }

    #[test]
    fn octahedron_vertices_at_radius() {
        let tris = octahedron(Vec3::splat(5.0), 2.0);
        for t in &tris {
            for v in [t.v0, t.v1, t.v2] {
                assert!(((v - Vec3::splat(5.0)).length() - 2.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn icosphere_counts_and_radius() {
        for (sub, expected) in [(0u32, 20usize), (1, 80), (2, 320)] {
            let tris = icosphere(Vec3::splat(3.0), 2.0, sub);
            assert_eq!(tris.len(), expected, "subdivisions = {sub}");
            for t in &tris {
                for v in [t.v0, t.v1, t.v2] {
                    let r = (v - Vec3::splat(3.0)).length();
                    assert!((r - 2.0).abs() < 1e-4, "vertex off the sphere: r = {r}");
                }
            }
        }
    }

    #[test]
    fn icosphere_approximates_sphere_area() {
        // Total mesh area approaches 4*pi*r^2 with subdivision.
        let area = |sub: u32| -> f32 {
            icosphere(Vec3::ZERO, 1.0, sub)
                .iter()
                .map(|t| t.double_area() / 2.0)
                .sum()
        };
        let exact = 4.0 * std::f32::consts::PI;
        let coarse = area(0);
        let fine = area(3);
        assert!((exact - fine).abs() < (exact - coarse).abs());
        assert!((fine - exact).abs() / exact < 0.02, "fine mesh within 2%");
    }

    #[test]
    #[should_panic(expected = "excessive")]
    fn icosphere_rejects_absurd_subdivision() {
        let _ = icosphere(Vec3::ZERO, 1.0, 9);
    }

    #[test]
    fn heightfield_triangle_count_and_extent() {
        let tris = heightfield(5, 4, 1.0, 0.5, 42);
        assert_eq!(tris.len(), 2 * 4 * 3);
        let bounds = tris.iter().fold(Aabb::empty(), |a, t| a.union(&t.bounds()));
        assert!(bounds.extent().x > 3.9);
        assert!(bounds.max.y <= 0.5 + 1e-5);
    }

    #[test]
    fn heightfield_is_deterministic() {
        assert_eq!(
            heightfield(4, 4, 1.0, 1.0, 7),
            heightfield(4, 4, 1.0, 1.0, 7)
        );
        assert_ne!(
            heightfield(4, 4, 1.0, 1.0, 7),
            heightfield(4, 4, 1.0, 1.0, 8)
        );
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn heightfield_rejects_degenerate_grid() {
        let _ = heightfield(1, 4, 1.0, 1.0, 0);
    }

    #[test]
    fn open_room_has_ten_triangles_closed_has_twelve() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        assert_eq!(room(b, false).len(), 10);
        assert_eq!(room(b, true).len(), 12);
    }

    #[test]
    fn clutter_stays_near_region_and_is_deterministic() {
        let region = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        let a = scatter_clutter(region, 10, 0.2..0.5, 3);
        let b = scatter_clutter(region, 10, 0.2..0.5, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5 * 8 + 5 * 4); // alternating octa / tetra
        let grown = Aabb::new(region.min - Vec3::splat(0.5), region.max + Vec3::splat(0.5));
        for t in &a {
            assert!(grown.contains(t.centroid()));
        }
    }
}
