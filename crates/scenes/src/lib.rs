//! Procedural benchmark scenes for the CoopRT reproduction.
//!
//! The paper evaluates on LumiBench, a suite of 16 real 3D scenes with
//! BVHs from 0.2 MB to 1.7 GB. Those assets are not redistributable (and
//! far too large to simulate at laptop scale), so this crate provides
//! **procedural stand-ins**: 15 scenes named after their LumiBench
//! counterparts, generated deterministically, with matched *character* —
//! the properties that actually drive CoopRT's results:
//!
//! - relative tree-size ordering (Table 2),
//! - open vs. closed geometry (sky exposure controls how quickly warps
//!   lose active threads, i.e. SIMT efficiency),
//! - emissive area lights (paths terminating on lights),
//! - geometric clutter (traversal-length variance → early finishers).
//!
//! See `DESIGN.md` for the substitution rationale.
//!
//! # Examples
//!
//! ```
//! use cooprt_scenes::SceneId;
//!
//! let scene = SceneId::Wknd.build(8);
//! assert!(scene.image.node_count() > 0);
//! assert!(!scene.is_closed()); // the weekend scene is open to the sky
//! ```

mod camera;
mod generators;
mod material;
mod query;
mod scene;
mod sky;
mod suite;

pub use camera::Camera;
pub use generators::{
    box_at, heightfield, icosphere, octahedron, quad, room, scatter_clutter, tetrahedron,
};
pub use material::{Material, Scatter};
pub use query::{
    amr_cells, cell_tris, clustered_points, point_cloud_tris, surface_points, uniform_points,
    QueryDomain, CELL_GAP, INFLATE, QUERY_GUARD, TRIS_PER_CELL, TRIS_PER_POINT,
};
pub use scene::{Scene, SceneBuilder};
pub use sky::Sky;
pub use suite::{SceneId, ALL_SCENES, PAPER_FIG17_SCENES, QUERY_SCENES};
