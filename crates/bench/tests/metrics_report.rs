//! Counter-reset hygiene for the unified metrics registry.
//!
//! Every statistics family in a `FrameResult` is per-frame *by
//! construction*: `Simulation::run_frame` builds a fresh `Engine` (and
//! with it a fresh memory hierarchy, energy-event set, stall breakdown
//! and latency collection) for every frame, so no counter can leak from
//! one frame into the next. This suite enforces that contract at the
//! report level: two identical back-to-back frames must serialize to
//! *identical* metrics documents.

use cooprt_core::{GpuConfig, MetricsReport, ShaderKind, Simulation, TraversalPolicy};
use cooprt_scenes::SceneId;
use cooprt_telemetry::parse_json;

fn report_for_one_frame() -> String {
    let scene = SceneId::Wknd.build(8);
    let cfg = GpuConfig::small(2);
    let frame = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .run_frame(ShaderKind::PathTrace, 16, 16)
        .unwrap();
    let mut report = MetricsReport::new("wknd");
    report.add_frame("wknd/coop", &frame);
    report.to_json()
}

#[test]
fn identical_frames_report_identical_metrics() {
    let first = report_for_one_frame();
    let second = report_for_one_frame();
    assert_eq!(
        first, second,
        "two identical back-to-back frames must produce byte-identical \
         metrics reports — a counter leaked state between frames"
    );
    // And the document is well-formed JSON.
    parse_json(&first).expect("metrics report must be valid JSON");
}

#[test]
fn accumulated_spp1_is_bitwise_identical_to_run_frame() {
    // `run_accumulated` with spp == 1 is a single sample with salt 0
    // averaged with weight 1/1 — it must be *bitwise* identical to one
    // `run_frame` with the same salt, both in the accumulated image and
    // in the per-sample FrameResult.
    let scene = SceneId::Wknd.build(8);
    let cfg = GpuConfig::small(2);
    let sim = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt);
    let (accum, frames) = sim
        .run_accumulated(ShaderKind::PathTrace, 16, 16, 1)
        .unwrap();
    let single = sim
        .clone()
        .with_sample_salt(0)
        .run_frame(ShaderKind::PathTrace, 16, 16)
        .unwrap();
    assert_eq!(frames.len(), 1);
    assert_eq!(
        accum, single.image,
        "spp=1 accumulation must not perturb a single frame bitwise \
         (the 1/spp weight is exactly 1.0)"
    );
    assert_eq!(frames[0].image, single.image);
    assert_eq!(frames[0].cycles, single.cycles);
    assert_eq!(frames[0].rays, single.rays);
    assert_eq!(frames[0].mem, single.mem);
    assert_eq!(frames[0].events, single.events);
}

#[test]
fn accumulated_runs_scale_with_frame_count() {
    // `run_accumulated`-style repetition: the same frame simulated
    // twice reports exactly 2x the (deterministic) per-frame counters.
    let scene = SceneId::Ship.build(8);
    let cfg = GpuConfig::small(2);
    let one = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 16, 16)
        .unwrap();
    let two = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .run_frame(ShaderKind::PathTrace, 16, 16)
        .unwrap();
    assert_eq!(one.cycles, two.cycles);
    assert_eq!(one.rays, two.rays);
    assert_eq!(one.mem, two.mem);
    assert_eq!(one.events, two.events);
    assert_eq!(one.stalls.rt, two.stalls.rt);
    assert_eq!(one.stalls.mem, two.stalls.mem);
    assert_eq!(one.intervals.samples, two.intervals.samples);
}
