//! Golden trace-format regression suite.
//!
//! `tests/data/golden_wknd.cprt` is a checked-in v1 trace: the 'wknd'
//! scene at detail 2, recorded at 16x16 under the RTX 2060 baseline
//! configuration (path tracing). Decoding it pins the on-disk format —
//! header fields, stream/issue shapes, the embedded BVH — and replaying
//! it pins the timing model's cycle counts for both policies.
//!
//! A failure here means one of two things:
//!
//! - the **format** changed: old traces no longer decode, or decode to
//!   different contents. That needs a version bump (`TRACE_VERSION`)
//!   and a migration story, not a silent re-baseline;
//! - the **timing model** changed: the same recorded front end now
//!   takes a different number of cycles. That must either be a bug or
//!   come with a deliberate re-baselining of this file alongside
//!   `golden_cycles.rs` and `BENCH_simperf.json`.
//!
//! Regenerate (only for a deliberate re-baseline) with:
//!
//! ```sh
//! cargo run --release -- trace record wknd --res 16 --detail 2 \
//!     --policy baseline --out crates/bench/tests/data/golden_wknd.cprt
//! ```

use cooprt_core::{GpuConfig, ShaderKind, Trace, TraversalPolicy, TRACE_MAGIC, TRACE_VERSION};

const GOLDEN_BYTES: &[u8] = include_bytes!("data/golden_wknd.cprt");

/// Replayed cycle counts under `GpuConfig::rtx2060()`, pinned when the
/// trace was recorded (the live simulation reported the same values).
const GOLDEN_BASELINE_CYCLES: u64 = 13849;
const GOLDEN_COOPRT_CYCLES: u64 = 7428;

#[test]
fn golden_trace_still_decodes() {
    assert_eq!(&GOLDEN_BYTES[..4], TRACE_MAGIC, "magic bytes moved");
    assert_eq!(
        TRACE_VERSION, 1,
        "version bumped: record a new golden trace"
    );
    let trace = Trace::decode(GOLDEN_BYTES).expect("checked-in trace decodes");

    // Header fields, exactly as recorded.
    assert_eq!(trace.scene_name, "wknd");
    assert_eq!(trace.detail, 2);
    assert_eq!(trace.kind, ShaderKind::PathTrace);
    assert_eq!((trace.width, trace.height), (16, 16));
    assert_eq!(trace.sample_salt, 0);
    assert_eq!(trace.max_bounces, 16);
    assert_eq!(trace.ao_samples, 4);
    assert_eq!(trace.ao_radius.to_bits(), 2.5f32.to_bits());
    assert_eq!(trace.sh_samples, 2);
    assert_eq!(trace.scene_hash, trace.bvh.content_hash());

    // Body shapes: one stream per pixel, the recorded event counts.
    assert_eq!(trace.streams.len(), 256);
    assert_eq!(trace.total_records(), 568);
    assert_eq!(trace.issues.len(), 58);
    assert_eq!(trace.image.len(), 256);
    assert_eq!(trace.bvh.node_count(), 116);
    assert_eq!(trace.bvh.triangles().len(), 86);
}

#[test]
fn golden_trace_still_replays_the_pinned_cycles() {
    let trace = Trace::decode(GOLDEN_BYTES).expect("checked-in trace decodes");
    let cfg = GpuConfig::rtx2060();
    for (policy, golden) in [
        (TraversalPolicy::Baseline, GOLDEN_BASELINE_CYCLES),
        (TraversalPolicy::CoopRt, GOLDEN_COOPRT_CYCLES),
    ] {
        let r = trace.replay(&cfg, policy).unwrap();
        assert_eq!(
            r.cycles, golden,
            "{policy:?}: replayed cycles drifted from the pinned value"
        );
        assert_eq!(
            r.image, trace.image,
            "{policy:?}: replay no longer reproduces the recorded image"
        );
    }
}

#[test]
fn golden_trace_reencodes_bitwise() {
    // Encoding is canonical: decode -> encode reproduces the exact
    // bytes, so traces can be archived and diffed.
    let trace = Trace::decode(GOLDEN_BYTES).expect("checked-in trace decodes");
    assert_eq!(trace.encode(), GOLDEN_BYTES, "re-encoded bytes differ");
}
