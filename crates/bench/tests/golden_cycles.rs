//! Golden cycle-count regression suite.
//!
//! Every scene × policy cell of `BENCH_simperf.json` (resolution 96,
//! detail 16, RTX 2060 config, path tracing) is pinned here to the
//! exact cycle count the simulator reported when the numbers were
//! recorded. The simulator is deterministic, and hot-path work is
//! host-*representation* only (flat caches, slotted MSHRs, the event
//! calendar — see `DESIGN.md`), so any change that perturbs one of
//! these counts is a *behavioural* change: it must either be a bug or
//! come with a deliberate re-baselining of this table and of
//! `BENCH_simperf.json`.
//!
//! The parameters are hard-coded — `COOPRT_RES` / `COOPRT_DETAIL` are
//! ignored — so the suite means the same thing in every environment.
//!
//! Every run here executes with the sim-time event tracer **enabled**
//! (capacity-limited so memory stays bounded) and the invariant checker
//! **enabled**: both are contractually observational, so the cycle
//! counts must stay bitwise identical to the untraced, unchecked golden
//! values. Any drift means an instrumentation point perturbed
//! simulation behaviour — and every run must also finish with zero
//! invariant violations.

//! Each scene additionally exercises trace-driven record/replay:
//! recording under the baseline policy must reproduce the golden
//! baseline count exactly (recording is observational), and replaying
//! the one trace must reproduce *both* policies' golden counts and the
//! recorded image bitwise (replay drives the identical timing model).
//!
//! The spatial-query matrix gets the same treatment: every query scene
//! × policy cell (gather-mode kNN / radius / containment batches, the
//! simperf `query` section's hard-coded parameters) is pinned to its
//! exact cycle count, and every pinned run must also answer bitwise
//! identically to the brute-force oracle.

use cooprt_core::{
    Checker, GpuConfig, PredictPolicy, ReorderPolicy, ShaderKind, Simulation, Trace,
    TraversalPolicy,
};
use cooprt_scenes::SceneId;
use cooprt_telemetry::{EventKind, Tracer};

const RES: usize = 96;
const DETAIL: u32 = 16;

/// `(scene, baseline cycles, cooprt cycles)` from `BENCH_simperf.json`.
const GOLDEN: &[(SceneId, u64, u64)] = &[
    (SceneId::Wknd, 15278, 9162),
    (SceneId::Ship, 8123, 5413),
    (SceneId::Bunny, 12970, 6868),
    (SceneId::Spnza, 46191, 34770),
    (SceneId::Chsnt, 15777, 8506),
    (SceneId::Bath, 60219, 40011),
    (SceneId::Ref, 67467, 43952),
    (SceneId::Crnvl, 8248, 6129),
    (SceneId::Fox, 26755, 15057),
    (SceneId::Party, 9967, 6610),
    (SceneId::Sprng, 23918, 11915),
    (SceneId::Lands, 36245, 14010),
    (SceneId::Frst, 29018, 13886),
    (SceneId::Car, 68972, 26720),
    (SceneId::Robot, 62533, 26894),
];

/// Trace-buffer capacity per run: small enough that the 15 scene tests
/// can run concurrently, large enough that every run records events
/// (overflow is counted, and the emission path is identical either way).
const TRACE_CAPACITY: usize = 200_000;

fn check(id: SceneId, base_golden: u64, coop_golden: u64) {
    let scene = id.build(DETAIL);
    let cfg = GpuConfig::rtx2060();
    for (policy, golden) in [
        (TraversalPolicy::Baseline, base_golden),
        (TraversalPolicy::CoopRt, coop_golden),
    ] {
        let tracer = Tracer::with_capacity(TRACE_CAPACITY);
        let checker = Checker::enabled();
        let r = Simulation::new(&scene, &cfg, policy)
            .with_tracer(tracer.clone())
            .with_checker(checker.clone())
            .run_frame(ShaderKind::PathTrace, RES, RES)
            .unwrap();
        assert_eq!(
            r.cycles, golden,
            "{id} {policy:?}: simulated cycle count drifted from the \
             golden value — a hot-path change altered behaviour (the \
             tracer was enabled; telemetry must be purely observational)",
        );
        let log = tracer.take();
        assert!(
            !log.events.is_empty(),
            "{id} {policy:?}: the enabled tracer recorded no events"
        );
        assert!(
            checker.checks_run() > 0,
            "{id} {policy:?}: the enabled checker evaluated no invariants"
        );
        checker.assert_clean();
    }

    // Record once under baseline: the golden value was pinned without a
    // recorder, so equality proves recording perturbs nothing.
    let (recorded, trace) = Trace::record(
        &scene,
        DETAIL,
        &cfg,
        TraversalPolicy::Baseline,
        ShaderKind::PathTrace,
        RES,
        RES,
    )
    .unwrap();
    assert_eq!(
        recorded.cycles, base_golden,
        "{id}: enabling the recorder changed the baseline cycle count"
    );

    // The one trace replays the timing model under both policies: same
    // golden cycles, same image, no raygen or shading re-executed.
    for (policy, golden) in [
        (TraversalPolicy::Baseline, base_golden),
        (TraversalPolicy::CoopRt, coop_golden),
    ] {
        let r = trace.replay(&cfg, policy).unwrap();
        assert_eq!(
            r.cycles, golden,
            "{id} {policy:?}: replayed cycle count drifted from live simulation"
        );
        assert_eq!(
            r.image, recorded.image,
            "{id} {policy:?}: replayed image differs from the recorded frame"
        );
    }
}

/// Resolution of the reorder rows — lower than the main table because
/// each row simulates four frames (reference + reordered, both
/// policies).
const REORDER_RES: usize = 64;

/// `(scene, baseline cycles, cooprt cycles)` under Morton reordering
/// with warp compaction at `REORDER_RES` (detail 16, RTX 2060, path
/// tracing). Compaction matters: primary rays all share the camera
/// origin, so Morton only re-packs warps at the between-wave re-forms
/// where secondary-ray origins scatter.
const GOLDEN_REORDER: &[(SceneId, u64, u64)] = &[
    (SceneId::Wknd, 24842, 17892),
    (SceneId::Ship, 13353, 9343),
    (SceneId::Crnvl, 13161, 8804),
];

fn check_reorder(id: SceneId, base_golden: u64, coop_golden: u64) {
    let scene = id.build(DETAIL);
    let mut unordered = GpuConfig::rtx2060();
    unordered.compaction = true;
    let cfg = unordered.clone().with_reorder(ReorderPolicy::Morton);
    for (policy, golden) in [
        (TraversalPolicy::Baseline, base_golden),
        (TraversalPolicy::CoopRt, coop_golden),
    ] {
        let reference = Simulation::new(&scene, &unordered, policy)
            .run_frame(ShaderKind::PathTrace, REORDER_RES, REORDER_RES)
            .unwrap();
        let tracer = Tracer::with_capacity(TRACE_CAPACITY);
        let checker = Checker::enabled();
        let r = Simulation::new(&scene, &cfg, policy)
            .with_tracer(tracer.clone())
            .with_checker(checker.clone())
            .run_frame(ShaderKind::PathTrace, REORDER_RES, REORDER_RES)
            .unwrap();
        assert_eq!(
            r.cycles, golden,
            "{id} {policy:?} morton+compaction: reordered cycle count \
             drifted from the golden value (the tracer was enabled; the \
             reorder pass and its telemetry must not perturb timing)",
        );
        assert_eq!(
            r.image, reference.image,
            "{id} {policy:?}: reordering changed a pixel — it must be \
             timing-only"
        );
        assert!(
            r.reorder.passes > 0 && r.reorder.rays_moved > 0,
            "{id} {policy:?}: the golden reorder row must actually sort \
             (got {} passes, {} rays moved)",
            r.reorder.passes,
            r.reorder.rays_moved
        );
        let log = tracer.take();
        assert!(
            log.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Reorder { .. })),
            "{id} {policy:?}: no Reorder event reached the tracer"
        );
        checker.assert_clean();
    }
}

/// Resolution of the ray-path prediction rows (each row simulates four
/// frames: reference + predicted, both policies).
const PREDICT_RES: usize = 64;

/// `(scene, baseline cycles, cooprt cycles)` with the ray-path
/// predictor enabled, shadow rays at `PREDICT_RES` (detail 16, RTX
/// 2060). Shadow is the coherent any-hit workload the predictor
/// targets; these three scenes are the ones the evaluation calls out
/// for measurable node-fetch savings.
const GOLDEN_PREDICT: &[(SceneId, u64, u64)] = &[
    (SceneId::Crnvl, 8009, 6091),
    (SceneId::Fox, 12238, 8815),
    (SceneId::Party, 8077, 6150),
];

fn check_predict(id: SceneId, base_golden: u64, coop_golden: u64) {
    let scene = id.build(DETAIL);
    let off = GpuConfig::rtx2060();
    let cfg = off.clone().with_predict(PredictPolicy::RayPath);
    for (policy, golden) in [
        (TraversalPolicy::Baseline, base_golden),
        (TraversalPolicy::CoopRt, coop_golden),
    ] {
        let reference = Simulation::new(&scene, &off, policy)
            .run_frame(ShaderKind::Shadow, PREDICT_RES, PREDICT_RES)
            .unwrap();
        let tracer = Tracer::with_capacity(TRACE_CAPACITY);
        let checker = Checker::enabled();
        let r = Simulation::new(&scene, &cfg, policy)
            .with_tracer(tracer.clone())
            .with_checker(checker.clone())
            .run_frame(ShaderKind::Shadow, PREDICT_RES, PREDICT_RES)
            .unwrap();
        assert_eq!(
            r.cycles, golden,
            "{id} {policy:?} ray-path: predicted cycle count drifted \
             from the golden value (the tracer was enabled; prediction \
             and its telemetry must be deterministic)",
        );
        assert_eq!(
            r.image, reference.image,
            "{id} {policy:?}: ray-path prediction changed a pixel — the \
             go-up-to-root fallback must keep occlusion exact"
        );
        assert!(
            r.predictor.path_lookups > 0 && r.predictor.node_fetches_saved > 0,
            "{id} {policy:?}: the golden predict row must actually \
             predict (got {} lookups, {} fetches saved)",
            r.predictor.path_lookups,
            r.predictor.node_fetches_saved
        );
        let log = tracer.take();
        assert!(
            log.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Predict { .. })),
            "{id} {policy:?}: no Predict event reached the tracer"
        );
        checker.assert_clean();
    }
}

/// Batch size and sample salt of the query rows — the same values the
/// simperf `query` section hard-codes, so these pins and the
/// `BENCH_simperf.json` rows are the same measurement.
const QUERY_COUNT: usize = 2048;
const QUERY_SALT: u64 = 1;

/// `(scene, kind, baseline cycles, cooprt cycles)` for the spatial-
/// query matrix (detail 16, 2048 queries, salt 1, RTX 2060, reorder
/// off). Gather-mode probe batches stress the LBU very differently
/// from rendering — deep multi-leaf enumeration with no early-out —
/// and these pins freeze that behaviour alongside the render rows.
const GOLDEN_QUERY: &[(SceneId, ShaderKind, u64, u64)] = &[
    (SceneId::Quni, ShaderKind::Knn, 13765, 7618),
    (SceneId::Qclu, ShaderKind::Radius, 28495, 7482),
    (SceneId::Qsrf, ShaderKind::Knn, 9925, 5587),
    (SceneId::Qamr, ShaderKind::Contain, 12838, 7574),
];

fn check_query(id: SceneId, kind: ShaderKind, base_golden: u64, coop_golden: u64) {
    let scene = id.build(DETAIL);
    let cfg = GpuConfig::rtx2060();
    // The answers every run must reproduce bitwise: brute force over
    // the raw domain, no BVH, no simulator.
    let want = cooprt_query::oracle_answers(&scene, kind, QUERY_COUNT, QUERY_SALT);
    assert!(
        want.iter().any(|a| !a.is_empty()),
        "{id}: the golden query batch must find something"
    );
    for (policy, golden) in [
        (TraversalPolicy::Baseline, base_golden),
        (TraversalPolicy::CoopRt, coop_golden),
    ] {
        let tracer = Tracer::with_capacity(TRACE_CAPACITY);
        let checker = Checker::enabled();
        let r = Simulation::new(&scene, &cfg, policy)
            .with_sample_salt(QUERY_SALT)
            .with_tracer(tracer.clone())
            .with_checker(checker.clone())
            .run_frame(kind, QUERY_COUNT, 1)
            .unwrap();
        assert_eq!(
            r.cycles, golden,
            "{id} {policy:?} {kind:?}: query cycle count drifted from \
             the golden value (the tracer was enabled; gather traversal \
             and its telemetry must be deterministic)",
        );
        assert_eq!(
            r.query_results, want,
            "{id} {policy:?} {kind:?}: query answers diverged from the \
             brute-force oracle"
        );
        assert!(
            !tracer.take().events.is_empty(),
            "{id} {policy:?}: the enabled tracer recorded no events"
        );
        checker.assert_clean();
    }
}

macro_rules! golden_query_scene {
    ($test:ident, $id:ident) => {
        #[test]
        fn $test() {
            let &(id, kind, base, coop) = GOLDEN_QUERY
                .iter()
                .find(|(s, _, _, _)| *s == SceneId::$id)
                .expect("scene present in the golden query table");
            check_query(id, kind, base, coop);
        }
    };
}

golden_query_scene!(golden_query_quni, Quni);
golden_query_scene!(golden_query_qclu, Qclu);
golden_query_scene!(golden_query_qsrf, Qsrf);
golden_query_scene!(golden_query_qamr, Qamr);

macro_rules! golden_predict_scene {
    ($test:ident, $id:ident) => {
        #[test]
        fn $test() {
            let &(id, base, coop) = GOLDEN_PREDICT
                .iter()
                .find(|(s, _, _)| *s == SceneId::$id)
                .expect("scene present in the golden predict table");
            check_predict(id, base, coop);
        }
    };
}

golden_predict_scene!(golden_predict_crnvl, Crnvl);
golden_predict_scene!(golden_predict_fox, Fox);
golden_predict_scene!(golden_predict_party, Party);

macro_rules! golden_reorder_scene {
    ($test:ident, $id:ident) => {
        #[test]
        fn $test() {
            let &(id, base, coop) = GOLDEN_REORDER
                .iter()
                .find(|(s, _, _)| *s == SceneId::$id)
                .expect("scene present in the golden reorder table");
            check_reorder(id, base, coop);
        }
    };
}

golden_reorder_scene!(golden_reorder_wknd, Wknd);
golden_reorder_scene!(golden_reorder_ship, Ship);
golden_reorder_scene!(golden_reorder_crnvl, Crnvl);

macro_rules! golden_scene {
    ($test:ident, $id:ident) => {
        #[test]
        fn $test() {
            let &(id, base, coop) = GOLDEN
                .iter()
                .find(|(s, _, _)| *s == SceneId::$id)
                .expect("scene present in the golden table");
            check(id, base, coop);
        }
    };
}

golden_scene!(golden_cycles_wknd, Wknd);
golden_scene!(golden_cycles_ship, Ship);
golden_scene!(golden_cycles_bunny, Bunny);
golden_scene!(golden_cycles_spnza, Spnza);
golden_scene!(golden_cycles_chsnt, Chsnt);
golden_scene!(golden_cycles_bath, Bath);
golden_scene!(golden_cycles_ref, Ref);
golden_scene!(golden_cycles_crnvl, Crnvl);
golden_scene!(golden_cycles_fox, Fox);
golden_scene!(golden_cycles_party, Party);
golden_scene!(golden_cycles_sprng, Sprng);
golden_scene!(golden_cycles_lands, Lands);
golden_scene!(golden_cycles_frst, Frst);
golden_scene!(golden_cycles_car, Car);
golden_scene!(golden_cycles_robot, Robot);
