//! Determinism contract of the parallel harness: every parallel entry
//! point must produce results bitwise identical to its sequential
//! equivalent, for any worker count — plus a wall-clock speedup check
//! on hosts with enough cores.

use cooprt_bench::parallel;
use cooprt_core::{FrameResult, GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt_scenes::{Scene, SceneId};
use std::time::Instant;

const MATRIX_SCENES: [SceneId; 4] = [SceneId::Wknd, SceneId::Fox, SceneId::Party, SceneId::Bath];

fn run_cell(scene: &Scene, policy: TraversalPolicy, res: usize) -> FrameResult {
    Simulation::new(scene, &GpuConfig::small(4), policy)
        .run_frame(ShaderKind::PathTrace, res, res)
        .unwrap()
}

fn assert_frames_identical(a: &FrameResult, b: &FrameResult, what: &str) {
    assert_eq!(a.image, b.image, "{what}: image must be bitwise identical");
    assert_eq!(a.cycles, b.cycles, "{what}: cycle count must match");
    assert_eq!(a.events, b.events, "{what}: event counters must match");
    assert_eq!(a.mem, b.mem, "{what}: memory statistics must match");
    assert_eq!(a.rays, b.rays, "{what}: ray count must match");
}

/// The scene x policy matrix run through `par_map` on several workers is
/// bitwise identical to the plain sequential loop, for every worker
/// count (including more workers than jobs).
#[test]
fn parallel_matrix_is_bitwise_identical_to_sequential() {
    let scenes: Vec<Scene> = MATRIX_SCENES.iter().map(|id| id.build(4)).collect();
    let jobs: Vec<(usize, TraversalPolicy)> = (0..scenes.len())
        .flat_map(|i| [(i, TraversalPolicy::Baseline), (i, TraversalPolicy::CoopRt)])
        .collect();
    let sequential: Vec<FrameResult> = jobs
        .iter()
        .map(|&(i, policy)| run_cell(&scenes[i], policy, 12))
        .collect();
    for workers in [1, 2, 4, 16] {
        let parallel = parallel::par_map(&jobs, workers, |_, &(i, policy)| {
            run_cell(&scenes[i], policy, 12)
        });
        assert_eq!(parallel.len(), sequential.len());
        for (k, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            let (i, policy) = jobs[k];
            assert_frames_identical(
                s,
                p,
                &format!(
                    "{} {policy:?} on {workers} workers",
                    MATRIX_SCENES[i].name()
                ),
            );
        }
    }
}

/// The baseline/CoopRT pair evaluated via `parallel::join` matches the
/// two sequential calls exactly.
#[test]
fn joined_policy_pair_matches_sequential_pair() {
    let scene = SceneId::Crnvl.build(4);
    let seq_base = run_cell(&scene, TraversalPolicy::Baseline, 12);
    let seq_coop = run_cell(&scene, TraversalPolicy::CoopRt, 12);
    let (par_base, par_coop) = parallel::join(
        2,
        || run_cell(&scene, TraversalPolicy::Baseline, 12),
        || run_cell(&scene, TraversalPolicy::CoopRt, 12),
    );
    assert_frames_identical(&seq_base, &par_base, "baseline via join");
    assert_frames_identical(&seq_coop, &par_coop, "cooprt via join");
}

/// Multi-sample accumulation is invariant to the worker count: the
/// accumulated image (f32 sums in fixed order) and every per-sample
/// frame are bitwise identical.
#[test]
fn accumulation_is_thread_count_invariant() {
    let scene = SceneId::Fox.build(4);
    let sim = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::CoopRt);
    let (ref_accum, ref_frames) = sim
        .run_accumulated_with_threads(ShaderKind::PathTrace, 8, 8, 4, 1)
        .unwrap();
    for workers in [2, 4, 8] {
        let (accum, frames) = sim
            .run_accumulated_with_threads(ShaderKind::PathTrace, 8, 8, 4, workers)
            .unwrap();
        assert_eq!(accum, ref_accum, "accumulated image on {workers} workers");
        assert_eq!(frames.len(), ref_frames.len());
        for (a, b) in ref_frames.iter().zip(&frames) {
            assert_frames_identical(a, b, &format!("sample frame on {workers} workers"));
        }
    }
}

/// Scene suite construction through the parallel builder matches
/// building each scene directly.
#[test]
fn parallel_scene_build_matches_direct_build() {
    let built = parallel::par_map(&MATRIX_SCENES, 4, |_, id| id.build(4));
    for (id, scene) in MATRIX_SCENES.iter().zip(&built) {
        let direct = id.build(4);
        assert_eq!(scene.image.triangles(), direct.image.triangles(), "{id}");
        assert_eq!(scene.stats, direct.stats, "{id}");
        assert_eq!(scene.lights, direct.lights, "{id}");
    }
}

/// On hosts with at least 4 cores, running the 4-scene matrix on 4
/// workers must be at least 2x faster than the sequential loop while
/// remaining bitwise identical. On smaller hosts only the identity part
/// is meaningful, so the timing assertion is skipped.
#[test]
fn four_workers_give_twofold_matrix_speedup() {
    let scenes: Vec<Scene> = MATRIX_SCENES.iter().map(|id| id.build(6)).collect();
    let jobs: Vec<(usize, TraversalPolicy)> = (0..scenes.len())
        .flat_map(|i| [(i, TraversalPolicy::Baseline), (i, TraversalPolicy::CoopRt)])
        .collect();
    let res = 24;

    let t0 = Instant::now();
    let sequential = parallel::par_map(&jobs, 1, |_, &(i, policy)| {
        run_cell(&scenes[i], policy, res)
    });
    let seq_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let concurrent = parallel::par_map(&jobs, 4, |_, &(i, policy)| {
        run_cell(&scenes[i], policy, res)
    });
    let par_secs = t1.elapsed().as_secs_f64();

    for (s, p) in sequential.iter().zip(&concurrent) {
        assert_frames_identical(s, p, "speedup matrix");
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!(
            "host has only {cores} core(s); skipping the 2x wall-clock assertion \
             (identity checks above still ran)"
        );
        return;
    }
    let speedup = seq_secs / par_secs.max(1e-12);
    assert!(
        speedup >= 2.0,
        "expected >= 2x matrix speedup on 4 workers, got {speedup:.2}x \
         (sequential {seq_secs:.3}s, parallel {par_secs:.3}s)"
    );
}
