//! simperf: wall-clock throughput of the simulator itself.
//!
//! Unlike the figure targets (which report *simulated* metrics), this
//! target measures how fast the simulator runs on the host: simulated
//! cycles per wall-clock second and rays per wall-clock second for each
//! scene x policy cell, plus an honest parallel-scaling ladder. The
//! matrix is first run sequentially (timing each cell), then re-run at
//! each power-of-two worker count up to the host parallelism; every
//! pooled pass is asserted bitwise identical to the sequential one
//! (the determinism contract of `cooprt_core::parallel`), and the
//! per-worker-count wall clocks and speedups are all recorded — on a
//! single-core host the ladder simply shows that there is no
//! parallelism to be had, instead of dressing a one-worker pass up as
//! a "parallel" measurement. Results are printed and written to
//! `BENCH_simperf.json` at the repository root.
//!
//! A trace record/replay section measures the record-once/replay-
//! everywhere amortization on an 8-config memory-hierarchy sweep of the
//! first scene: one trace is recorded under the reference config, every
//! sweep point is replayed from it, and each replay is asserted bitwise
//! identical (cycles and image) to a live run of the same config. The
//! recorder's wall-clock overhead and the sweep speedup are reported
//! under `trace_replay` in the JSON.
//!
//! A ray-reordering section sweeps the reorder axis over every scene:
//! each scene's front end is recorded once (unordered), then replayed
//! under {baseline, CoopRT} x {off, morton, octant-hash} — reordering
//! is timing-only, so one trace serves all six cells and every replayed
//! image is asserted bitwise identical to the recorded frame. The
//! section reports cycles, SIMT efficiency, L1/L2 hit rates and rays
//! moved per cell under `reorder` in the JSON — wins and losses alike
//! (primary-ray frames from a pinhole camera barely move under
//! morton; that is the honest result, not a bug).
//!
//! A ray-path prediction section sweeps the predict axis the same way:
//! each scene's *shadow* front end (the coherent any-hit workload the
//! predictor targets) is recorded once, then replayed under
//! {baseline, CoopRT} x {off, ray-path}. Every replayed image is
//! asserted bitwise identical to the recorded frame — the predictor's
//! go-up-to-root fallback keeps occlusion exact — and the section
//! reports cycles, predicted-hit rate, go-up steps and node fetches
//! saved per cell under `predict` in the JSON.
//!
//! A spatial-query section runs the four query scenes (uniform /
//! clustered / surface point clouds, AMR cell grid) through the
//! `cooprt-query` front end: kNN, fixed-radius search and point-in-cell
//! containment as gather-mode probe batches, under
//! {baseline, CoopRT} x {reorder off, morton}. Every cell's answers are
//! asserted **exact** against the brute-force oracle before its timing
//! is reported, and the section records whether LBU work-stealing helps
//! or hurts under query-style divergence — both outcomes are honest
//! results (reordering query points into coherent warps can *remove*
//! the imbalance CoopRT feeds on). The matrix parameters are
//! hard-coded (detail 16, 2048 queries, salt 1) so the `query` rows in
//! the JSON stay comparable to the golden pins in
//! `tests/golden_cycles.rs` regardless of `COOPRT_RES`/`COOPRT_DETAIL`.
//!
//! `--smoke` runs a two-scene, low-resolution edition — same passes,
//! same determinism asserts (including one reordered and one predicted
//! replay per smoke scene, plus a reduced query matrix), no JSON — so
//! CI can exercise this harness in seconds (see `ci.sh`).
//!
//! The JSON document goes through the shared
//! [`cooprt_telemetry::JsonWriter`] (byte-compatible with the layout
//! this bench has always produced), and the bench phases are timed with
//! a [`cooprt_telemetry::Profiler`] so the wall clocks in the report
//! come from the same spans that are printed.

use cooprt_bench::{banner, default_detail, default_res, parallel, run_at, scene_list};
use cooprt_core::{
    FrameResult, GpuConfig, PredictPolicy, ReorderPolicy, ShaderKind, Trace, TraversalPolicy,
};
use cooprt_scenes::{Scene, SceneId};
use cooprt_telemetry::{JsonWriter, Profiler};
use std::time::Instant;

/// The 8-point memory-hierarchy sweep for the record/replay
/// amortization measurement: the reference config plus seven cache /
/// MSHR / DRAM variations around it.
fn memory_sweep(base: &GpuConfig) -> Vec<(&'static str, GpuConfig)> {
    let mut points = Vec::new();
    let mut push = |label, f: &dyn Fn(&mut GpuConfig)| {
        let mut c = base.clone();
        f(&mut c);
        points.push((label, c));
    };
    push("ref", &|_| {});
    push("l1-half", &|c| c.mem.l1_bytes /= 2);
    push("l1-x2", &|c| c.mem.l1_bytes *= 2);
    push("l1-mshr-half", &|c| {
        c.mem.l1_mshr_entries = (c.mem.l1_mshr_entries / 2).max(1)
    });
    push("l2-half", &|c| c.mem.l2_bytes /= 2);
    push("l2-mshr-half", &|c| {
        c.mem.l2_mshr_entries = (c.mem.l2_mshr_entries / 2).max(1)
    });
    push("dram-1ch", &|c| c.mem.dram_channels = 1);
    push("dram-x2", &|c| c.mem.dram_channels *= 2);
    points
}

/// Smallest of `n` timed runs of `f` — wall-clock minima are robust
/// against scheduler noise on a shared host.
fn best_of(n: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Measured wall clocks of the record/replay amortization section.
struct TraceReplayReport {
    scene: &'static str,
    sweep_labels: Vec<&'static str>,
    trace_bytes: usize,
    records: u64,
    build_secs: f64,
    live_ref_secs: f64,
    record_run_secs: f64,
    record_overhead_pct: f64,
    encode_secs: f64,
    decode_secs: f64,
    live_sweep_secs: f64,
    replay_sweep_secs: f64,
    replay_speedup: f64,
}

/// Records the first scene once, replays the 8-config memory sweep
/// from the trace, asserts every replay bitwise identical to its live
/// twin, and returns the measured wall clocks.
fn trace_replay_section(
    id: SceneId,
    scene: &Scene,
    cfg: &GpuConfig,
    kind: ShaderKind,
    res: usize,
    detail: u32,
    workers: usize,
) -> TraceReplayReport {
    let policy = TraversalPolicy::Baseline;
    // A fresh build, timed on its own (the suite build above is pooled
    // across scenes, so its span cannot be attributed to one).
    let build_secs = best_of(1, || {
        let _ = id.build(detail);
    });

    let sweep = memory_sweep(cfg);
    let live_ref_secs = best_of(3, || {
        let _ = run_at(scene, cfg, policy, kind, res);
    });
    let mut trace_slot = None;
    let record_run_secs = best_of(3, || {
        trace_slot = Some(
            Trace::record(scene, detail, cfg, policy, kind, res, res)
                .expect("record the sweep scene")
                .1,
        );
    });
    let trace = trace_slot.expect("best_of ran at least once");
    let mut bytes = Vec::new();
    let encode_secs = best_of(3, || bytes = trace.encode());
    let mut decoded_slot = None;
    let decode_secs = best_of(3, || {
        decoded_slot = Some(Trace::decode(&bytes).expect("decode own encoding"));
    });
    let decoded = decoded_slot.expect("best_of ran at least once");

    // Live arm: re-simulate every sweep point from scratch.
    let t = Instant::now();
    let live: Vec<FrameResult> = sweep
        .iter()
        .map(|(_, c)| run_at(scene, c, policy, kind, res))
        .collect();
    let live_points_secs = t.elapsed().as_secs_f64();

    // Replay arm: drive every sweep point from the one decoded trace,
    // through the worker pool (deterministic at any width).
    let t = Instant::now();
    let replayed = parallel::par_map(&sweep, workers, |_, (_, c)| {
        decoded.replay(c, policy).expect("replay the sweep point")
    });
    let replay_points_secs = t.elapsed().as_secs_f64();

    // The replay-identity contract, enforced on every benchmark run:
    // bitwise equal cycles and image at every sweep point.
    for (((label, _), l), r) in sweep.iter().zip(&live).zip(&replayed) {
        assert_eq!(l.cycles, r.cycles, "{label}: replay must match live cycles");
        assert_eq!(l.image, r.image, "{label}: replay must match live image");
    }

    let live_sweep_secs = build_secs + live_points_secs;
    let replay_sweep_secs = record_run_secs + encode_secs + decode_secs + replay_points_secs;
    TraceReplayReport {
        scene: id.name(),
        sweep_labels: sweep.iter().map(|(l, _)| *l).collect(),
        trace_bytes: bytes.len(),
        records: trace.total_records(),
        build_secs,
        live_ref_secs,
        record_run_secs,
        record_overhead_pct: (record_run_secs - live_ref_secs) / live_ref_secs.max(1e-12) * 100.0,
        encode_secs,
        decode_secs,
        live_sweep_secs,
        replay_sweep_secs,
        replay_speedup: live_sweep_secs / replay_sweep_secs.max(1e-12),
    }
}

struct Row {
    scene: &'static str,
    policy: &'static str,
    cycles: u64,
    rays: u64,
    wall_secs: f64,
}

/// One cell of the reorder evaluation matrix.
struct ReorderRow {
    scene: &'static str,
    policy: &'static str,
    reorder: &'static str,
    cycles: u64,
    speedup_vs_off: f64,
    simt_efficiency: f64,
    l1_hit: f64,
    l2_hit: f64,
    rays_moved: u64,
    reorder_passes: u64,
}

/// Sweeps the reorder axis over every scene from one recorded trace
/// per scene; every replayed image is asserted bitwise identical to
/// the recorded (unordered) frame.
fn reorder_section(
    ids: &[cooprt_scenes::SceneId],
    scenes: &[Scene],
    cfg: &GpuConfig,
    kind: ShaderKind,
    res: usize,
    detail: u32,
    workers: usize,
) -> Vec<ReorderRow> {
    // Record each scene once, unordered, under the baseline policy.
    let traces: Vec<(FrameResult, Trace)> = parallel::par_map(scenes, workers, |i, scene| {
        Trace::record(
            scene,
            detail,
            cfg,
            TraversalPolicy::Baseline,
            kind,
            res,
            res,
        )
        .unwrap_or_else(|e| panic!("record {}: {e}", ids[i]))
    });

    let combos: Vec<(usize, TraversalPolicy, ReorderPolicy)> = (0..scenes.len())
        .flat_map(|i| {
            [TraversalPolicy::Baseline, TraversalPolicy::CoopRt]
                .into_iter()
                .flat_map(move |p| ReorderPolicy::ALL.into_iter().map(move |r| (i, p, r)))
        })
        .collect();
    let results = parallel::par_map(&combos, workers, |_, &(i, policy, reorder)| {
        let run_cfg = cfg.clone().with_reorder(reorder);
        traces[i]
            .1
            .replay(&run_cfg, policy)
            .unwrap_or_else(|e| panic!("replay {} {policy:?}/{reorder:?}: {e}", ids[i]))
    });

    // The identity contract: reordering never changes a pixel.
    for (&(i, policy, reorder), r) in combos.iter().zip(&results) {
        assert_eq!(
            r.image, traces[i].0.image,
            "{}: {policy:?}/{reorder:?} must render the recorded image bitwise",
            ids[i]
        );
    }

    // Cycles of the unordered cell for the same (scene, policy), for
    // the speedup column.
    let off_cycles = |i: usize, policy: TraversalPolicy| -> u64 {
        combos
            .iter()
            .zip(&results)
            .find(|(&(j, p, r), _)| j == i && p == policy && r == ReorderPolicy::Off)
            .map(|(_, res)| res.cycles)
            .expect("every (scene, policy) has an Off cell")
    };
    combos
        .iter()
        .zip(&results)
        .map(|(&(i, policy, reorder), r)| ReorderRow {
            scene: ids[i].name(),
            policy: policy.label(),
            reorder: reorder.label(),
            cycles: r.cycles,
            speedup_vs_off: off_cycles(i, policy) as f64 / r.cycles.max(1) as f64,
            simt_efficiency: r.simt_efficiency(),
            l1_hit: 1.0 - r.mem.l1.miss_rate(),
            l2_hit: 1.0 - r.mem.l2.miss_rate(),
            rays_moved: r.reorder.rays_moved,
            reorder_passes: r.reorder.passes,
        })
        .collect()
}

/// One cell of the ray-path prediction evaluation matrix.
struct PredictRow {
    scene: &'static str,
    policy: &'static str,
    predict: &'static str,
    cycles: u64,
    speedup_vs_off: f64,
    predicted_hit_rate: f64,
    path_lookups: u64,
    go_up_steps: u64,
    node_fetches_saved: u64,
}

/// Sweeps the ray-path prediction axis over every scene. Shadow rays
/// are the coherent any-hit workload the predictor targets, so each
/// scene's shadow front end is recorded once (predictor off) and
/// replayed under {baseline, CoopRT} x {off, ray-path}; every replayed
/// image is asserted bitwise identical to the recorded frame — the
/// predictor's go-up-to-root fallback makes occlusion outcomes exact,
/// and this assert enforces it on every benchmark run.
fn predict_section(
    ids: &[cooprt_scenes::SceneId],
    scenes: &[Scene],
    cfg: &GpuConfig,
    res: usize,
    detail: u32,
    workers: usize,
) -> Vec<PredictRow> {
    let kind = ShaderKind::Shadow;
    let traces: Vec<(FrameResult, Trace)> = parallel::par_map(scenes, workers, |i, scene| {
        Trace::record(
            scene,
            detail,
            cfg,
            TraversalPolicy::Baseline,
            kind,
            res,
            res,
        )
        .unwrap_or_else(|e| panic!("record {}: {e}", ids[i]))
    });

    let combos: Vec<(usize, TraversalPolicy, PredictPolicy)> = (0..scenes.len())
        .flat_map(|i| {
            [TraversalPolicy::Baseline, TraversalPolicy::CoopRt]
                .into_iter()
                .flat_map(move |p| PredictPolicy::ALL.into_iter().map(move |pr| (i, p, pr)))
        })
        .collect();
    let results = parallel::par_map(&combos, workers, |_, &(i, policy, predict)| {
        let run_cfg = cfg.clone().with_predict(predict);
        traces[i]
            .1
            .replay(&run_cfg, policy)
            .unwrap_or_else(|e| panic!("replay {} {policy:?}/{predict:?}: {e}", ids[i]))
    });

    // The identity contract: prediction never changes a pixel.
    for (&(i, policy, predict), r) in combos.iter().zip(&results) {
        assert_eq!(
            r.image, traces[i].0.image,
            "{}: {policy:?}/{predict:?} must render the recorded image bitwise",
            ids[i]
        );
    }

    let off_cycles = |i: usize, policy: TraversalPolicy| -> u64 {
        combos
            .iter()
            .zip(&results)
            .find(|(&(j, p, pr), _)| j == i && p == policy && pr == PredictPolicy::Off)
            .map(|(_, res)| res.cycles)
            .expect("every (scene, policy) has an Off cell")
    };
    combos
        .iter()
        .zip(&results)
        .map(|(&(i, policy, predict), r)| PredictRow {
            scene: ids[i].name(),
            policy: policy.label(),
            predict: predict.label(),
            cycles: r.cycles,
            speedup_vs_off: off_cycles(i, policy) as f64 / r.cycles.max(1) as f64,
            predicted_hit_rate: if r.predictor.path_candidates > 0 {
                r.predictor.path_entry_hits as f64 / r.predictor.path_candidates as f64
            } else {
                0.0
            },
            path_lookups: r.predictor.path_lookups,
            go_up_steps: r.predictor.path_go_up_steps,
            node_fetches_saved: r.predictor.node_fetches_saved,
        })
        .collect()
}

/// One cell of the spatial-query evaluation matrix.
struct QueryRow {
    scene: &'static str,
    kind: &'static str,
    policy: &'static str,
    reorder: &'static str,
    cycles: u64,
    rays: u64,
    /// Total answer entries over the batch (neighbours found / cells
    /// named) — a sanity column proving the workload is non-trivial.
    hits: u64,
    /// Baseline cycles over this cell's cycles at the same reorder
    /// mode: the CoopRT speedup column, < 1 when stealing hurts.
    speedup_vs_baseline: f64,
    /// Unordered cycles over this cell's cycles under the same policy.
    speedup_vs_off: f64,
    wall_secs: f64,
}

/// Scene detail, batch size and sample salt of the query matrix —
/// hard-coded so the rows match the golden pins in
/// `tests/golden_cycles.rs` in every environment.
const QUERY_DETAIL: u32 = 16;
const QUERY_COUNT: usize = 2048;
const QUERY_SALT: u64 = 1;

/// The query shader each suite scene exists to exercise.
fn query_kind(id: SceneId) -> ShaderKind {
    match id {
        SceneId::Qclu => ShaderKind::Radius,
        SceneId::Qamr => ShaderKind::Contain,
        _ => ShaderKind::Knn,
    }
}

/// Runs the query matrix: every query scene under both policies and
/// {off, morton} reordering, each cell's answers asserted bitwise equal
/// to the brute-force oracle before its timing is kept.
fn query_section(smoke: bool, workers: usize) -> Vec<QueryRow> {
    let (detail, count) = if smoke {
        (8, 256)
    } else {
        (QUERY_DETAIL, QUERY_COUNT)
    };
    let cfg = GpuConfig::rtx2060();
    let ids = cooprt_scenes::QUERY_SCENES;
    let scenes: Vec<Scene> = parallel::par_map(&ids, workers, |_, &id| id.build(detail));

    let combos: Vec<(usize, TraversalPolicy, ReorderPolicy)> = (0..scenes.len())
        .flat_map(|i| {
            [TraversalPolicy::Baseline, TraversalPolicy::CoopRt]
                .into_iter()
                .flat_map(move |p| {
                    [ReorderPolicy::Off, ReorderPolicy::Morton]
                        .into_iter()
                        .map(move |r| (i, p, r))
                })
        })
        .collect();

    // Sequential, timed per cell (cells are sub-second; the pooled
    // determinism contract is already exercised by the main matrix).
    let mut rows = Vec::with_capacity(combos.len());
    let mut cells = Vec::with_capacity(combos.len());
    for &(i, policy, reorder) in &combos {
        let kind = query_kind(ids[i]);
        let run_cfg = cfg.clone().with_reorder(reorder);
        let t = Instant::now();
        let run = cooprt_query::run_queries(&scenes[i], &run_cfg, policy, kind, count, QUERY_SALT)
            .unwrap_or_else(|e| panic!("query {} {policy:?}/{reorder:?}: {e}", ids[i]));
        let wall_secs = t.elapsed().as_secs_f64();

        // The exactness contract, enforced on every benchmark run: the
        // timing model may only be *timed*, never approximate.
        let want = cooprt_query::oracle_answers(&scenes[i], kind, count, QUERY_SALT);
        assert_eq!(
            run.answers, want,
            "{} {kind:?} {policy:?}/{reorder:?}: engine answers must \
             match the brute-force oracle bitwise",
            ids[i]
        );
        cells.push((run, wall_secs));
    }

    let cycles_of = |want_i: usize, want_p: TraversalPolicy, want_r: ReorderPolicy| -> u64 {
        combos
            .iter()
            .zip(&cells)
            .find(|(&(i, p, r), _)| i == want_i && p == want_p && r == want_r)
            .map(|(_, (run, _))| run.cycles)
            .expect("every (scene, policy, reorder) cell ran")
    };
    for (&(i, policy, reorder), (run, wall_secs)) in combos.iter().zip(&cells) {
        rows.push(QueryRow {
            scene: ids[i].name(),
            kind: query_kind(ids[i]).key(),
            policy: policy.label(),
            reorder: reorder.label(),
            cycles: run.cycles,
            rays: run.rays,
            hits: run.answers.iter().map(|a| a.len() as u64).sum(),
            speedup_vs_baseline: cycles_of(i, TraversalPolicy::Baseline, reorder) as f64
                / run.cycles.max(1) as f64,
            speedup_vs_off: cycles_of(i, policy, ReorderPolicy::Off) as f64
                / run.cycles.max(1) as f64,
            wall_secs: *wall_secs,
        });
    }
    rows
}

struct LadderStep {
    threads: usize,
    secs: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (ids, res, detail) = if smoke {
        // Two light scenes at low resolution: enough to drive the whole
        // harness (both policies, the pooled pass, the determinism
        // asserts) through CI in seconds.
        (vec![SceneId::Wknd, SceneId::Ship], 48usize, 8u32)
    } else {
        banner("simperf: simulator wall-clock throughput");
        let ids = scene_list();
        assert!(
            ids.len() >= 4,
            "simperf needs at least 4 scenes (got {})",
            ids.len()
        );
        (ids, default_res(), default_detail())
    };
    if smoke {
        println!(
            "=== simperf --smoke ({} scenes, {res}x{res}, detail {detail}) ===",
            ids.len()
        );
    }
    let cfg = GpuConfig::rtx2060();
    let kind = ShaderKind::PathTrace;
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = parallel::threads();

    let mut profiler = Profiler::new();
    let scenes: Vec<Scene> = profiler.time("suite_build", || {
        parallel::par_map(&ids, workers, |_, &id| id.build(detail))
    });
    let build_secs = profiler.secs("suite_build").unwrap_or(0.0);
    println!("built {} scenes in {build_secs:.2}s", scenes.len());

    let jobs: Vec<(usize, TraversalPolicy)> = (0..scenes.len())
        .flat_map(|i| [(i, TraversalPolicy::Baseline), (i, TraversalPolicy::CoopRt)])
        .collect();

    // Pass 1: sequential, timing each cell for its throughput row. This
    // is also the one-worker rung of the scaling ladder.
    let mut rows: Vec<Row> = Vec::with_capacity(jobs.len());
    let mut seq_results: Vec<FrameResult> = Vec::with_capacity(jobs.len());
    profiler.time("sequential_pass", || {
        for &(i, policy) in &jobs {
            let t = Instant::now();
            let r = run_at(&scenes[i], &cfg, policy, kind, res);
            let wall_secs = t.elapsed().as_secs_f64();
            rows.push(Row {
                scene: ids[i].name(),
                policy: policy.label(),
                cycles: r.cycles,
                rays: r.rays,
                wall_secs,
            });
            seq_results.push(r);
        }
    });
    let seq_secs = profiler.secs("sequential_pass").unwrap_or(0.0);

    // Scaling ladder: the same matrix through the worker pool at each
    // power of two up to the default worker count. At least one pooled
    // rung always runs (worker count 2 even on a single-core host) so
    // the pool's determinism is exercised on every invocation.
    let mut counts = vec![1usize];
    let mut c = 2;
    while c < workers {
        counts.push(c);
        c *= 2;
    }
    if workers > 1 {
        counts.push(workers);
    } else {
        counts.push(2);
    }
    let mut ladder = vec![LadderStep {
        threads: 1,
        secs: seq_secs,
        speedup: 1.0,
    }];
    for &t in &counts[1..] {
        let start = Instant::now();
        let pooled = parallel::par_map(&jobs, t, |_, &(i, policy)| {
            run_at(&scenes[i], &cfg, policy, kind, res)
        });
        let secs = start.elapsed().as_secs_f64();
        profiler.record(&format!("pooled_pass_{t}_threads"), secs);
        for (s, p) in seq_results.iter().zip(&pooled) {
            assert_eq!(s.image, p.image, "pooled runner must be bitwise identical");
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.events, p.events);
        }
        ladder.push(LadderStep {
            threads: t,
            secs,
            speedup: seq_secs / secs.max(1e-12),
        });
    }
    // The headline numbers are the rung at the default worker count —
    // on a single-core host that is the sequential pass itself, and the
    // speedup is 1 by construction, not by measurement theatre.
    let headline = ladder
        .iter()
        .find(|s| s.threads == workers)
        .expect("ladder contains the default worker count");
    let (par_secs, matrix_speedup) = (headline.secs, headline.speedup);

    println!();
    println!(
        "{:<8} {:>9} {:>14} {:>12} {:>10} {:>14} {:>14}",
        "scene", "policy", "cycles", "rays", "wall s", "cycles/s", "rays/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:>9} {:>14} {:>12} {:>10.3} {:>14.0} {:>14.0}",
            r.scene,
            r.policy,
            r.cycles,
            r.rays,
            r.wall_secs,
            r.cycles as f64 / r.wall_secs.max(1e-12),
            r.rays as f64 / r.wall_secs.max(1e-12),
        );
    }
    println!();
    println!("matrix scaling (host parallelism {host}, default {workers} workers):");
    for s in &ladder {
        println!(
            "  {:>3} thread{} {:>8.2}s  {:>5.2}x{}",
            s.threads,
            if s.threads == 1 { " " } else { "s" },
            s.secs,
            s.speedup,
            if s.threads > host {
                "  (oversubscribed)"
            } else {
                ""
            },
        );
    }
    println!("(all pooled passes bitwise identical to the sequential pass)");

    // Trace record/replay amortization: one recorded front end drives
    // the whole memory sweep, each point asserted bitwise identical to
    // live re-simulation.
    let tr = trace_replay_section(ids[0], &scenes[0], &cfg, kind, res, detail, workers);
    println!();
    println!(
        "trace record/replay ('{}', {}-config memory sweep, {} ray records, {} KiB):",
        tr.scene,
        tr.sweep_labels.len(),
        tr.records,
        tr.trace_bytes / 1024
    );
    println!(
        "  record overhead {:+.1}% of a live frame ({:.3}s vs {:.3}s); encode {:.4}s, decode {:.4}s",
        tr.record_overhead_pct, tr.record_run_secs, tr.live_ref_secs, tr.encode_secs, tr.decode_secs
    );
    println!(
        "  live sweep {:.3}s vs record-once+replay {:.3}s -> {:.2}x \
         (every point bitwise identical to live)",
        tr.live_sweep_secs, tr.replay_sweep_secs, tr.replay_speedup
    );

    // Reorder axis: record once per scene, replay all six
    // policy x reorder cells, assert bitwise image identity.
    let reorder_rows = reorder_section(&ids, &scenes, &cfg, kind, res, detail, workers);
    println!();
    println!(
        "ray reordering ({} scenes x 2 policies x {} reorder modes, replayed from one \
         unordered trace per scene; all images bitwise identical to the recorded frame):",
        ids.len(),
        ReorderPolicy::ALL.len()
    );
    println!(
        "{:<8} {:>9} {:>12} {:>12} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "scene", "policy", "reorder", "cycles", "vs off", "simt%", "l1 hit%", "l2 hit%", "moved"
    );
    for r in &reorder_rows {
        println!(
            "{:<8} {:>9} {:>12} {:>12} {:>8.3}x {:>7.1}% {:>7.1}% {:>7.1}% {:>10}",
            r.scene,
            r.policy,
            r.reorder,
            r.cycles,
            r.speedup_vs_off,
            r.simt_efficiency * 100.0,
            r.l1_hit * 100.0,
            r.l2_hit * 100.0,
            r.rays_moved,
        );
    }

    // Predict axis: one shadow recording per scene drives all four
    // policy x predict cells, with per-cell bitwise image identity.
    let predict_rows = predict_section(&ids, &scenes, &cfg, res, detail, workers);
    println!();
    println!(
        "ray-path prediction ({} scenes x 2 policies x {} predict modes, shadow rays \
         replayed from one trace per scene; all images bitwise identical to the recorded frame):",
        ids.len(),
        PredictPolicy::ALL.len()
    );
    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "scene", "policy", "predict", "cycles", "vs off", "lookups", "hit%", "go-up", "saved"
    );
    for r in &predict_rows {
        println!(
            "{:<8} {:>9} {:>10} {:>12} {:>8.3}x {:>9} {:>8.1}% {:>8} {:>10}",
            r.scene,
            r.policy,
            r.predict,
            r.cycles,
            r.speedup_vs_off,
            r.path_lookups,
            r.predicted_hit_rate * 100.0,
            r.go_up_steps,
            r.node_fetches_saved,
        );
    }

    // Query axis: the four spatial-query scenes through the gather
    // front end, every cell's answers asserted exact against the
    // brute-force oracle before its timing is reported.
    let query_rows = query_section(smoke, workers);
    println!();
    println!(
        "spatial queries ({} scenes x 2 policies x 2 reorder modes, every cell's \
         answers asserted exact against the brute-force oracle):",
        cooprt_scenes::QUERY_SCENES.len()
    );
    println!(
        "{:<8} {:>5} {:>9} {:>8} {:>12} {:>8} {:>9} {:>8} {:>8} {:>10}",
        "scene",
        "kind",
        "policy",
        "reorder",
        "cycles",
        "rays",
        "hits",
        "vs base",
        "vs off",
        "rays/s"
    );
    for r in &query_rows {
        println!(
            "{:<8} {:>5} {:>9} {:>8} {:>12} {:>8} {:>9} {:>7.3}x {:>7.3}x {:>10.0}",
            r.scene,
            r.kind,
            r.policy,
            r.reorder,
            r.cycles,
            r.rays,
            r.hits,
            r.speedup_vs_baseline,
            r.speedup_vs_off,
            r.rays as f64 / r.wall_secs.max(1e-12),
        );
    }

    if smoke {
        println!();
        println!("simperf --smoke OK");
        return;
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("resolution", res as u64);
    w.field_u64("detail", u64::from(detail));
    w.field_u64("threads", workers as u64);
    w.field_u64("host_parallelism", host as u64);
    w.field_f64("suite_build_secs", build_secs, 6);
    w.field_f64("sequential_secs", seq_secs, 6);
    w.field_f64("parallel_secs", par_secs, 6);
    w.field_f64("matrix_speedup", matrix_speedup, 4);
    w.begin_array("thread_ladder");
    for s in &ladder {
        w.begin_inline_object();
        w.field_u64("threads", s.threads as u64);
        w.field_f64("secs", s.secs, 6);
        w.field_f64("speedup", s.speedup, 4);
        w.end_object();
    }
    w.end_array();
    w.begin_array("scenes");
    for r in &rows {
        w.begin_inline_object();
        w.field_str("scene", r.scene);
        w.field_str("policy", r.policy);
        w.field_u64("cycles", r.cycles);
        w.field_u64("rays", r.rays);
        w.field_f64("wall_secs", r.wall_secs, 6);
        w.field_f64(
            "cycles_per_sec",
            r.cycles as f64 / r.wall_secs.max(1e-12),
            1,
        );
        w.field_f64("rays_per_sec", r.rays as f64 / r.wall_secs.max(1e-12), 1);
        w.end_object();
    }
    w.end_array();
    w.begin_array("reorder");
    for r in &reorder_rows {
        w.begin_inline_object();
        w.field_str("scene", r.scene);
        w.field_str("policy", r.policy);
        w.field_str("reorder", r.reorder);
        w.field_u64("cycles", r.cycles);
        w.field_f64("speedup_vs_off", r.speedup_vs_off, 4);
        w.field_f64("simt_efficiency", r.simt_efficiency, 6);
        w.field_f64("l1_hit_rate", r.l1_hit, 6);
        w.field_f64("l2_hit_rate", r.l2_hit, 6);
        w.field_u64("rays_moved", r.rays_moved);
        w.field_u64("reorder_passes", r.reorder_passes);
        w.end_object();
    }
    w.end_array();
    w.begin_array("predict");
    for r in &predict_rows {
        w.begin_inline_object();
        w.field_str("scene", r.scene);
        w.field_str("policy", r.policy);
        w.field_str("predict", r.predict);
        w.field_u64("cycles", r.cycles);
        w.field_f64("speedup_vs_off", r.speedup_vs_off, 4);
        w.field_f64("predicted_hit_rate", r.predicted_hit_rate, 6);
        w.field_u64("path_lookups", r.path_lookups);
        w.field_u64("go_up_steps", r.go_up_steps);
        w.field_u64("node_fetches_saved", r.node_fetches_saved);
        w.end_object();
    }
    w.end_array();
    w.begin_array("query");
    for r in &query_rows {
        w.begin_inline_object();
        w.field_str("scene", r.scene);
        w.field_str("kind", r.kind);
        w.field_str("policy", r.policy);
        w.field_str("reorder", r.reorder);
        w.field_u64("cycles", r.cycles);
        w.field_u64("rays", r.rays);
        w.field_u64("hits", r.hits);
        w.field_f64("speedup_vs_baseline", r.speedup_vs_baseline, 4);
        w.field_f64("speedup_vs_off", r.speedup_vs_off, 4);
        w.field_f64("wall_secs", r.wall_secs, 6);
        w.field_f64("rays_per_sec", r.rays as f64 / r.wall_secs.max(1e-12), 1);
        w.end_object();
    }
    w.end_array();
    w.begin_object_field("trace_replay");
    w.field_str("scene", tr.scene);
    w.field_u64("sweep_configs", tr.sweep_labels.len() as u64);
    w.begin_inline_array("sweep");
    for label in &tr.sweep_labels {
        w.item_str(label);
    }
    w.end_array();
    w.field_u64("ray_records", tr.records);
    w.field_u64("trace_bytes", tr.trace_bytes as u64);
    w.field_f64("build_secs", tr.build_secs, 6);
    w.field_f64("live_frame_secs", tr.live_ref_secs, 6);
    w.field_f64("record_run_secs", tr.record_run_secs, 6);
    w.field_f64("record_overhead_pct", tr.record_overhead_pct, 2);
    w.field_f64("encode_secs", tr.encode_secs, 6);
    w.field_f64("decode_secs", tr.decode_secs, 6);
    w.field_f64("live_sweep_secs", tr.live_sweep_secs, 6);
    w.field_f64("replay_sweep_secs", tr.replay_sweep_secs, 6);
    w.field_f64("replay_speedup", tr.replay_speedup, 4);
    w.end_object();
    w.end_object();
    let json = w.finish();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simperf.json");
    std::fs::write(path, &json).expect("write BENCH_simperf.json");
    println!("wrote {path}");
}
