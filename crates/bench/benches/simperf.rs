//! simperf: wall-clock throughput of the simulator itself.
//!
//! Unlike the figure targets (which report *simulated* metrics), this
//! target measures how fast the simulator runs on the host: simulated
//! cycles per wall-clock second and rays per wall-clock second for each
//! scene x policy cell, plus an honest parallel-scaling ladder. The
//! matrix is first run sequentially (timing each cell), then re-run at
//! each power-of-two worker count up to the host parallelism; every
//! pooled pass is asserted bitwise identical to the sequential one
//! (the determinism contract of `cooprt_core::parallel`), and the
//! per-worker-count wall clocks and speedups are all recorded — on a
//! single-core host the ladder simply shows that there is no
//! parallelism to be had, instead of dressing a one-worker pass up as
//! a "parallel" measurement. Results are printed and written to
//! `BENCH_simperf.json` at the repository root.
//!
//! `--smoke` runs a two-scene, low-resolution edition — same passes,
//! same determinism asserts, no JSON — so CI can exercise this harness
//! in seconds (see `ci.sh`).
//!
//! The JSON document goes through the shared
//! [`cooprt_telemetry::JsonWriter`] (byte-compatible with the layout
//! this bench has always produced), and the bench phases are timed with
//! a [`cooprt_telemetry::Profiler`] so the wall clocks in the report
//! come from the same spans that are printed.

use cooprt_bench::{banner, default_detail, default_res, parallel, run_at, scene_list};
use cooprt_core::{FrameResult, GpuConfig, ShaderKind, TraversalPolicy};
use cooprt_scenes::{Scene, SceneId};
use cooprt_telemetry::{JsonWriter, Profiler};
use std::time::Instant;

struct Row {
    scene: &'static str,
    policy: &'static str,
    cycles: u64,
    rays: u64,
    wall_secs: f64,
}

struct LadderStep {
    threads: usize,
    secs: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (ids, res, detail) = if smoke {
        // Two light scenes at low resolution: enough to drive the whole
        // harness (both policies, the pooled pass, the determinism
        // asserts) through CI in seconds.
        (vec![SceneId::Wknd, SceneId::Ship], 48usize, 8u32)
    } else {
        banner("simperf: simulator wall-clock throughput");
        let ids = scene_list();
        assert!(
            ids.len() >= 4,
            "simperf needs at least 4 scenes (got {})",
            ids.len()
        );
        (ids, default_res(), default_detail())
    };
    if smoke {
        println!(
            "=== simperf --smoke ({} scenes, {res}x{res}, detail {detail}) ===",
            ids.len()
        );
    }
    let cfg = GpuConfig::rtx2060();
    let kind = ShaderKind::PathTrace;
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = parallel::threads();

    let mut profiler = Profiler::new();
    let scenes: Vec<Scene> = profiler.time("suite_build", || {
        parallel::par_map(&ids, workers, |_, &id| id.build(detail))
    });
    let build_secs = profiler.secs("suite_build").unwrap_or(0.0);
    println!("built {} scenes in {build_secs:.2}s", scenes.len());

    let jobs: Vec<(usize, TraversalPolicy)> = (0..scenes.len())
        .flat_map(|i| [(i, TraversalPolicy::Baseline), (i, TraversalPolicy::CoopRt)])
        .collect();

    // Pass 1: sequential, timing each cell for its throughput row. This
    // is also the one-worker rung of the scaling ladder.
    let mut rows: Vec<Row> = Vec::with_capacity(jobs.len());
    let mut seq_results: Vec<FrameResult> = Vec::with_capacity(jobs.len());
    profiler.time("sequential_pass", || {
        for &(i, policy) in &jobs {
            let t = Instant::now();
            let r = run_at(&scenes[i], &cfg, policy, kind, res);
            let wall_secs = t.elapsed().as_secs_f64();
            rows.push(Row {
                scene: ids[i].name(),
                policy: policy.label(),
                cycles: r.cycles,
                rays: r.rays,
                wall_secs,
            });
            seq_results.push(r);
        }
    });
    let seq_secs = profiler.secs("sequential_pass").unwrap_or(0.0);

    // Scaling ladder: the same matrix through the worker pool at each
    // power of two up to the default worker count. At least one pooled
    // rung always runs (worker count 2 even on a single-core host) so
    // the pool's determinism is exercised on every invocation.
    let mut counts = vec![1usize];
    let mut c = 2;
    while c < workers {
        counts.push(c);
        c *= 2;
    }
    if workers > 1 {
        counts.push(workers);
    } else {
        counts.push(2);
    }
    let mut ladder = vec![LadderStep {
        threads: 1,
        secs: seq_secs,
        speedup: 1.0,
    }];
    for &t in &counts[1..] {
        let start = Instant::now();
        let pooled = parallel::par_map(&jobs, t, |_, &(i, policy)| {
            run_at(&scenes[i], &cfg, policy, kind, res)
        });
        let secs = start.elapsed().as_secs_f64();
        profiler.record(&format!("pooled_pass_{t}_threads"), secs);
        for (s, p) in seq_results.iter().zip(&pooled) {
            assert_eq!(s.image, p.image, "pooled runner must be bitwise identical");
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.events, p.events);
        }
        ladder.push(LadderStep {
            threads: t,
            secs,
            speedup: seq_secs / secs.max(1e-12),
        });
    }
    // The headline numbers are the rung at the default worker count —
    // on a single-core host that is the sequential pass itself, and the
    // speedup is 1 by construction, not by measurement theatre.
    let headline = ladder
        .iter()
        .find(|s| s.threads == workers)
        .expect("ladder contains the default worker count");
    let (par_secs, matrix_speedup) = (headline.secs, headline.speedup);

    println!();
    println!(
        "{:<8} {:>9} {:>14} {:>12} {:>10} {:>14} {:>14}",
        "scene", "policy", "cycles", "rays", "wall s", "cycles/s", "rays/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:>9} {:>14} {:>12} {:>10.3} {:>14.0} {:>14.0}",
            r.scene,
            r.policy,
            r.cycles,
            r.rays,
            r.wall_secs,
            r.cycles as f64 / r.wall_secs.max(1e-12),
            r.rays as f64 / r.wall_secs.max(1e-12),
        );
    }
    println!();
    println!("matrix scaling (host parallelism {host}, default {workers} workers):");
    for s in &ladder {
        println!(
            "  {:>3} thread{} {:>8.2}s  {:>5.2}x{}",
            s.threads,
            if s.threads == 1 { " " } else { "s" },
            s.secs,
            s.speedup,
            if s.threads > host {
                "  (oversubscribed)"
            } else {
                ""
            },
        );
    }
    println!("(all pooled passes bitwise identical to the sequential pass)");

    if smoke {
        println!();
        println!("simperf --smoke OK");
        return;
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("resolution", res as u64);
    w.field_u64("detail", u64::from(detail));
    w.field_u64("threads", workers as u64);
    w.field_u64("host_parallelism", host as u64);
    w.field_f64("suite_build_secs", build_secs, 6);
    w.field_f64("sequential_secs", seq_secs, 6);
    w.field_f64("parallel_secs", par_secs, 6);
    w.field_f64("matrix_speedup", matrix_speedup, 4);
    w.begin_array("thread_ladder");
    for s in &ladder {
        w.begin_inline_object();
        w.field_u64("threads", s.threads as u64);
        w.field_f64("secs", s.secs, 6);
        w.field_f64("speedup", s.speedup, 4);
        w.end_object();
    }
    w.end_array();
    w.begin_array("scenes");
    for r in &rows {
        w.begin_inline_object();
        w.field_str("scene", r.scene);
        w.field_str("policy", r.policy);
        w.field_u64("cycles", r.cycles);
        w.field_u64("rays", r.rays);
        w.field_f64("wall_secs", r.wall_secs, 6);
        w.field_f64(
            "cycles_per_sec",
            r.cycles as f64 / r.wall_secs.max(1e-12),
            1,
        );
        w.field_f64("rays_per_sec", r.rays as f64 / r.wall_secs.max(1e-12), 1);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let json = w.finish();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simperf.json");
    std::fs::write(path, &json).expect("write BENCH_simperf.json");
    println!("wrote {path}");
}
