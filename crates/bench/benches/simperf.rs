//! simperf: wall-clock throughput of the simulator itself.
//!
//! Unlike the figure targets (which report *simulated* metrics), this
//! target measures how fast the simulator runs on the host: simulated
//! cycles per wall-clock second and rays per wall-clock second for each
//! scene x policy cell, plus the wall-clock speedup of the parallel
//! matrix runner over the sequential loop. Results are printed and
//! written to `BENCH_simperf.json` at the repository root.
//!
//! The same matrix is executed twice — sequentially, then concurrently
//! on `COOPRT_THREADS` workers — and the two passes are asserted
//! bitwise identical (images and cycle counts), exercising the
//! determinism contract of `cooprt_core::parallel`.

use cooprt_bench::{
    banner, build_scenes, default_detail, default_res, parallel, run_at, scene_list,
};
use cooprt_core::{FrameResult, GpuConfig, ShaderKind, TraversalPolicy};
use std::time::Instant;

struct Row {
    scene: &'static str,
    policy: &'static str,
    cycles: u64,
    rays: u64,
    wall_secs: f64,
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
    s
}

fn main() {
    banner("simperf: simulator wall-clock throughput");
    let ids = scene_list();
    assert!(
        ids.len() >= 4,
        "simperf needs at least 4 scenes (got {})",
        ids.len()
    );
    let cfg = GpuConfig::rtx2060();
    let res = default_res();
    let kind = ShaderKind::PathTrace;

    let t0 = Instant::now();
    let scenes = build_scenes(&ids);
    let build_secs = t0.elapsed().as_secs_f64();
    println!("built {} scenes in {build_secs:.2}s", scenes.len());

    let jobs: Vec<(usize, TraversalPolicy)> = (0..scenes.len())
        .flat_map(|i| [(i, TraversalPolicy::Baseline), (i, TraversalPolicy::CoopRt)])
        .collect();

    // Pass 1: sequential, timing each cell for its throughput row.
    let seq_start = Instant::now();
    let mut rows: Vec<Row> = Vec::with_capacity(jobs.len());
    let mut seq_results: Vec<FrameResult> = Vec::with_capacity(jobs.len());
    for &(i, policy) in &jobs {
        let t = Instant::now();
        let r = run_at(&scenes[i], &cfg, policy, kind, res);
        let wall_secs = t.elapsed().as_secs_f64();
        rows.push(Row {
            scene: ids[i].name(),
            policy: policy.label(),
            cycles: r.cycles,
            rays: r.rays,
            wall_secs,
        });
        seq_results.push(r);
    }
    let seq_secs = seq_start.elapsed().as_secs_f64();

    // Pass 2: the same matrix through the parallel runner.
    let workers = parallel::threads();
    let par_start = Instant::now();
    let par_results = parallel::par_map(&jobs, workers, |_, &(i, policy)| {
        run_at(&scenes[i], &cfg, policy, kind, res)
    });
    let par_secs = par_start.elapsed().as_secs_f64();

    for (s, p) in seq_results.iter().zip(&par_results) {
        assert_eq!(
            s.image, p.image,
            "parallel runner must be bitwise identical"
        );
        assert_eq!(s.cycles, p.cycles);
        assert_eq!(s.events, p.events);
    }
    let matrix_speedup = seq_secs / par_secs.max(1e-12);

    println!();
    println!(
        "{:<8} {:>9} {:>14} {:>12} {:>10} {:>14} {:>14}",
        "scene", "policy", "cycles", "rays", "wall s", "cycles/s", "rays/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:>9} {:>14} {:>12} {:>10.3} {:>14.0} {:>14.0}",
            r.scene,
            r.policy,
            r.cycles,
            r.rays,
            r.wall_secs,
            r.cycles as f64 / r.wall_secs.max(1e-12),
            r.rays as f64 / r.wall_secs.max(1e-12),
        );
    }
    println!();
    println!(
        "matrix wall-clock: sequential {seq_secs:.2}s, parallel {par_secs:.2}s \
         on {workers} workers -> {matrix_speedup:.2}x (bitwise identical results)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"resolution\": {res},\n"));
    json.push_str(&format!("  \"detail\": {},\n", default_detail()));
    json.push_str(&format!("  \"threads\": {workers},\n"));
    json.push_str(&format!("  \"suite_build_secs\": {build_secs:.6},\n"));
    json.push_str(&format!("  \"sequential_secs\": {seq_secs:.6},\n"));
    json.push_str(&format!("  \"parallel_secs\": {par_secs:.6},\n"));
    json.push_str(&format!("  \"matrix_speedup\": {matrix_speedup:.4},\n"));
    json.push_str("  \"scenes\": [\n");
    for (k, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scene\": \"{}\", \"policy\": \"{}\", \"cycles\": {}, \"rays\": {}, \
             \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.1}, \"rays_per_sec\": {:.1}}}{}\n",
            json_escape_free(r.scene),
            json_escape_free(r.policy),
            r.cycles,
            r.rays,
            r.wall_secs,
            r.cycles as f64 / r.wall_secs.max(1e-12),
            r.rays as f64 / r.wall_secs.max(1e-12),
            if k + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simperf.json");
    std::fs::write(path, &json).expect("write BENCH_simperf.json");
    println!("wrote {path}");
}
