//! benchdiff: compare the checked-in BENCH reports against the pinned
//! perf baseline.
//!
//! ```sh
//! # Compare (exit 1 on regression/missing metric):
//! cargo bench -p cooprt-bench --bench benchdiff -- \
//!     --baseline ci/bench_baseline.json
//!
//! # Re-pin the baseline from the current reports:
//! cargo bench -p cooprt-bench --bench benchdiff -- --write-baseline
//! ```
//!
//! The metric list, tolerances, and comparison semantics live in
//! [`cooprt_bench::diff`]; this target is just the file I/O and exit
//! code. `ci.sh` runs the comparison as a *soft* gate (warn, don't
//! fail) because half the metrics are wall-clock and the baseline may
//! have been pinned on different hardware.

use cooprt_bench::diff::Baseline;
use cooprt_telemetry::parse_json;

/// Repository root (the bench binary's cwd is the package dir, so
/// default paths anchor on the manifest like the other bench targets).
const REPO_ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

struct Args {
    baseline: String,
    simperf: String,
    serve: String,
    write_baseline: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: format!("{REPO_ROOT}/ci/bench_baseline.json"),
        simperf: format!("{REPO_ROOT}/BENCH_simperf.json"),
        serve: format!("{REPO_ROOT}/BENCH_serve.json"),
        write_baseline: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--baseline" => args.baseline = value(&mut i),
            "--simperf" => args.simperf = value(&mut i),
            "--serve" => args.serve = value(&mut i),
            "--write-baseline" => args.write_baseline = true,
            // Ignore the libtest flag cargo bench passes by default.
            "--bench" => {}
            "--help" | "-h" => {
                eprintln!(
                    "usage: benchdiff [--baseline FILE] [--simperf FILE] [--serve FILE] [--write-baseline]\n\
                     \n\
                     --baseline FILE   pinned baseline         [default: ci/bench_baseline.json]\n\
                     --simperf FILE    current simperf report  [default: BENCH_simperf.json]\n\
                     --serve FILE      current serve report    [default: BENCH_serve.json]\n\
                     --write-baseline  re-pin the baseline from the current reports"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn load(path: &str) -> cooprt_telemetry::JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_json(&text).unwrap_or_else(|e| {
        eprintln!("benchdiff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = parse_args();
    let simperf = load(&args.simperf);
    let serve = load(&args.serve);

    if args.write_baseline {
        let baseline = Baseline::capture(&simperf, &serve);
        std::fs::write(&args.baseline, baseline.to_json()).unwrap_or_else(|e| {
            eprintln!("benchdiff: cannot write {}: {e}", args.baseline);
            std::process::exit(2);
        });
        println!(
            "benchdiff: pinned {} metrics to {}",
            baseline.metrics.len(),
            args.baseline
        );
        return;
    }

    let baseline_text = std::fs::read_to_string(&args.baseline).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read baseline {}: {e}", args.baseline);
        std::process::exit(2);
    });
    let baseline = Baseline::from_json(&baseline_text).unwrap_or_else(|e| {
        eprintln!("benchdiff: {e}");
        std::process::exit(2);
    });
    let report = baseline.compare(&simperf, &serve);
    print!("{}", report.render());
    if report.passed() {
        println!("benchdiff: all {} metrics within bounds", report.rows.len());
    } else {
        println!("benchdiff: regressions detected (see rows above)");
        std::process::exit(1);
    }
}
