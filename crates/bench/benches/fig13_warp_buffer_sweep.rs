//! Fig. 13: speedups across RT warp-buffer sizes, with and without
//! CoopRT.
//!
//! The paper sweeps warp-buffer sizes {8, 16, 32} without CoopRT and
//! {4, 8, 16, 32} with CoopRT, all normalized to the 4-entry baseline.
//! Expected shape: bigger buffers help the baseline with diminishing
//! returns past 8-16; CoopRT@4 beats the 32-entry baseline; CoopRT
//! curves are flat (it already saturates the memory system).

use cooprt_bench::{
    banner, build_scene, gmean, print_header, print_row, run_at, scene_list, sweep_res,
};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Fig. 13: warp-buffer size sweep (path tracing, normalized to 4 w/o coop)");
    let res = sweep_res();
    println!("(sweep resolution {res}x{res} for warp-buffer pressure)");
    let configs: Vec<(String, usize, TraversalPolicy)> = [8usize, 16, 32]
        .iter()
        .map(|&n| (format!("{n}w/o"), n, TraversalPolicy::Baseline))
        .chain(
            [4usize, 8, 16, 32]
                .iter()
                .map(|&n| (format!("{n}w/"), n, TraversalPolicy::CoopRt)),
        )
        .collect();
    let labels: Vec<&str> = configs.iter().map(|c| c.0.as_str()).collect();
    print_header("scene", &labels);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for id in scene_list() {
        let scene = build_scene(id);
        let base = run_at(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            res,
        );
        let mut row = Vec::new();
        for (i, (_, entries, policy)) in configs.iter().enumerate() {
            let cfg = GpuConfig::rtx2060().with_warp_buffer(*entries);
            let r = run_at(&scene, &cfg, *policy, ShaderKind::PathTrace, res);
            let speedup = base.cycles as f64 / r.cycles.max(1) as f64;
            row.push(speedup);
            columns[i].push(speedup);
        }
        print_row(id.name(), &row);
    }
    println!("{}", "-".repeat(8 + 10 * configs.len()));
    let gmeans: Vec<f64> = columns.iter().map(|c| gmean(c)).collect();
    print_row("gmean", &gmeans);
    println!();
    println!(
        "paper gmeans: 1.45/1.64/1.64 (8/16/32 w/o coop), 2.15/2.13/2.06/1.99 (4/8/16/32 w/ coop)"
    );
    println!(
        "shape check: coop@4 ({:.2}x) should beat baseline@32 ({:.2}x)",
        gmeans[3], gmeans[2]
    );
}
