//! Fig. 2: percent of busy threads in the RT unit over time.
//!
//! The paper's Fig. 2 shows SIMT efficiency starting at 100% on primary
//! rays and collapsing within a few bounces (spnza and bath shown).
//! This target prints the sampled busy-thread fraction over time for
//! the same two scenes on the baseline RT unit.

use cooprt_bench::{banner, build_scene, run};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};
use cooprt_scenes::SceneId;

fn main() {
    banner("Fig. 2: busy-thread fraction over time (baseline, path tracing)");
    let cfg = GpuConfig::rtx2060();
    for id in [SceneId::Spnza, SceneId::Bath] {
        let scene = build_scene(id);
        let r = run(
            &scene,
            &cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        println!();
        println!(
            "{}: {} samples over {} cycles",
            id.name(),
            r.activity.samples.len(),
            r.cycles
        );
        println!("{:>10} {:>10} {:>8}", "cycle", "busy%", "bar");
        // Downsample to at most 40 printed rows.
        let step = (r.activity.samples.len() / 40).max(1);
        for s in r.activity.samples.iter().step_by(step) {
            let present = s.present();
            let frac = if present == 0 {
                0.0
            } else {
                s.busy as f64 / present as f64
            };
            let bar = "#".repeat((frac * 40.0).round() as usize);
            println!("{:>10} {:>9.1}% {}", s.cycle, frac * 100.0, bar);
        }
        let first = r.activity.samples.first().map_or(0.0, |s| {
            if s.present() == 0 {
                0.0
            } else {
                s.busy as f64 / s.present() as f64
            }
        });
        println!(
            "start-of-frame busy fraction: {:.2} (paper: ~1.0, then a steep drop)",
            first
        );
    }
}
