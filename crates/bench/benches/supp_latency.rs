//! Supplementary analysis: the trace_ray latency distribution.
//!
//! Figs. 11 and 14 of the paper are consequences of one fact: CoopRT
//! compresses the latency *tail* of trace_ray instructions, which large
//! warp buffers (more throughput, same per-instruction latency) cannot.
//! This target prints p50/p90/p99/max per scene for both policies.

use cooprt_bench::{banner, build_scene, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Supplementary: trace_ray latency distribution (cycles)");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["b p50", "b p99", "c p50", "c p99", "p99 x"]);
    for id in scene_list() {
        let scene = build_scene(id);
        let mut base = run(
            &scene,
            &cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let mut coop = run(&scene, &cfg, TraversalPolicy::CoopRt, ShaderKind::PathTrace);
        let row = [
            base.trace_latencies.quantile(0.5) as f64,
            base.trace_latencies.quantile(0.99) as f64,
            coop.trace_latencies.quantile(0.5) as f64,
            coop.trace_latencies.quantile(0.99) as f64,
            base.trace_latencies.quantile(0.99) as f64
                / coop.trace_latencies.quantile(0.99).max(1) as f64,
        ];
        print_row(id.name(), &row);
    }
    println!();
    println!("'p99 x' = tail compression factor; the mechanism behind Figs. 11 and 14");
}
