//! Fig. 12: normalized L2↔interconnect and DRAM bandwidth.
//!
//! The paper's Fig. 12 shows CoopRT raising L2 bandwidth by up to 5.7x
//! and DRAM bandwidth by up to 5.5x, because many more threads fetch
//! nodes in parallel. This target prints CoopRT's bandwidth normalized
//! to baseline for both interfaces.

use cooprt_bench::{banner, gmean, print_header, print_row, run_comparisons};
use cooprt_core::{GpuConfig, ShaderKind};

fn main() {
    banner("Fig. 12: L2 and DRAM bandwidth, CoopRT normalized to baseline");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["L2", "DRAM"]);
    let (mut l2s, mut drams) = (Vec::new(), Vec::new());
    for c in run_comparisons(&cfg, ShaderKind::PathTrace) {
        let l2 = c.coop.mem.l2_bandwidth(c.coop.cycles)
            / c.base.mem.l2_bandwidth(c.base.cycles).max(1e-12);
        let dram = c.coop.mem.dram_bandwidth(c.coop.cycles)
            / c.base.mem.dram_bandwidth(c.base.cycles).max(1e-12);
        print_row(c.id.name(), &[l2, dram]);
        l2s.push(l2);
        drams.push(dram);
    }
    println!("{}", "-".repeat(28));
    print_row("gmean", &[gmean(&l2s), gmean(&drams)]);
    println!();
    println!(
        "max: L2 {:.2}x, DRAM {:.2}x (paper: up to 5.7x and 5.5x)",
        l2s.iter().cloned().fold(0.0, f64::max),
        drams.iter().cloned().fold(0.0, f64::max)
    );
}
