//! Fig. 10: average RT-unit thread utilization, baseline vs CoopRT.
//!
//! The paper's Fig. 10 shows that CoopRT raises utilization everywhere
//! and that speedups track the *improvement* in utilization, not the
//! absolute value. This target prints both utilizations, the delta, and
//! the speedup so the correlation is visible in one table.

use cooprt_bench::{banner, print_header, print_row, run_comparisons};
use cooprt_core::{GpuConfig, ShaderKind};

fn main() {
    banner("Fig. 10: average RT-unit thread utilization (path tracing)");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["baseline", "cooprt", "delta", "speedup"]);
    let mut rows = Vec::new();
    for c in run_comparisons(&cfg, ShaderKind::PathTrace) {
        let b = c.base.activity.avg_utilization();
        let k = c.coop.activity.avg_utilization();
        print_row(c.id.name(), &[b, k, k - b, c.speedup()]);
        rows.push((k - b, c.speedup()));
    }
    // Rank correlation between utilization delta and speedup.
    let n = rows.len() as f64;
    if n >= 2.0 {
        let mean_d = rows.iter().map(|r| r.0).sum::<f64>() / n;
        let mean_s = rows.iter().map(|r| r.1).sum::<f64>() / n;
        let cov: f64 = rows
            .iter()
            .map(|r| (r.0 - mean_d) * (r.1 - mean_s))
            .sum::<f64>()
            / n;
        let sd: f64 = (rows.iter().map(|r| (r.0 - mean_d).powi(2)).sum::<f64>() / n).sqrt();
        let ss: f64 = (rows.iter().map(|r| (r.1 - mean_s).powi(2)).sum::<f64>() / n).sqrt();
        println!();
        println!(
            "corr(utilization delta, speedup) = {:.2} (paper: speedups are proportional to the utilization improvement)",
            cov / (sd * ss).max(1e-12)
        );
    }
}
