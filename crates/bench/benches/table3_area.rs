//! Table 3 and §7.5: CoopRT area across subwarp configurations.
//!
//! The paper synthesizes the CoopRT blocks with FreePDK45: 16,122 cells
//! / 13,347 µm² at full-warp scope, shrinking by up to 9.7% at subwarp
//! size 4; the whole addition costs < 3.0% of the RT unit's warp-buffer
//! area. This target prints the analytic gate-model equivalents.

use cooprt_bench::banner;
use cooprt_core::area::{
    added_field_bits, cooprt_area, overhead_fraction, warp_buffer_bits, FLIP_FLOP_AREA_UM2,
};

fn main() {
    banner("Table 3: area vs subwarp size (analytic gate model)");
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>9}",
        "subwarp", "cells", "area(um2)", "pct vs 32", "FF equiv"
    );
    println!("{}", "-".repeat(54));
    let full = cooprt_area(32).area_um2();
    for sw in [32usize, 16, 8, 4] {
        let a = cooprt_area(sw);
        println!(
            "{:<8} {:>10} {:>12.0} {:>9.1}% {:>9.0}",
            sw,
            a.cells(),
            a.area_um2(),
            (full - a.area_um2()) / full * 100.0,
            a.flip_flop_equivalents()
        );
    }
    println!();
    println!("paper Table 3: 16122/15867/15511/15167 cells; 13347/13104/12661/12055 um2 (0/1.8/5.1/9.7%)");
    println!();
    println!("--- §7.5 warp-buffer overhead (4-entry warp buffer) ---");
    println!("warp buffer storage:   {} bits", warp_buffer_bits(4));
    println!("added fields (CoopRT): {} bits", added_field_bits(4));
    println!(
        "combinational logic:   {:.0} flip-flop equivalents ({} um2 per FF)",
        cooprt_area(32).flip_flop_equivalents(),
        FLIP_FLOP_AREA_UM2
    );
    println!(
        "total overhead:        {:.2}% of the warp buffer (paper: < 3.0%)",
        overhead_fraction(32, 4) * 100.0
    );
    println!(
        "for comparison, ONE extra warp-buffer entry costs {} bits (paper: 24,576)",
        warp_buffer_bits(1)
    );
}
