//! Fig. 19: CoopRT speedups for subwarp sizes 4, 8, 16 and 32.
//!
//! Restricting cooperation to subwarps saves area (Table 3) but limits
//! parallelism: the paper reports gmean speedups of 1.72x / 1.97x /
//! 2.09x / 2.15x for subwarp sizes 4 / 8 / 16 / 32, with the largest
//! drop between 8 and 4.

use cooprt_bench::{banner, build_scene, gmean, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Fig. 19: subwarp-size sweep (CoopRT over baseline)");
    let sizes = [4usize, 8, 16, 32];
    print_header("scene", &["sw4", "sw8", "sw16", "sw32"]);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for id in scene_list() {
        let scene = build_scene(id);
        let base = run(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let mut row = Vec::new();
        for (i, &sw) in sizes.iter().enumerate() {
            let cfg = GpuConfig::rtx2060().with_subwarp(sw);
            let r = run(&scene, &cfg, TraversalPolicy::CoopRt, ShaderKind::PathTrace);
            let s = base.cycles as f64 / r.cycles.max(1) as f64;
            row.push(s);
            columns[i].push(s);
        }
        print_row(id.name(), &row);
    }
    println!("{}", "-".repeat(48));
    let gmeans: Vec<f64> = columns.iter().map(|c| gmean(c)).collect();
    print_row("gmean", &gmeans);
    println!();
    println!("paper gmeans: 1.72 / 1.97 / 2.09 / 2.15 — monotone in subwarp size");
}
