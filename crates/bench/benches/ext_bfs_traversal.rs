//! Extension study: cooperative BFS traversal (§4.2).
//!
//! The paper notes that the cooperative mechanism "can be extended to
//! breadth-first-search (BFS) as BFS is also inherently parallelizable
//! ... helper threads would steal nodes from the front of the queue."
//! This target quantifies that extension: BFS under both policies,
//! normalized to the DFS baseline. BFS exposes more parallelism early
//! (wider frontiers to steal from) but loses DFS's near-to-far pruning,
//! so it does more total traversal work.

use cooprt_bench::{banner, build_scene, gmean, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalOrder, TraversalPolicy};

fn main() {
    banner("Extension: BFS cooperative traversal (normalized to DFS baseline)");
    print_header("scene", &["bfs base", "bfs coop", "dfs coop", "work x"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for id in scene_list() {
        let scene = build_scene(id);
        let dfs_cfg = GpuConfig::rtx2060();
        let mut bfs_cfg = GpuConfig::rtx2060();
        bfs_cfg.traversal_order = TraversalOrder::Bfs;

        let dfs_base = run(
            &scene,
            &dfs_cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let dfs_coop = run(
            &scene,
            &dfs_cfg,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );
        let bfs_base = run(
            &scene,
            &bfs_cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let bfs_coop = run(
            &scene,
            &bfs_cfg,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );

        let denom = dfs_base.cycles.max(1) as f64;
        let row = [
            denom / bfs_base.cycles.max(1) as f64,
            denom / bfs_coop.cycles.max(1) as f64,
            denom / dfs_coop.cycles.max(1) as f64,
            bfs_base.events.box_tests as f64 / dfs_base.events.box_tests.max(1) as f64,
        ];
        print_row(id.name(), &row);
        for (c, v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
    }
    println!("{}", "-".repeat(48));
    print_row("gmean", &cols.iter().map(|c| gmean(c)).collect::<Vec<_>>());
    println!();
    println!("expectation: cooperative stealing helps BFS too, but DFS+CoopRT stays the");
    println!("better total design because BFS inflates traversal work ('work x' > 1)");
}
