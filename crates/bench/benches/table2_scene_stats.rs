//! Table 2: benchmark scene statistics (tree size and depth).
//!
//! The paper's Table 2 lists per-scene BVH size (MB) and depth for the
//! LumiBench suite. This target prints the same columns for the
//! procedural analog suite. Absolute sizes are ~100-1000x smaller by
//! design (see DESIGN.md); the *ordering* matches the paper where
//! Table 2 is legible (wknd smallest → robot largest).

use cooprt_bench::{banner, build_scene, scene_list};

fn main() {
    banner("Table 2: scene statistics");
    println!(
        "{:<8} {:>10} {:>12} {:>7} {:>10} {:>10} {:>8}",
        "scene", "triangles", "tree(MiB)", "depth", "internal", "leaves", "lights"
    );
    println!("{}", "-".repeat(72));
    for id in scene_list() {
        let s = build_scene(id);
        println!(
            "{:<8} {:>10} {:>12.3} {:>7} {:>10} {:>10} {:>8}",
            s.name,
            s.triangle_count(),
            s.stats.size_mib,
            s.stats.depth,
            s.stats.internal_nodes,
            s.stats.leaf_nodes,
            s.lights.len(),
        );
    }
    println!();
    println!("paper: 0.2 MB (wknd) ... 1,721 MB (robot), depths 7-18; ordering preserved here at reduced scale");
}
