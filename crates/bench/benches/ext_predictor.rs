//! Comparative technique: intersection prediction (Liu et al.,
//! MICRO'21) vs CoopRT, per §8.2.
//!
//! The predictor caches verified ray→primitive hits keyed by a
//! quantized ray signature; coherent AO/SH rays reuse entries and skip
//! whole traversals, while the paper notes "its effectiveness with PT
//! is unknown". This target measures both shaders under the predictor,
//! CoopRT, and the combination.

use cooprt_bench::{banner, build_scene, gmean, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn study(kind: ShaderKind) {
    println!(
        "\n--- {} shader (normalized to plain baseline) ---",
        kind.key()
    );
    print_header("scene", &["predict", "coop", "both", "verify%"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for id in scene_list() {
        let scene = build_scene(id);
        let plain = GpuConfig::rtx2060();
        let mut pred = GpuConfig::rtx2060();
        pred.intersection_predictor = true;

        let base = run(&scene, &plain, TraversalPolicy::Baseline, kind);
        let p = run(&scene, &pred, TraversalPolicy::Baseline, kind);
        let coop = run(&scene, &plain, TraversalPolicy::CoopRt, kind);
        let both = run(&scene, &pred, TraversalPolicy::CoopRt, kind);

        let denom = base.cycles.max(1) as f64;
        let verify = if p.predictor.lookups == 0 {
            0.0
        } else {
            100.0 * p.predictor.verified as f64 / p.predictor.lookups as f64
        };
        let row = [
            denom / p.cycles.max(1) as f64,
            denom / coop.cycles.max(1) as f64,
            denom / both.cycles.max(1) as f64,
        ];
        print_row(id.name(), &[row[0], row[1], row[2], verify]);
        for (c, v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
    }
    println!("{}", "-".repeat(48));
    print_row("gmean", &cols.iter().map(|c| gmean(c)).collect::<Vec<_>>());
}

fn main() {
    banner("Comparative technique: intersection prediction vs CoopRT");
    study(ShaderKind::AmbientOcclusion);
    study(ShaderKind::PathTrace);
    println!();
    println!("expectation (paper §8.2): prediction helps only where rays are coherent");
    println!("enough to repeat signatures. At this reduced resolution the verified-");
    println!("prediction coverage is a few percent of rays (raise COOPRT_RES to grow");
    println!("it), so its gains are marginal — consistent with the original paper's");
    println!("reliance on full-resolution coherence and its untested status on PT —");
    println!("while CoopRT needs no coherence at all and wins on every workload.");
}
