//! Fig. 14: latency of the slowest warp (determines frame rate).
//!
//! The paper compares CoopRT with a 4-entry warp buffer against the
//! baseline with a 32-entry buffer: larger buffers raise throughput but
//! not tail latency, while CoopRT shortens the longest-running warps
//! themselves (paper: 0.46x vs 0.62x of baseline). Lower is better.

use cooprt_bench::{
    banner, build_scene, gmean, print_header, print_row, run_at, scene_list, sweep_res,
};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Fig. 14: slowest-warp latency, normalized to 4-entry baseline (lower is better)");
    let res = sweep_res();
    println!("(sweep resolution {res}x{res} for warp-buffer pressure)");
    print_header("scene", &["4w/coop", "32w/o"]);
    let (mut coop_col, mut big_col) = (Vec::new(), Vec::new());
    for id in scene_list() {
        let scene = build_scene(id);
        let base = run_at(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            res,
        );
        let coop = run_at(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
            res,
        );
        let big = run_at(
            &scene,
            &GpuConfig::rtx2060().with_warp_buffer(32),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            res,
        );
        let denom = base.slowest_warp_cycles.max(1) as f64;
        let row = [
            coop.slowest_warp_cycles as f64 / denom,
            big.slowest_warp_cycles as f64 / denom,
        ];
        print_row(id.name(), &row);
        coop_col.push(row[0]);
        big_col.push(row[1]);
    }
    println!("{}", "-".repeat(28));
    print_row("gmean", &[gmean(&coop_col), gmean(&big_col)]);
    println!();
    println!("paper: CoopRT 0.46x vs large-warp-buffer 0.62x — CoopRT should be lower");
}
