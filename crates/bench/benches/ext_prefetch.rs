//! Extension study: combining CoopRT with a node prefetcher (§8.2).
//!
//! The paper argues that CoopRT could be combined with a prefetcher
//! (e.g. Chou et al.'s treelet prefetcher) but "the benefits would need
//! more careful consideration ... CoopRT increases parallelism and may
//! saturate the memory bandwidth. In this case, the bandwidth left for
//! prefetching would be limited." This target measures a simple
//! child-node prefetcher alone, CoopRT alone, and both together.

use cooprt_bench::{banner, build_scene, gmean, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Extension: child-node prefetching x CoopRT (normalized to baseline)");
    print_header("scene", &["pf only", "coop", "coop+pf", "pf req k"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for id in scene_list() {
        let scene = build_scene(id);
        let plain = GpuConfig::rtx2060();
        let mut pf = GpuConfig::rtx2060();
        pf.prefetch_children = true;

        let base = run(
            &scene,
            &plain,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let base_pf = run(
            &scene,
            &pf,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let coop = run(
            &scene,
            &plain,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );
        let coop_pf = run(&scene, &pf, TraversalPolicy::CoopRt, ShaderKind::PathTrace);

        let denom = base.cycles.max(1) as f64;
        let row = [
            denom / base_pf.cycles.max(1) as f64,
            denom / coop.cycles.max(1) as f64,
            denom / coop_pf.cycles.max(1) as f64,
            coop_pf.mem.prefetches as f64 / 1000.0,
        ];
        print_row(id.name(), &row);
        for (c, v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
    }
    println!("{}", "-".repeat(48));
    print_row(
        "gmean",
        &[gmean(&cols[0]), gmean(&cols[1]), gmean(&cols[2])],
    );
    println!();
    println!("expectation (paper §8.2): prefetching helps the serial baseline more than it");
    println!("helps CoopRT, which already overlaps fetches and competes for the bandwidth");
}
