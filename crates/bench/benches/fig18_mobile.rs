//! Fig. 18: CoopRT on a mobile GPU configuration.
//!
//! The §7.4 mobile part has 8 SMs and only 4 memory channels; speedups
//! are capped by memory bandwidth (paper: 1.8x gmean vs 2.15x desktop,
//! with DRAM utilization rising from 44.0% to 85.3%).

use cooprt_bench::{banner, gmean, print_header, print_row, scene_list, Comparison};
use cooprt_core::{GpuConfig, ShaderKind};
use cooprt_scenes::SceneId;

fn main() {
    banner("Fig. 18: mobile GPU (8 SMs, 4 channels), CoopRT vs baseline");
    let cfg = GpuConfig::mobile();
    print_header("scene", &["speedup", "power", "energy", "dram b", "dram c"]);
    // The paper's Fig. 18 drops car and robot on mobile.
    let scenes: Vec<SceneId> = scene_list()
        .into_iter()
        .filter(|s| !matches!(s, SceneId::Car | SceneId::Robot))
        .collect();
    let (mut sp, mut pw, mut en, mut ub, mut uc) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for id in scenes {
        let c = Comparison::run(id, &cfg, ShaderKind::PathTrace);
        let row = [
            c.speedup(),
            c.power_ratio(),
            c.energy_ratio(),
            c.base.dram_utilization,
            c.coop.dram_utilization,
        ];
        print_row(id.name(), &row);
        sp.push(row[0]);
        pw.push(row[1]);
        en.push(row[2]);
        ub.push(row[3]);
        uc.push(row[4]);
    }
    println!("{}", "-".repeat(58));
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    print_row(
        "gmean",
        &[gmean(&sp), gmean(&pw), gmean(&en), mean(&ub), mean(&uc)],
    );
    println!();
    println!("paper: 1.8x speedup, 1.71x power, 0.95x energy; DRAM utilization 44.0% -> 85.3%");
}
