//! Fig. 9: CoopRT speedup, power and energy, normalized to baseline.
//!
//! The paper's headline result: up to 5.11x speedup, geometric mean
//! 2.15x; power up ~2.02x on average; energy down to ~0.94x. This
//! target runs every scene under both policies and prints the same
//! three normalized series.

use cooprt_bench::{banner, gmean, print_header, print_row, run_comparisons};
use cooprt_core::{GpuConfig, ShaderKind};

fn main() {
    banner("Fig. 9: CoopRT speedup / power / energy vs baseline (path tracing)");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["speedup", "power", "energy"]);
    let (mut sp, mut pw, mut en) = (Vec::new(), Vec::new(), Vec::new());
    for c in run_comparisons(&cfg, ShaderKind::PathTrace) {
        let row = [c.speedup(), c.power_ratio(), c.energy_ratio()];
        print_row(c.id.name(), &row);
        sp.push(row[0]);
        pw.push(row[1]);
        en.push(row[2]);
    }
    println!("{}", "-".repeat(38));
    print_row("gmean", &[gmean(&sp), gmean(&pw), gmean(&en)]);
    let max = sp.iter().cloned().fold(0.0, f64::max);
    println!();
    println!(
        "max speedup: {max:.2}x (paper: 5.11x) | gmean: {:.2}x (paper: 2.15x)",
        gmean(&sp)
    );
    println!("paper power gmean: 2.02x | paper energy: 0.94x");
}
