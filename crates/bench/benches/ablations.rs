//! Ablations of CoopRT's design decisions (DESIGN.md §"Key design
//! decisions"). Not a paper figure — these probe the choices the paper
//! fixes:
//!
//! 1. **LBU transfer rate** — the hardware moves 1 node/cycle (§5.1);
//!    how much would a wider LBU datapath buy?
//! 2. **Steal position** — the paper pops the main's top-of-stack;
//!    deque-style work stealing takes the bottom, which roots larger
//!    subtrees per steal.
//! 3. **Node elimination** — Algorithm 1's min_thit pruning; disabling
//!    it shows how much traversal work pruning saves (and why the
//!    paper's Vulkan-sim workaround in §6.1 mattered).

use cooprt_bench::{banner, build_scene, gmean, print_header, print_row, run};
use cooprt_core::{GpuConfig, ShaderKind, StealPosition, TraversalPolicy};
use cooprt_scenes::SceneId;

const SCENES: [SceneId; 4] = [SceneId::Bunny, SceneId::Crnvl, SceneId::Fox, SceneId::Lands];

fn main() {
    banner("Ablations: LBU rate, steal position, node elimination");

    // 1. LBU transfer rate.
    println!("\n--- LBU node transfers per cycle (CoopRT speedup over baseline) ---");
    let rates = [1u32, 2, 4, 8];
    print_header("scene", &["1/cyc", "2/cyc", "4/cyc", "8/cyc"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); rates.len()];
    for id in SCENES {
        let scene = build_scene(id);
        let base = run(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let mut row = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            let mut cfg = GpuConfig::rtx2060();
            cfg.lbu_moves_per_cycle = rate;
            let r = run(&scene, &cfg, TraversalPolicy::CoopRt, ShaderKind::PathTrace);
            let s = base.cycles as f64 / r.cycles.max(1) as f64;
            row.push(s);
            cols[i].push(s);
        }
        print_row(id.name(), &row);
    }
    print_row("gmean", &cols.iter().map(|c| gmean(c)).collect::<Vec<_>>());
    println!("expectation: mild gains past 1/cycle — the paper's 1-node LBU is near-sufficient");

    // 2. Steal position.
    println!("\n--- steal position (CoopRT speedup over baseline) ---");
    print_header("scene", &["TOS", "bottom"]);
    let mut top_col = Vec::new();
    let mut bot_col = Vec::new();
    for id in SCENES {
        let scene = build_scene(id);
        let base = run(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let mut row = Vec::new();
        for steal in [StealPosition::Top, StealPosition::Bottom] {
            let mut cfg = GpuConfig::rtx2060();
            cfg.steal_from = steal;
            let r = run(&scene, &cfg, TraversalPolicy::CoopRt, ShaderKind::PathTrace);
            row.push(base.cycles as f64 / r.cycles.max(1) as f64);
        }
        top_col.push(row[0]);
        bot_col.push(row[1]);
        print_row(id.name(), &row);
    }
    print_row("gmean", &[gmean(&top_col), gmean(&bot_col)]);
    println!("expectation: bottom-of-stack steals root larger subtrees; the paper's TOS choice");
    println!("is the cheaper hardware and (per §4.2) parallelism is insensitive to the choice");

    // 3. Node elimination.
    println!("\n--- min_thit node elimination (baseline policy) ---");
    print_header("scene", &["slowdown", "tri x"]);
    for id in SCENES {
        let scene = build_scene(id);
        let with = run(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let mut cfg = GpuConfig::rtx2060();
        cfg.node_elimination = false;
        let without = run(
            &scene,
            &cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        print_row(
            id.name(),
            &[
                without.cycles as f64 / with.cycles.max(1) as f64,
                without.events.triangle_tests as f64 / with.events.triangle_tests.max(1) as f64,
            ],
        );
    }
    println!("expectation: disabling pruning inflates traversal work substantially");

    // 4. BVH build quality (SAH vs object-median).
    println!("\n--- BVH build quality: SAH vs median split (baseline policy) ---");
    print_header("scene", &["slowdown", "sah dpth", "med dpth"]);
    for id in SCENES {
        let scene = build_scene(id);
        let median_scene = scene.rebuilt_with(cooprt_bvh::build_binary_median);
        let sah = run(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let med = run(
            &median_scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        print_row(
            id.name(),
            &[
                med.cycles as f64 / sah.cycles.max(1) as f64,
                scene.stats.depth as f64,
                median_scene.stats.depth as f64,
            ],
        );
    }
    println!("expectation: the SAH tree (what Embree builds for the paper) traverses faster");
}
