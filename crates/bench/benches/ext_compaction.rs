//! Comparative baseline: active-thread compaction (Wald, HPG'11) vs
//! CoopRT.
//!
//! §3/§8.1 of the paper: compaction-style SIMT techniques "may address
//! the inactive thread problem to some degree ... but not early
//! finishing threads", and none address the BVH traversal itself. This
//! target measures per-bounce compaction, CoopRT, and their
//! combination, all normalized to the plain baseline.

use cooprt_bench::{banner, build_scene, gmean, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Comparative baseline: thread compaction vs CoopRT (path tracing)");
    print_header("scene", &["compact", "coop", "both"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for id in scene_list() {
        let scene = build_scene(id);
        let plain = GpuConfig::rtx2060();
        let mut compact = GpuConfig::rtx2060();
        compact.compaction = true;

        let base = run(
            &scene,
            &plain,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let cmp = run(
            &scene,
            &compact,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let coop = run(
            &scene,
            &plain,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );
        let both = run(
            &scene,
            &compact,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );

        let denom = base.cycles.max(1) as f64;
        let row = [
            denom / cmp.cycles.max(1) as f64,
            denom / coop.cycles.max(1) as f64,
            denom / both.cycles.max(1) as f64,
        ];
        print_row(id.name(), &row);
        for (c, v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
    }
    println!("{}", "-".repeat(38));
    print_row("gmean", &cols.iter().map(|c| gmean(c)).collect::<Vec<_>>());
    println!();
    println!("expectation (paper §3): compaction addresses inactive lanes but not early");
    println!("finishers, and none of the SIMT techniques address the traversal itself.");
    println!("In an RT-unit architecture the effect is stark: idle lanes do not consume");
    println!("RT-unit throughput (rays are traversed independently), so compaction's");
    println!("lane-density benefit mostly evaporates while its per-bounce relaunch");
    println!("barrier serializes the bounce pipeline — it can even lose to the plain");
    println!("baseline. CoopRT attacks the traversal itself and wins decisively.");
}
