//! Fig. 11: `trace_ray` execution timeline of one warp (bath scene).
//!
//! The paper's Fig. 11 plots, for one example warp, which threads are
//! traversing over time: baseline shows 13 inactive threads and long
//! idle tails (30.5% average utilization); CoopRT fills the idle
//! threads with stolen work (94.6%). This target renders the same plot
//! as ASCII for a mid-frame warp, baseline vs CoopRT.

use cooprt_bench::{banner, build_scene, default_res};
use cooprt_core::{GpuConfig, ShaderKind, Simulation, TimelineSample, TraversalPolicy, WARP_SIZE};
use cooprt_scenes::SceneId;

fn render(label: &str, timeline: &[TimelineSample]) -> f64 {
    println!();
    println!("--- {label}: {} samples ---", timeline.len());
    if timeline.is_empty() {
        println!("(warp never traced)");
        return 0.0;
    }
    const COLS: usize = 72;
    let step = timeline.len().div_ceil(COLS);
    let mut busy_cells = 0usize;
    let mut total_cells = 0usize;
    for t in 0..WARP_SIZE {
        print!("t{t:02} ");
        for chunk in timeline.chunks(step) {
            let busy = chunk.iter().any(|s| s.mask & (1 << t) != 0);
            print!("{}", if busy { '#' } else { '.' });
        }
        println!();
    }
    for s in timeline {
        busy_cells += s.mask.count_ones() as usize;
        total_cells += WARP_SIZE;
    }
    let util = busy_cells as f64 / total_cells.max(1) as f64;
    println!("average utilization while resident: {:.1}%", util * 100.0);
    util
}

fn main() {
    banner("Fig. 11: warp trace_ray timeline (bath, path tracing)");
    let scene = build_scene(SceneId::Bath);
    let cfg = GpuConfig::rtx2060();
    let res = default_res();
    // A mid-image warp (like the paper's example, with a mix of sky and
    // interior pixels... bath is closed, so the mix comes from bounces).
    let warp = (res * res / WARP_SIZE) / 2;
    let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
        .with_timeline_warp(warp)
        .run_frame(ShaderKind::PathTrace, res, res)
        .unwrap();
    let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
        .with_timeline_warp(warp)
        .run_frame(ShaderKind::PathTrace, res, res)
        .unwrap();
    let ub = render("baseline", &base.timeline);
    let uc = render("CoopRT", &coop.timeline);
    println!();
    println!(
        "utilization: baseline {:.1}% -> CoopRT {:.1}% (paper: 30.5% -> 94.6%)",
        ub * 100.0,
        uc * 100.0
    );
}
