//! Criterion micro-benchmarks of the substrate kernels: intersection
//! tests, BVH construction, reference traversal and a small end-to-end
//! simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cooprt_bvh::traverse::closest_hit;
use cooprt_bvh::{build_binary, BvhImage, WideBvh};
use cooprt_core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt_math::{Aabb, Ray, Triangle, Vec3};
use cooprt_scenes::SceneId;

fn bench_intersections(c: &mut Criterion) {
    let bbox = Aabb::new(Vec3::ZERO, Vec3::ONE);
    let tri = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y);
    let ray = Ray::new(Vec3::new(0.3, 0.3, -2.0), Vec3::Z);
    c.bench_function("ray_aabb_slab", |b| {
        b.iter(|| black_box(bbox.intersect(black_box(&ray), f32::INFINITY)))
    });
    c.bench_function("ray_triangle_moller_trumbore", |b| {
        b.iter(|| black_box(tri.intersect(black_box(&ray), f32::INFINITY)))
    });
}

fn bench_bvh_build(c: &mut Criterion) {
    let scene = SceneId::Party.build(8);
    let tris = scene.image.triangles().to_vec();
    c.bench_function("bvh_build_sah_6ary", |b| {
        b.iter(|| {
            let binary = build_binary(black_box(&tris));
            let wide = WideBvh::from_binary(&binary);
            black_box(BvhImage::serialize(&wide, &tris))
        })
    });
}

fn bench_traversal(c: &mut Criterion) {
    let scene = SceneId::Fox.build(8);
    let rays: Vec<Ray> = (0..256)
        .map(|i| {
            let s = (i % 16) as f32 / 16.0;
            let t = (i / 16) as f32 / 16.0;
            scene.camera.primary_ray(s, t)
        })
        .collect();
    c.bench_function("cpu_reference_traversal_256_rays", |b| {
        b.iter(|| {
            let mut hits = 0;
            for ray in &rays {
                if closest_hit(&scene.image, ray, f32::INFINITY).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let scene = SceneId::Wknd.build(4);
    let cfg = GpuConfig::small(4);
    let mut group = c.benchmark_group("simulation_16x16");
    group.sample_size(10);
    for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        group.bench_function(policy.label(), |b| {
            b.iter_batched(
                || Simulation::new(&scene, &cfg, policy),
                |sim| black_box(sim.run_frame(ShaderKind::PathTrace, 16, 16)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_intersections,
    bench_bvh_build,
    bench_traversal,
    bench_simulation
);
criterion_main!(benches);
