//! Fig. 1: pipeline stalls by instruction class.
//!
//! The paper's Fig. 1 shows that `trace_ray` (RT) instructions dominate
//! pipeline stalls across scenes under path tracing. This target prints
//! the per-scene stall fractions for RT / MEM / ALU / SFU on the
//! baseline RT unit; expect RT > 50% everywhere.

use cooprt_bench::{banner, build_scene, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Fig. 1: pipeline stall breakdown (baseline, path tracing)");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["RT", "MEM", "ALU", "SFU"]);
    let mut rt_fracs = Vec::new();
    for id in scene_list() {
        let scene = build_scene(id);
        let r = run(
            &scene,
            &cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let f = r.stalls.fractions();
        print_row(id.name(), &f);
        rt_fracs.push(f[0]);
    }
    let mean = rt_fracs.iter().sum::<f64>() / rt_fracs.len().max(1) as f64;
    println!();
    println!("mean RT stall fraction: {mean:.3} (paper: RT dominates every scene)");
}
