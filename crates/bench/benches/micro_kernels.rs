//! Micro-benchmarks of the substrate kernels: intersection tests, BVH
//! construction, reference traversal and a small end-to-end simulation.
//!
//! Uses the in-tree wall-clock harness (`cooprt_bench::perf`) instead of
//! criterion so the workspace stays dependency-free and builds offline.

use std::hint::black_box;

use cooprt_bench::perf::bench_fn;
use cooprt_bvh::traverse::closest_hit;
use cooprt_bvh::{build_binary, BvhImage, WideBvh};
use cooprt_core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt_math::{Aabb, Ray, Triangle, Vec3};
use cooprt_scenes::SceneId;

fn bench_intersections() {
    let bbox = Aabb::new(Vec3::ZERO, Vec3::ONE);
    let tri = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y);
    let ray = Ray::new(Vec3::new(0.3, 0.3, -2.0), Vec3::Z);
    bench_fn("ray_aabb_slab", 1_000_000, || {
        black_box(bbox.intersect(black_box(&ray), f32::INFINITY));
    });
    bench_fn("ray_triangle_moller_trumbore", 1_000_000, || {
        black_box(tri.intersect(black_box(&ray), f32::INFINITY));
    });
}

fn bench_bvh_build() {
    let scene = SceneId::Party.build(8);
    let tris = scene.image.triangles().to_vec();
    bench_fn("bvh_build_sah_6ary", 50, || {
        let binary = build_binary(black_box(&tris));
        let wide = WideBvh::from_binary(&binary);
        black_box(BvhImage::serialize(&wide, &tris));
    });
}

fn bench_traversal() {
    let scene = SceneId::Fox.build(8);
    let rays: Vec<Ray> = (0..256)
        .map(|i| {
            let s = (i % 16) as f32 / 16.0;
            let t = (i / 16) as f32 / 16.0;
            scene.camera.primary_ray(s, t)
        })
        .collect();
    bench_fn("cpu_reference_traversal_256_rays", 200, || {
        let mut hits = 0;
        for ray in &rays {
            if closest_hit(&scene.image, ray, f32::INFINITY).is_some() {
                hits += 1;
            }
        }
        black_box(hits);
    });
}

fn bench_simulation() {
    let scene = SceneId::Wknd.build(4);
    let cfg = GpuConfig::small(4);
    for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        bench_fn(&format!("simulation_16x16/{}", policy.label()), 10, || {
            let sim = Simulation::new(&scene, &cfg, policy);
            black_box(sim.run_frame(ShaderKind::PathTrace, 16, 16).unwrap());
        });
    }
}

fn main() {
    bench_intersections();
    bench_bvh_build();
    bench_traversal();
    bench_simulation();
}
