//! Fig. 17: CoopRT speedups for ambient-occlusion and shadow shaders.
//!
//! AO and SH rays are short and coherent, so there is less divergence
//! for CoopRT to exploit: the paper reports gmean speedups of 1.42x
//! (AO) and 1.28x (SH), well below path tracing's 2.15x.

use cooprt_bench::{banner, gmean, parallel, print_header, print_row, Comparison};
use cooprt_core::{GpuConfig, ShaderKind};
use cooprt_scenes::{SceneId, PAPER_FIG17_SCENES};

fn main() {
    banner("Fig. 17: AO and SH shader speedups (CoopRT over baseline)");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["AO", "SH"]);
    // Every scene x shader cell is independent: run the whole matrix
    // concurrently, then print in scene order (results keep job order).
    let jobs: Vec<(SceneId, ShaderKind)> = PAPER_FIG17_SCENES
        .iter()
        .flat_map(|&id| [(id, ShaderKind::AmbientOcclusion), (id, ShaderKind::Shadow)])
        .collect();
    let results = parallel::par_map(&jobs, parallel::threads(), |_, &(id, kind)| {
        Comparison::run_with_threads(id, &cfg, kind, 1)
    });
    let (mut ao_col, mut sh_col) = (Vec::new(), Vec::new());
    for pair in results.chunks(2) {
        let (ao, sh) = (&pair[0], &pair[1]);
        print_row(ao.id.name(), &[ao.speedup(), sh.speedup()]);
        ao_col.push(ao.speedup());
        sh_col.push(sh.speedup());
    }
    println!("{}", "-".repeat(28));
    print_row("gmean", &[gmean(&ao_col), gmean(&sh_col)]);
    println!();
    println!("paper gmeans: AO 1.42x, SH 1.28x — both well below path tracing");
}
