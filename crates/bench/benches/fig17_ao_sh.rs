//! Fig. 17: CoopRT speedups for ambient-occlusion and shadow shaders.
//!
//! AO and SH rays are short and coherent, so there is less divergence
//! for CoopRT to exploit: the paper reports gmean speedups of 1.42x
//! (AO) and 1.28x (SH), well below path tracing's 2.15x.

use cooprt_bench::{banner, gmean, print_header, print_row, Comparison};
use cooprt_core::{GpuConfig, ShaderKind};
use cooprt_scenes::PAPER_FIG17_SCENES;

fn main() {
    banner("Fig. 17: AO and SH shader speedups (CoopRT over baseline)");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["AO", "SH"]);
    let (mut ao_col, mut sh_col) = (Vec::new(), Vec::new());
    for id in PAPER_FIG17_SCENES {
        let ao = Comparison::run(id, &cfg, ShaderKind::AmbientOcclusion);
        let sh = Comparison::run(id, &cfg, ShaderKind::Shadow);
        print_row(id.name(), &[ao.speedup(), sh.speedup()]);
        ao_col.push(ao.speedup());
        sh_col.push(sh.speedup());
    }
    println!("{}", "-".repeat(28));
    print_row("gmean", &[gmean(&ao_col), gmean(&sh_col)]);
    println!();
    println!("paper gmeans: AO 1.42x, SH 1.28x — both well below path tracing");
}
