//! Fig. 15: energy-delay-product improvement across configurations.
//!
//! The paper compares the EDP improvement of larger warp buffers
//! against CoopRT with the default 4-entry buffer; CoopRT wins
//! (paper gmeans: 1.54x / 1.75x / 1.75x for 8/16/32 w/o coop vs 2.29x
//! for 4 w/ coop).

use cooprt_bench::{
    banner, build_scene, gmean, print_header, print_row, run_at, scene_list, sweep_res,
};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Fig. 15: EDP improvement over 4-entry baseline (higher is better)");
    let res = sweep_res();
    println!("(sweep resolution {res}x{res} for warp-buffer pressure)");
    let configs: Vec<(String, usize, TraversalPolicy)> = [8usize, 16, 32]
        .iter()
        .map(|&n| (format!("{n}w/o"), n, TraversalPolicy::Baseline))
        .chain(std::iter::once((
            "4w/".to_string(),
            4usize,
            TraversalPolicy::CoopRt,
        )))
        .collect();
    let labels: Vec<&str> = configs.iter().map(|c| c.0.as_str()).collect();
    print_header("scene", &labels);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for id in scene_list() {
        let scene = build_scene(id);
        let base = run_at(
            &scene,
            &GpuConfig::rtx2060(),
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            res,
        );
        let mut row = Vec::new();
        for (i, (_, entries, policy)) in configs.iter().enumerate() {
            let cfg = GpuConfig::rtx2060().with_warp_buffer(*entries);
            let r = run_at(&scene, &cfg, *policy, ShaderKind::PathTrace, res);
            let improvement = base.energy.edp() / r.energy.edp().max(1e-300);
            row.push(improvement);
            columns[i].push(improvement);
        }
        print_row(id.name(), &row);
    }
    println!("{}", "-".repeat(8 + 10 * configs.len()));
    let gmeans: Vec<f64> = columns.iter().map(|c| gmean(c)).collect();
    print_row("gmean", &gmeans);
    println!();
    println!("paper gmeans: 1.54 / 1.75 / 1.75 (8/16/32 w/o coop) vs 2.29 (4 w/ coop)");
    println!(
        "shape check: coop@4 EDP gain ({:.2}x) should beat every big-buffer baseline",
        gmeans[3]
    );
}
