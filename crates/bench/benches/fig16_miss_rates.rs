//! Fig. 16: L1 and L2 cache miss rates, baseline vs CoopRT.
//!
//! The paper's Fig. 16 shows that CoopRT raises L1 miss rates (more
//! threads contend for the same L1) while L2 miss rates stay similar
//! (former L1 reuse moves to L2), and that extra misses are hidden by
//! the GPU's latency tolerance.

use cooprt_bench::{banner, print_header, print_row, run_comparisons};
use cooprt_core::{GpuConfig, ShaderKind};

fn main() {
    banner("Fig. 16: cache miss rates (path tracing)");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["L1 base", "L1 coop", "L2 base", "L2 coop"]);
    let mut l1_up = 0usize;
    let mut n = 0usize;
    let mut l2_dev = Vec::new();
    for c in run_comparisons(&cfg, ShaderKind::PathTrace) {
        let row = [
            c.base.mem.l1.miss_rate(),
            c.coop.mem.l1.miss_rate(),
            c.base.mem.l2.miss_rate(),
            c.coop.mem.l2.miss_rate(),
        ];
        print_row(c.id.name(), &row);
        if row[1] >= row[0] {
            l1_up += 1;
        }
        n += 1;
        l2_dev.push((row[3] - row[2]).abs());
    }
    println!();
    println!(
        "L1 miss rate increased on {l1_up}/{n} scenes (paper: contention raises L1 misses); \
         mean |L2 delta| = {:.3} (paper: L2 miss rates stay similar)",
        l2_dev.iter().sum::<f64>() / l2_dev.len().max(1) as f64
    );
}
