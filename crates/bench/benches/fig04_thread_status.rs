//! Fig. 4: thread status distribution.
//!
//! The paper's Fig. 4 splits RT-unit thread-cycles into busy,
//! early-finished (waiting) and inactive across scenes, showing that
//! most thread time is wasted. This target prints the same
//! distribution for the baseline RT unit under path tracing.

use cooprt_bench::{banner, build_scene, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};

fn main() {
    banner("Fig. 4: thread status distribution (baseline, path tracing)");
    let cfg = GpuConfig::rtx2060();
    print_header("scene", &["busy", "waiting", "inactive"]);
    let mut wasted = Vec::new();
    for id in scene_list() {
        let scene = build_scene(id);
        let r = run(
            &scene,
            &cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let d = r.activity.status_distribution();
        print_row(id.name(), &d);
        wasted.push(d[1] + d[2]);
    }
    let mean = wasted.iter().sum::<f64>() / wasted.len().max(1) as f64;
    println!();
    println!(
        "mean wasted (waiting + inactive) fraction: {mean:.3} (paper: most threads idle or wait)"
    );
}
