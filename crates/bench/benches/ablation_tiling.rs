//! Ablation: warp-to-pixel tiling (ray coherence).
//!
//! Vulkan-sim (and this harness by default) maps each warp to 32
//! consecutive pixels of a row; real rasterizers map warps to 8x4
//! screen tiles, making each warp's primary rays spatially coherent.
//! Coherence is a *competitor* to cooperation: coherent warps coalesce
//! node fetches and diverge less, so tiling should help the baseline
//! more than CoopRT and slightly shrink CoopRT's relative win.

use cooprt_bench::{banner, build_scene, gmean, print_header, print_row, run, scene_list};
use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy, WarpTiling};

fn main() {
    banner("Ablation: warp tiling (linear strips vs 8x4 screen tiles)");
    print_header("scene", &["tile b", "tile c", "lin c", "coop gain"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for id in scene_list() {
        let scene = build_scene(id);
        let linear = GpuConfig::rtx2060();
        let mut tiled = GpuConfig::rtx2060();
        tiled.warp_tiling = WarpTiling::Tiled8x4;

        let lin_base = run(
            &scene,
            &linear,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let lin_coop = run(
            &scene,
            &linear,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );
        let tile_base = run(
            &scene,
            &tiled,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let tile_coop = run(
            &scene,
            &tiled,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );

        let denom = lin_base.cycles.max(1) as f64;
        let row = [
            denom / tile_base.cycles.max(1) as f64,
            denom / tile_coop.cycles.max(1) as f64,
            denom / lin_coop.cycles.max(1) as f64,
            tile_base.cycles as f64 / tile_coop.cycles.max(1) as f64,
        ];
        print_row(id.name(), &row);
        for (c, v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
    }
    println!("{}", "-".repeat(48));
    print_row("gmean", &cols.iter().map(|c| gmean(c)).collect::<Vec<_>>());
    println!();
    println!("columns: tiled baseline / tiled coop / linear coop, all vs linear baseline;");
    println!("'coop gain' = CoopRT speedup *within* the tiled mapping. Expectation: tiles");
    println!("help the baseline via coherence, and CoopRT still wins on top of them.");
}
