//! Minimal wall-clock measurement harness.
//!
//! Replaces criterion (unavailable in offline builds) for the
//! `micro_kernels` and `simperf` targets: warm up, run a fixed
//! iteration count, report mean time per iteration.

use std::time::Instant;

/// Wall-clock measurement of one benchmarked closure.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Iterations timed.
    pub iters: u64,
    /// Total wall-clock seconds over all iterations.
    pub total_secs: f64,
}

impl Measurement {
    /// Mean seconds per iteration.
    pub fn secs_per_iter(&self) -> f64 {
        self.total_secs / self.iters.max(1) as f64
    }

    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.secs_per_iter() * 1e9
    }
}

/// Times `iters` invocations of `f` (after one untimed warm-up call).
pub fn time_fn<F: FnMut()>(iters: u64, mut f: F) -> Measurement {
    assert!(iters > 0, "need at least one iteration");
    f(); // warm-up: touch caches, fault in pages
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    Measurement {
        iters,
        total_secs: start.elapsed().as_secs_f64(),
    }
}

/// Times `f` and prints a criterion-style one-liner.
pub fn bench_fn<F: FnMut()>(name: &str, iters: u64, f: F) -> Measurement {
    let m = time_fn(iters, f);
    let per = m.ns_per_iter();
    if per >= 1e6 {
        println!("{name:<40} {:>12.3} ms/iter ({iters} iters)", per / 1e6);
    } else if per >= 1e3 {
        println!("{name:<40} {:>12.3} us/iter ({iters} iters)", per / 1e3);
    } else {
        println!("{name:<40} {:>12.1} ns/iter ({iters} iters)", per);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_fn_counts_iterations() {
        let mut calls = 0u64;
        let m = time_fn(10, || calls += 1);
        assert_eq!(calls, 11, "10 timed + 1 warm-up");
        assert_eq!(m.iters, 10);
        assert!(m.total_secs >= 0.0);
        assert!(m.ns_per_iter() >= 0.0);
    }
}
