//! Benchmark harness for the CoopRT reproduction.
//!
//! Every table and figure of the paper's evaluation has a `[[bench]]`
//! target in `benches/` (run via `cargo bench`). Each target simulates
//! the relevant scene × configuration matrix and prints the same rows
//! or series the paper reports, normalized to the baseline exactly as
//! the paper normalizes.
//!
//! Knobs (environment variables):
//!
//! - `COOPRT_RES` — frame resolution (default 64; the paper uses 256).
//! - `COOPRT_DETAIL` — scene detail level (default 32).
//! - `COOPRT_SCENES` — comma-separated subset of scene names to run
//!   (default: all 15).
//! - `COOPRT_THREADS` — outer-parallelism width for the scene x config
//!   x policy matrix (default: available parallelism). Simulations are
//!   individually single-threaded and deterministic; the matrix runner
//!   only changes wall-clock time, never an output bit.

use cooprt_core::{FrameResult, GpuConfig, ShaderKind, Simulation, TraversalPolicy};
use cooprt_scenes::{Scene, SceneId, ALL_SCENES};

pub mod diff;
pub mod perf;

/// Deterministic outer-loop parallelism (re-exported from
/// [`cooprt_core::parallel`]): the scoped-thread work pool behind the
/// matrix runner and the `COOPRT_THREADS` knob.
pub mod parallel {
    pub use cooprt_core::parallel::{join, par_map, threads};
}

/// Reads a `usize` knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Frame resolution for experiments (`COOPRT_RES`, default 64).
pub fn default_res() -> usize {
    env_usize("COOPRT_RES", 64)
}

/// Scene detail level (`COOPRT_DETAIL`, default 32).
pub fn default_detail() -> u32 {
    env_usize("COOPRT_DETAIL", 32) as u32
}

/// Frame resolution for the warp-buffer sweep figures (13/14/15).
///
/// Those experiments need enough warps per SM to pressure the RT warp
/// buffer (the paper runs 68 thread blocks per SM); at the ordinary
/// default of 64x64 there are only ~4 warps per SM and buffer sizes
/// beyond 4 change nothing. Defaults to 128 (≈17 warps/SM); override
/// with `COOPRT_RES`.
pub fn sweep_res() -> usize {
    env_usize("COOPRT_RES", 128)
}

/// Runs one simulation at an explicit resolution.
pub fn run_at(
    scene: &Scene,
    cfg: &GpuConfig,
    policy: TraversalPolicy,
    kind: ShaderKind,
    res: usize,
) -> FrameResult {
    Simulation::new(scene, cfg, policy)
        .run_frame(kind, res, res)
        .unwrap()
}

/// The scene list to run, honouring `COOPRT_SCENES`.
pub fn scene_list() -> Vec<SceneId> {
    match std::env::var("COOPRT_SCENES") {
        Err(_) => ALL_SCENES.to_vec(),
        Ok(spec) => {
            let want: Vec<&str> = spec.split(',').map(|s| s.trim()).collect();
            ALL_SCENES
                .iter()
                .copied()
                .filter(|s| want.contains(&s.name()))
                .collect()
        }
    }
}

/// Builds a scene at the harness detail level.
pub fn build_scene(id: SceneId) -> Scene {
    id.build(default_detail())
}

/// Builds a scene suite concurrently (BVH construction dominates and is
/// independent per scene). Results are in `ids` order.
pub fn build_scenes(ids: &[SceneId]) -> Vec<Scene> {
    parallel::par_map(ids, parallel::threads(), |_, &id| build_scene(id))
}

/// Runs one simulation at the harness resolution.
pub fn run(
    scene: &Scene,
    cfg: &GpuConfig,
    policy: TraversalPolicy,
    kind: ShaderKind,
) -> FrameResult {
    let res = default_res();
    Simulation::new(scene, cfg, policy)
        .run_frame(kind, res, res)
        .unwrap()
}

/// Geometric mean of a slice of positive ratios.
///
/// Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert!((cooprt_bench::gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// ```
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a table header: a left-aligned label column plus value
/// columns.
pub fn print_header(label: &str, columns: &[&str]) {
    print!("{label:<8}");
    for c in columns {
        print!(" {c:>9}");
    }
    println!();
    println!("{}", "-".repeat(8 + 10 * columns.len()));
}

/// Prints one row of numeric values under a [`print_header`].
pub fn print_row(label: &str, values: &[f64]) {
    print!("{label:<8}");
    for v in values {
        print!(" {v:>9.3}");
    }
    println!();
}

/// Prints the standard experiment banner with the harness parameters.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!(
        "(resolution {res}x{res}, detail {detail}, {n} scenes; set COOPRT_RES / COOPRT_DETAIL / COOPRT_SCENES to adjust)",
        res = default_res(),
        detail = default_detail(),
        n = scene_list().len(),
    );
}

/// Runs the full scene x config x policy matrix concurrently: one job
/// per cell, scheduled dynamically over [`parallel::threads`] workers.
/// Results are in `jobs` order and bitwise identical to running each
/// cell sequentially.
pub fn run_matrix(
    jobs: &[(SceneId, GpuConfig, TraversalPolicy)],
    kind: ShaderKind,
) -> Vec<FrameResult> {
    parallel::par_map(jobs, parallel::threads(), |_, (id, cfg, policy)| {
        let scene = build_scene(*id);
        run(&scene, cfg, *policy, kind)
    })
}

/// Runs the baseline-vs-CoopRT [`Comparison`] for every scene of
/// [`scene_list`] concurrently (scene-level parallelism; each pair runs
/// sequentially inside its worker to avoid oversubscription). Results
/// are in scene-list order.
pub fn run_comparisons(cfg: &GpuConfig, kind: ShaderKind) -> Vec<Comparison> {
    let ids = scene_list();
    parallel::par_map(&ids, parallel::threads(), |_, &id| {
        Comparison::run_with_threads(id, cfg, kind, 1)
    })
}

/// Per-scene baseline-vs-CoopRT comparison used by several figures.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Scene identifier.
    pub id: SceneId,
    /// Baseline run.
    pub base: FrameResult,
    /// CoopRT run.
    pub coop: FrameResult,
}

impl Comparison {
    /// Simulates one scene under both policies with the same config,
    /// running the baseline/CoopRT pair concurrently (the two
    /// simulations are independent; each stays single-threaded).
    pub fn run(id: SceneId, cfg: &GpuConfig, kind: ShaderKind) -> Self {
        Self::run_with_threads(id, cfg, kind, parallel::threads())
    }

    /// [`Comparison::run`] with an explicit worker count; `threads <= 1`
    /// runs the pair sequentially. Either way the results are bitwise
    /// identical.
    pub fn run_with_threads(
        id: SceneId,
        cfg: &GpuConfig,
        kind: ShaderKind,
        threads: usize,
    ) -> Self {
        let scene = build_scene(id);
        let (base, coop) = parallel::join(
            threads,
            || run(&scene, cfg, TraversalPolicy::Baseline, kind),
            || run(&scene, cfg, TraversalPolicy::CoopRt, kind),
        );
        assert_eq!(
            base.image, coop.image,
            "{id}: policies must agree functionally"
        );
        Comparison { id, base, coop }
    }

    /// CoopRT speedup over baseline (higher is better).
    pub fn speedup(&self) -> f64 {
        self.base.cycles as f64 / self.coop.cycles.max(1) as f64
    }

    /// CoopRT power normalized to baseline.
    pub fn power_ratio(&self) -> f64 {
        self.coop.energy.avg_power_w() / self.base.energy.avg_power_w().max(1e-12)
    }

    /// CoopRT energy normalized to baseline.
    pub fn energy_ratio(&self) -> f64 {
        self.coop.energy.total_j() / self.base.energy.total_j().max(1e-300)
    }

    /// Baseline EDP over CoopRT EDP (improvement factor, higher is
    /// better).
    pub fn edp_improvement(&self) -> f64 {
        self.base.energy.edp() / self.coop.energy.edp().max(1e-300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert_eq!(gmean(&[]), 0.0);
        assert!((gmean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn env_usize_parses_and_defaults() {
        assert_eq!(env_usize("COOPRT_SURELY_UNSET_VAR", 7), 7);
    }

    #[test]
    fn scene_list_defaults_to_all() {
        if std::env::var("COOPRT_SCENES").is_err() {
            assert_eq!(scene_list().len(), 15);
        }
    }
}
