//! Perf-regression diffing for the checked-in BENCH reports.
//!
//! `BENCH_simperf.json` and `BENCH_serve.json` record what the
//! simulator and the serve path measured when they were last
//! regenerated. This module compares those reports against a pinned
//! baseline (`ci/bench_baseline.json`) with per-metric thresholds, so a
//! change that silently regresses cycle counts, cache behavior, or SLO
//! attainment fails loudly in CI instead of drifting.
//!
//! Two metric classes get different treatment:
//!
//! - **deterministic** values (simulated cycle counts, cache hit
//!   rates) are compared exactly — any drift is a real behavioral
//!   change;
//! - **wall-clock** values (requests/sec, latency quantiles) are
//!   machine-dependent, so they carry wide tolerances and only catch
//!   order-of-magnitude regressions. The `benchdiff` gate in `ci.sh`
//!   is *soft* (warn, don't fail) for exactly this reason.
//!
//! Metric addresses are dotted paths into the report JSON, with
//! `[key=value,...]` selectors to pick a row out of an array:
//! `simperf.scenes[scene=wknd,policy=cooprt].cycles`. The first path
//! segment names the source report (`simperf` or `serve`).

use cooprt_telemetry::{parse_json, JsonValue, JsonWriter};

/// How a metric's current value is judged against its baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Must match the baseline within the tolerance band in *either*
    /// direction (deterministic quantities; tolerance usually 0).
    Exact,
    /// Regression = current meaningfully *above* baseline (latencies).
    LowerBetter,
    /// Regression = current meaningfully *below* baseline (throughput,
    /// speedups, attainment).
    HigherBetter,
}

impl Direction {
    /// Stable label used in the baseline file.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Exact => "exact",
            Direction::LowerBetter => "lower_better",
            Direction::HigherBetter => "higher_better",
        }
    }

    /// Parses a baseline-file label.
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "exact" => Some(Direction::Exact),
            "lower_better" => Some(Direction::LowerBetter),
            "higher_better" => Some(Direction::HigherBetter),
            _ => None,
        }
    }
}

/// One gated metric: where to find it and how much it may move.
#[derive(Clone, Debug)]
pub struct MetricSpec {
    /// Dotted path, first segment `simperf` or `serve`.
    pub path: String,
    /// Allowed drift, percent of the baseline value.
    pub tolerance_pct: f64,
    /// Which direction of drift counts as a regression.
    pub direction: Direction,
}

impl MetricSpec {
    fn new(path: &str, tolerance_pct: f64, direction: Direction) -> Self {
        MetricSpec {
            path: path.to_string(),
            tolerance_pct,
            direction,
        }
    }
}

/// The default gate: deterministic sim metrics exact, wall-clock
/// metrics with wide bands.
pub fn default_specs() -> Vec<MetricSpec> {
    use Direction::*;
    vec![
        // Simulated cycle counts are bit-deterministic: any drift is a
        // real change to the timing model.
        MetricSpec::new(
            "simperf.scenes[scene=wknd,policy=cooprt].cycles",
            0.0,
            Exact,
        ),
        MetricSpec::new(
            "simperf.scenes[scene=wknd,policy=baseline].cycles",
            0.0,
            Exact,
        ),
        MetricSpec::new(
            "simperf.scenes[scene=spnza,policy=cooprt].cycles",
            0.0,
            Exact,
        ),
        MetricSpec::new(
            "simperf.reorder[scene=wknd,policy=cooprt,reorder=octant-hash].cycles",
            0.0,
            Exact,
        ),
        MetricSpec::new("simperf.scenes[scene=wknd,policy=cooprt].rays", 0.0, Exact),
        MetricSpec::new(
            "simperf.predict[scene=wknd,policy=cooprt,predict=ray-path].cycles",
            0.0,
            Exact,
        ),
        // Predictor quality: deterministic, but gated one-sided — a
        // drop in hit rate or fetch savings is the regression; getting
        // better is free.
        MetricSpec::new(
            "simperf.predict[scene=fox,policy=baseline,predict=ray-path].predicted_hit_rate",
            0.0,
            HigherBetter,
        ),
        MetricSpec::new(
            "simperf.predict[scene=fox,policy=baseline,predict=ray-path].node_fetches_saved",
            0.0,
            HigherBetter,
        ),
        // Spatial-query matrix: gather-mode cycle counts and probe
        // batches are bit-deterministic like the render matrix, and
        // every simperf run re-proves the answers exact against the
        // brute-force oracle before these rows are written.
        MetricSpec::new(
            "simperf.query[scene=quni,policy=cooprt,reorder=off].cycles",
            0.0,
            Exact,
        ),
        MetricSpec::new(
            "simperf.query[scene=qclu,policy=baseline,reorder=off].cycles",
            0.0,
            Exact,
        ),
        MetricSpec::new(
            "simperf.query[scene=qamr,policy=cooprt,reorder=morton].cycles",
            0.0,
            Exact,
        ),
        MetricSpec::new(
            "simperf.query[scene=qsrf,policy=cooprt,reorder=off].rays",
            0.0,
            Exact,
        ),
        // Query throughput: wall clock, order-of-magnitude guard only.
        MetricSpec::new(
            "simperf.query[scene=quni,policy=cooprt,reorder=off].rays_per_sec",
            80.0,
            HigherBetter,
        ),
        // Wall-clock throughput: machine-dependent, order-of-magnitude
        // guard only.
        MetricSpec::new(
            "simperf.scenes[scene=wknd,policy=cooprt].wall_secs",
            150.0,
            LowerBetter,
        ),
        MetricSpec::new("serve.cold.requests_per_sec", 80.0, HigherBetter),
        MetricSpec::new("serve.warm.requests_per_sec", 80.0, HigherBetter),
        MetricSpec::new("serve.warm.latency_us.p99", 300.0, LowerBetter),
        MetricSpec::new("serve.warm_cold_speedup", 80.0, HigherBetter),
        // Cache behavior through the service is deterministic.
        MetricSpec::new("serve.result_cache.hit_rate", 0.0, Exact),
        // Rolling-window SLO attainment from the loadgen run.
        MetricSpec::new("serve.slo.attainment", 5.0, HigherBetter),
    ]
}

/// Splits a dotted path into segments, keeping `[...]` selectors
/// attached to their segment.
fn split_segments(path: &str) -> Vec<&str> {
    let mut segments = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in path.bytes().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b'.' if depth == 0 => {
                segments.push(&path[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    segments.push(&path[start..]);
    segments
}

/// True when array element `elem` matches every `key=value` pair.
fn selector_matches(elem: &JsonValue, selector: &str) -> bool {
    selector.split(',').all(|pair| {
        let Some((key, want)) = pair.split_once('=') else {
            return false;
        };
        match elem.get(key.trim()) {
            Some(JsonValue::String(s)) => s == want.trim(),
            Some(JsonValue::Number(n)) => want.trim().parse::<f64>() == Ok(*n),
            _ => false,
        }
    })
}

/// Resolves a dotted path (without the leading source segment) inside
/// `doc`, returning the numeric value it names.
pub fn extract(doc: &JsonValue, path: &str) -> Result<f64, String> {
    let mut node = doc;
    for segment in split_segments(path) {
        let (name, selector) = match segment.split_once('[') {
            Some((name, rest)) => (name, rest.strip_suffix(']')),
            None => (segment, None),
        };
        node = node
            .get(name)
            .ok_or_else(|| format!("no field '{name}' in path '{path}'"))?;
        if let Some(selector) = selector {
            let JsonValue::Array(items) = node else {
                return Err(format!("'{name}' is not an array in path '{path}'"));
            };
            node = items
                .iter()
                .find(|e| selector_matches(e, selector))
                .ok_or_else(|| format!("no element matching [{selector}] in path '{path}'"))?;
        }
    }
    node.as_f64()
        .ok_or_else(|| format!("'{path}' is not a number"))
}

/// The verdict on one gated metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within the tolerance band (or an improvement).
    Ok,
    /// Outside the band in the regression direction.
    Regressed,
    /// The metric could not be extracted from the current report.
    Missing,
}

/// One row of a [`DiffReport`].
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// The metric's dotted path.
    pub path: String,
    /// Pinned baseline value.
    pub baseline: f64,
    /// Value in the current report (`None` when extraction failed).
    pub current: Option<f64>,
    /// Signed drift, percent of baseline (`None` when missing or the
    /// baseline is zero).
    pub delta_pct: Option<f64>,
    /// The judgement.
    pub verdict: Verdict,
    /// Extraction error detail for [`Verdict::Missing`] rows.
    pub detail: String,
}

/// The full comparison result.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// One row per baseline metric.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// True when no row regressed or went missing.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.verdict == Verdict::Ok)
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .rows
            .iter()
            .map(|r| r.path.len())
            .max()
            .unwrap_or(0)
            .max(6);
        for row in &self.rows {
            let status = match row.verdict {
                Verdict::Ok => "ok",
                Verdict::Regressed => "REGRESSED",
                Verdict::Missing => "MISSING",
            };
            let current = row
                .current
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".to_string());
            let delta = row
                .delta_pct
                .map(|d| format!("{d:+.2}%"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{:<width$}  base {:>12.4}  now {:>12}  delta {:>9}  {}{}\n",
                row.path,
                row.baseline,
                current,
                delta,
                status,
                if row.detail.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", row.detail)
                },
            ));
        }
        out
    }
}

/// Judges `current` against `baseline` under a spec's band.
fn judge(baseline: f64, current: f64, tolerance_pct: f64, direction: Direction) -> Verdict {
    let band = baseline.abs() * tolerance_pct / 100.0;
    let drift = current - baseline;
    let regressed = match direction {
        Direction::Exact => drift.abs() > band,
        Direction::LowerBetter => drift > band,
        Direction::HigherBetter => -drift > band,
    };
    if regressed {
        Verdict::Regressed
    } else {
        Verdict::Ok
    }
}

/// A pinned baseline: metric specs plus the values they held when the
/// baseline was written.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// `(spec, pinned value)` pairs.
    pub metrics: Vec<(MetricSpec, f64)>,
}

impl Baseline {
    /// Captures a baseline: every default-spec metric extracted from
    /// the given reports. Metrics missing from the reports are skipped
    /// (e.g. a serve report predating a newer field).
    pub fn capture(simperf: &JsonValue, serve: &JsonValue) -> Baseline {
        let metrics = default_specs()
            .into_iter()
            .filter_map(|spec| {
                let value = extract_spec(&spec, simperf, serve).ok()?;
                Some((spec, value))
            })
            .collect();
        Baseline { metrics }
    }

    /// Serializes the baseline to its checked-in JSON form.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("schema_version", 1);
        w.begin_array("metrics");
        for (spec, value) in &self.metrics {
            w.begin_inline_object();
            w.field_str("path", &spec.path);
            w.field_f64("value", *value, 6);
            w.field_f64("tolerance_pct", spec.tolerance_pct, 2);
            w.field_str("direction", spec.direction.label());
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parses a checked-in baseline file.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = parse_json(text).map_err(|e| format!("baseline parse error: {e}"))?;
        let Some(JsonValue::Array(items)) = doc.get("metrics") else {
            return Err("baseline has no 'metrics' array".to_string());
        };
        let mut metrics = Vec::new();
        for item in items {
            let path = item
                .get("path")
                .and_then(JsonValue::as_str)
                .ok_or("metric without 'path'")?
                .to_string();
            let value = item
                .get("value")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("metric '{path}' without 'value'"))?;
            let tolerance_pct = item
                .get("tolerance_pct")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            let direction = item
                .get("direction")
                .and_then(JsonValue::as_str)
                .and_then(Direction::parse)
                .ok_or_else(|| format!("metric '{path}' has an unknown direction"))?;
            metrics.push((
                MetricSpec {
                    path,
                    tolerance_pct,
                    direction,
                },
                value,
            ));
        }
        Ok(Baseline { metrics })
    }

    /// Compares the current reports against this baseline.
    pub fn compare(&self, simperf: &JsonValue, serve: &JsonValue) -> DiffReport {
        let rows = self
            .metrics
            .iter()
            .map(
                |(spec, baseline)| match extract_spec(spec, simperf, serve) {
                    Ok(current) => DiffRow {
                        path: spec.path.clone(),
                        baseline: *baseline,
                        current: Some(current),
                        delta_pct: (baseline.abs() > f64::EPSILON)
                            .then(|| (current - baseline) / baseline * 100.0),
                        verdict: judge(*baseline, current, spec.tolerance_pct, spec.direction),
                        detail: String::new(),
                    },
                    Err(detail) => DiffRow {
                        path: spec.path.clone(),
                        baseline: *baseline,
                        current: None,
                        delta_pct: None,
                        verdict: Verdict::Missing,
                        detail,
                    },
                },
            )
            .collect();
        DiffReport { rows }
    }
}

/// Routes a spec to its source report by the leading path segment and
/// extracts the value.
fn extract_spec(spec: &MetricSpec, simperf: &JsonValue, serve: &JsonValue) -> Result<f64, String> {
    let (source, rest) = spec
        .path
        .split_once('.')
        .ok_or_else(|| format!("path '{}' has no source prefix", spec.path))?;
    match source {
        "simperf" => extract(simperf, rest),
        "serve" => extract(serve, rest),
        other => Err(format!("unknown source '{other}' in '{}'", spec.path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        parse_json(
            r#"{
                "scenes": [
                    {"scene": "wknd", "policy": "baseline", "cycles": 100, "wall_secs": 0.5},
                    {"scene": "wknd", "policy": "cooprt", "cycles": 60, "wall_secs": 0.6}
                ],
                "nested": {"deep": {"value": 7}},
                "speedup": 1.25
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn dotted_paths_resolve_plain_and_nested_fields() {
        let doc = sample();
        assert_eq!(extract(&doc, "speedup").unwrap(), 1.25);
        assert_eq!(extract(&doc, "nested.deep.value").unwrap(), 7.0);
        assert!(extract(&doc, "nested.missing").is_err());
        assert!(extract(&doc, "nested").is_err(), "objects are not numbers");
    }

    #[test]
    fn selectors_pick_the_matching_array_row() {
        let doc = sample();
        assert_eq!(
            extract(&doc, "scenes[scene=wknd,policy=cooprt].cycles").unwrap(),
            60.0
        );
        assert_eq!(
            extract(&doc, "scenes[scene=wknd,policy=baseline].cycles").unwrap(),
            100.0
        );
        assert!(extract(&doc, "scenes[scene=nope,policy=cooprt].cycles").is_err());
        assert!(extract(&doc, "speedup[x=1].y").is_err(), "not an array");
    }

    #[test]
    fn judgement_respects_direction_and_band() {
        use Direction::*;
        // Exact: any drift beyond the band regresses, both directions.
        assert_eq!(judge(100.0, 100.0, 0.0, Exact), Verdict::Ok);
        assert_eq!(judge(100.0, 101.0, 0.0, Exact), Verdict::Regressed);
        assert_eq!(judge(100.0, 99.0, 0.0, Exact), Verdict::Regressed);
        assert_eq!(judge(100.0, 104.0, 5.0, Exact), Verdict::Ok);
        // LowerBetter: only upward drift regresses.
        assert_eq!(judge(100.0, 140.0, 50.0, LowerBetter), Verdict::Ok);
        assert_eq!(judge(100.0, 151.0, 50.0, LowerBetter), Verdict::Regressed);
        assert_eq!(judge(100.0, 10.0, 50.0, LowerBetter), Verdict::Ok);
        // HigherBetter: only downward drift regresses.
        assert_eq!(judge(100.0, 60.0, 50.0, HigherBetter), Verdict::Ok);
        assert_eq!(judge(100.0, 49.0, 50.0, HigherBetter), Verdict::Regressed);
        assert_eq!(judge(100.0, 1000.0, 50.0, HigherBetter), Verdict::Ok);
    }

    #[test]
    fn baselines_round_trip_through_json() {
        let simperf = sample();
        let serve = parse_json(
            r#"{
                "cold": {"requests_per_sec": 1000.0},
                "warm": {"requests_per_sec": 30000.0, "latency_us": {"p99": 500}},
                "warm_cold_speedup": 30.0,
                "result_cache": {"hit_rate": 0.5},
                "slo": {"attainment": 1.0}
            }"#,
        )
        .unwrap();
        let captured = Baseline::capture(&simperf, &serve);
        // The sample simperf doc lacks spnza/reorder rows; those specs
        // are skipped at capture, the rest survive.
        assert!(captured.metrics.len() >= 8, "{:?}", captured.metrics);
        let parsed = Baseline::from_json(&captured.to_json()).unwrap();
        assert_eq!(parsed.metrics.len(), captured.metrics.len());
        // Comparing a report against a baseline captured from it is
        // all-ok by construction.
        let report = parsed.compare(&simperf, &serve);
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn regressions_and_missing_metrics_fail_the_report() {
        let simperf = sample();
        let serve = parse_json(r#"{"warm_cold_speedup": 30.0}"#).unwrap();
        let baseline = Baseline {
            metrics: vec![
                (
                    MetricSpec::new(
                        "simperf.scenes[scene=wknd,policy=cooprt].cycles",
                        0.0,
                        Direction::Exact,
                    ),
                    61.0, // report says 60 → exact mismatch
                ),
                (
                    MetricSpec::new("serve.warm_cold_speedup", 10.0, Direction::HigherBetter),
                    31.0, // 30 vs 31: within 10%
                ),
                (
                    MetricSpec::new("serve.not.there", 0.0, Direction::Exact),
                    1.0,
                ),
            ],
        };
        let report = baseline.compare(&simperf, &serve);
        assert!(!report.passed());
        assert_eq!(report.rows[0].verdict, Verdict::Regressed);
        assert_eq!(report.rows[1].verdict, Verdict::Ok);
        assert_eq!(report.rows[2].verdict, Verdict::Missing);
        let rendered = report.render();
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("MISSING"));
    }
}
