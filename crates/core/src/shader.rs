//! Shader drivers: the raygen loops that issue `trace_ray` instructions.
//!
//! Listing 1 of the paper is a path-tracing raygen shader: compute the
//! primary ray, then loop `NUM_BOUNCES` times — trace, break on miss or
//! absorption, otherwise scatter and continue. §7.3 adds the lightweight
//! ambient-occlusion (AO) and shadow (SH) shaders whose secondary rays
//! are short and coherent.
//!
//! The shading here is *functional* — it runs on the host between
//! simulated `trace_ray` instructions, exactly like Vulkan-sim's
//! functional simulator — while all traversal timing comes from the RT
//! unit model. Shading must be deterministic in the trace results alone,
//! so baseline and CoopRT runs produce bit-identical images.

use crate::config::GpuConfig;
use crate::rtunit::RayHit;
use cooprt_math::{cosine_hemisphere, Onb, Ray, Rgb, Vec3};
use cooprt_scenes::{Material, Scatter, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which ray-tracing workload the raygen shader runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ShaderKind {
    /// Full path tracing (Listing 1): up to `max_bounces` bounces.
    #[default]
    PathTrace,
    /// Ambient occlusion: primary ray + a few short hemisphere rays.
    AmbientOcclusion,
    /// Ray-traced shadows: primary ray + rays toward the light.
    Shadow,
    /// Spatial query: k nearest neighbors within the domain radius
    /// (RTNN-style gather traversal over a point-cloud BVH).
    Knn,
    /// Spatial query: all points within the domain radius.
    Radius,
    /// Spatial query: point-in-cell containment on an AMR grid
    /// (Zellmann-style closest-hit probe against cell boxes).
    Contain,
}

impl ShaderKind {
    /// Stable short key, used in benchmark tables, trace headers and
    /// canonical serve cache keys. Renaming a key invalidates pinned
    /// BENCH rows and serve caches; treat these as frozen.
    pub fn key(self) -> &'static str {
        match self {
            ShaderKind::PathTrace => "pt",
            ShaderKind::AmbientOcclusion => "ao",
            ShaderKind::Shadow => "sh",
            ShaderKind::Knn => "knn",
            ShaderKind::Radius => "rad",
            ShaderKind::Contain => "cont",
        }
    }

    /// True if the `trace_ray` at `iteration` uses any-hit semantics
    /// (AO/SH secondary rays accept the first intersection). Query
    /// kinds never use any-hit: gather traversal must enumerate every
    /// overlapping primitive, and the containment probe needs the
    /// closest face.
    pub fn wants_anyhit(self, iteration: u32) -> bool {
        match self {
            ShaderKind::PathTrace => false,
            ShaderKind::AmbientOcclusion | ShaderKind::Shadow => iteration >= 1,
            ShaderKind::Knn | ShaderKind::Radius | ShaderKind::Contain => false,
        }
    }

    /// True for the gather-traversal query kinds (kNN / radius), whose
    /// probe rays enumerate primitives containing the query point
    /// instead of intersecting along the ray.
    pub fn is_gather(self) -> bool {
        matches!(self, ShaderKind::Knn | ShaderKind::Radius)
    }

    /// True for every spatial-query kind (needs a scene with a
    /// [`cooprt_scenes::QueryDomain`]).
    pub fn is_query(self) -> bool {
        matches!(
            self,
            ShaderKind::Knn | ShaderKind::Radius | ShaderKind::Contain
        )
    }
}

/// Offset applied along the surface normal when spawning secondary rays,
/// to avoid self-intersection.
const RAY_BIAS: f32 = 1.0e-3;

/// `t_max` for gather-mode probe rays: gather traversal never reads it,
/// but a near-zero bound keeps the "zero-length ray" semantics honest
/// everywhere else (no triangle can intersect within it — see
/// `cooprt_math::Ray::probe`).
pub const PROBE_T_MAX: f32 = 1.0e-4;

/// Per-thread raygen shader state (one pixel).
#[derive(Debug)]
pub struct ShaderThread {
    rng: StdRng,
    /// The ray to trace in the current iteration; `None` once the thread
    /// has exited the bounce loop (masked off in hardware).
    pub ray: Option<Ray>,
    /// Search limit for the current ray.
    pub t_max: f32,
    /// Accumulated pixel color.
    pub color: Rgb,
    throughput: Rgb,
    bounces: u32,
    // AO/SH state recorded at the primary hit.
    base_point: Vec3,
    base_normal: Vec3,
    base_albedo: Rgb,
    secondary_done: u32,
    secondary_hits: u32,
    // Query state: the sampled query point and the answer (point
    // indices for kNN/radius, the cell id for containment).
    query_point: Vec3,
    /// Query answer for query kinds (empty otherwise): sorted point
    /// indices for radius search, the k nearest (by distance, then
    /// index) for kNN, the containing cell id for containment.
    pub query_hits: Vec<u32>,
}

impl ShaderThread {
    /// Initializes the shader for one pixel: seeds the RNG and computes
    /// the primary ray through pixel coordinates `(u, v)`.
    pub fn begin(scene: &Scene, pixel_index: usize, u: f32, v: f32) -> Self {
        Self::begin_with_salt(scene, pixel_index, u, v, 0)
    }

    /// [`ShaderThread::begin`] with a sample-index salt, so multiple
    /// samples per pixel draw independent random sequences.
    pub fn begin_with_salt(scene: &Scene, pixel_index: usize, u: f32, v: f32, salt: u64) -> Self {
        let seed = 0x5EED_C0DE
            ^ (pixel_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03);
        ShaderThread {
            rng: StdRng::seed_from_u64(seed),
            ray: Some(scene.camera.primary_ray(u, v)),
            t_max: f32::INFINITY,
            color: Rgb::BLACK,
            throughput: Rgb::WHITE,
            bounces: 0,
            base_point: Vec3::ZERO,
            base_normal: Vec3::Y,
            base_albedo: Rgb::BLACK,
            secondary_done: 0,
            secondary_hits: 0,
            query_point: Vec3::ZERO,
            query_hits: Vec::new(),
        }
    }

    /// Deterministically samples the query point for `pixel_index` /
    /// `salt` from the scene's query domain. Shared by the engine-side
    /// driver ([`ShaderThread::begin_query`]) and the brute-force
    /// oracle, so both sides answer the *same* question.
    ///
    /// # Panics
    ///
    /// Panics if the scene has no query domain (the engine validates
    /// this up front with a typed `ConfigError`).
    pub fn query_point(scene: &Scene, pixel_index: usize, salt: u64) -> Vec3 {
        let domain = scene
            .query
            .as_ref()
            .expect("query shaders need a scene with a QueryDomain");
        let seed = 0x5EED_C0DE
            ^ (pixel_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03);
        let mut rng = StdRng::seed_from_u64(seed);
        domain.sample_query_point(&mut rng)
    }

    /// Initializes a query-shader thread: samples the query point and
    /// issues its probe ray ([`cooprt_math::Ray::probe`]). Gather kinds
    /// (kNN/radius) bound the probe at [`PROBE_T_MAX`]; the containment
    /// probe travels to its cell's `+X` face, so it keeps `t` open.
    pub fn begin_query(scene: &Scene, kind: ShaderKind, pixel_index: usize, salt: u64) -> Self {
        debug_assert!(kind.is_query());
        let q = Self::query_point(scene, pixel_index, salt);
        let mut thread = Self::masked();
        thread.query_point = q;
        thread.ray = Some(Ray::probe(q));
        thread.t_max = if kind.is_gather() {
            PROBE_T_MAX
        } else {
            f32::INFINITY
        };
        thread
    }

    /// A thread with no pixel (image smaller than the warp): masked off
    /// from the start.
    pub fn masked() -> Self {
        ShaderThread {
            rng: StdRng::seed_from_u64(0),
            ray: None,
            t_max: f32::INFINITY,
            color: Rgb::BLACK,
            throughput: Rgb::WHITE,
            bounces: 0,
            base_point: Vec3::ZERO,
            base_normal: Vec3::Y,
            base_albedo: Rgb::BLACK,
            secondary_done: 0,
            secondary_hits: 0,
            query_point: Vec3::ZERO,
            query_hits: Vec::new(),
        }
    }

    /// Consumes the result of the thread's `trace_ray` and advances the
    /// raygen loop: either sets the next ray ([`ShaderThread::ray`]
    /// becomes `Some`) or exits the loop (`None`), finalizing
    /// [`ShaderThread::color`].
    ///
    /// Does nothing for masked threads.
    /// `gathered` carries the triangles the gather traversal collected
    /// for this thread (query kinds only; render kinds ignore it).
    pub fn resume(
        &mut self,
        kind: ShaderKind,
        cfg: &GpuConfig,
        scene: &Scene,
        hit: Option<RayHit>,
        gathered: &[u32],
    ) {
        let Some(ray) = self.ray else { return };
        match kind {
            ShaderKind::PathTrace => self.resume_pt(cfg, scene, ray, hit),
            ShaderKind::AmbientOcclusion => self.resume_ao(cfg, scene, ray, hit),
            ShaderKind::Shadow => self.resume_sh(cfg, scene, ray, hit),
            ShaderKind::Knn | ShaderKind::Radius => self.resume_gather(kind, scene, gathered),
            ShaderKind::Contain => self.resume_contain(scene, hit),
        }
    }

    /// kNN / radius search: the gather traversal returned every
    /// triangle whose AABB contains the query point — a conservative
    /// candidate superset (see `cooprt_scenes::query`). Map triangles
    /// to primitives, apply the exact distance filter, and rank.
    fn resume_gather(&mut self, kind: ShaderKind, scene: &Scene, gathered: &[u32]) {
        let domain = scene
            .query
            .as_ref()
            .expect("gather resume on a scene without a QueryDomain");
        let q = self.query_point;
        // `gathered` is sorted; primitive ids inherit the order, so a
        // linear dedup suffices.
        let mut candidates: Vec<u32> = gathered
            .iter()
            .filter_map(|&t| domain.primitive_of(t))
            .map(|p| p as u32)
            .collect();
        candidates.dedup();
        candidates.retain(|&p| domain.within_radius(q, p as usize));
        if kind == ShaderKind::Knn {
            // Rank by (exact f32 distance bits, point index) — the same
            // total order the oracle uses — and keep the k nearest.
            candidates.sort_by_key(|&p| {
                (
                    (domain.points[p as usize] - q).length_squared().to_bits(),
                    p,
                )
            });
            candidates.truncate(domain.k);
        }
        self.finish_query(candidates);
    }

    /// Point-in-cell containment: the closest hit from inside a cell is
    /// that cell's own `+X` face (cells are disjoint and gap-separated),
    /// so the hit triangle names the cell.
    fn resume_contain(&mut self, scene: &Scene, hit: Option<RayHit>) {
        let domain = scene
            .query
            .as_ref()
            .expect("containment resume on a scene without a QueryDomain");
        let hits = match hit.and_then(|h| domain.primitive_of(h.triangle)) {
            Some(cell) => vec![cell as u32],
            None => Vec::new(),
        };
        self.finish_query(hits);
    }

    /// Stores the answer and derives the pixel color from it, so the
    /// image-identity oracles (baseline vs CoopRT, record/replay,
    /// reorder, predict) keep biting on query workloads: any divergence
    /// in the *answer* shows up as a pixel difference.
    fn finish_query(&mut self, hits: Vec<u32>) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &x in &hits {
            h = (h ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ hits.len() as u64).wrapping_mul(0x0000_0100_0000_01b3);
        self.color = Rgb::new(
            (h >> 8 & 0xFF) as f32 / 255.0,
            (h >> 24 & 0xFF) as f32 / 255.0,
            (h >> 40 & 0xFF) as f32 / 255.0,
        );
        self.query_hits = hits;
        self.ray = None;
    }

    fn resume_pt(&mut self, cfg: &GpuConfig, scene: &Scene, ray: Ray, hit: Option<RayHit>) {
        self.bounces += 1;
        let Some(h) = hit else {
            // Escaped the scene: collect the environment and exit.
            self.color += self.throughput.attenuate(scene.sky.radiance(ray.dir));
            self.ray = None;
            return;
        };
        let tri = scene.image.triangle(h.triangle);
        let normal = tri.normal();
        match scene
            .material(h.triangle)
            .scatter(ray.dir, normal, &mut self.rng)
        {
            Scatter::Emit(radiance) => {
                self.color += self.throughput.attenuate(radiance);
                self.ray = None;
            }
            Scatter::Absorb => {
                self.ray = None;
            }
            Scatter::Bounce { dir, attenuation } => {
                self.throughput = self.throughput.attenuate(attenuation);
                if self.bounces >= cfg.max_bounces {
                    self.ray = None;
                } else {
                    // Bias the origin toward the side the new ray
                    // departs on (refracted rays cross the surface).
                    let n = if ray.dir.dot(normal) < 0.0 {
                        normal
                    } else {
                        -normal
                    };
                    let side = if dir.dot(n) >= 0.0 { n } else { -n };
                    self.ray = Some(Ray::new(ray.at(h.t) + side * RAY_BIAS, dir));
                }
            }
        }
    }

    fn record_base_hit(&mut self, scene: &Scene, ray: Ray, h: RayHit) {
        let tri = scene.image.triangle(h.triangle);
        let normal = tri.normal();
        self.base_normal = if ray.dir.dot(normal) < 0.0 {
            normal
        } else {
            -normal
        };
        self.base_point = ray.at(h.t) + self.base_normal * RAY_BIAS;
        self.base_albedo = match *scene.material(h.triangle) {
            Material::Lambertian { albedo } | Material::Metal { albedo, .. } => albedo,
            Material::Emissive { radiance } => radiance,
            Material::Dielectric { .. } => Rgb::WHITE,
        };
    }

    fn resume_ao(&mut self, cfg: &GpuConfig, scene: &Scene, ray: Ray, hit: Option<RayHit>) {
        if self.bounces == 0 {
            // Primary ray.
            self.bounces = 1;
            match hit {
                None => {
                    self.color = scene.sky.radiance(ray.dir);
                    self.ray = None;
                }
                Some(h) => {
                    self.record_base_hit(scene, ray, h);
                    self.spawn_ao_ray(cfg);
                }
            }
            return;
        }
        // An occlusion ray came back.
        self.secondary_done += 1;
        if hit.is_some() {
            self.secondary_hits += 1;
        }
        if self.secondary_done < cfg.ao_samples {
            self.spawn_ao_ray(cfg);
        } else {
            let visibility = 1.0 - self.secondary_hits as f32 / cfg.ao_samples.max(1) as f32;
            self.color = self.base_albedo * visibility;
            self.ray = None;
        }
    }

    fn spawn_ao_ray(&mut self, cfg: &GpuConfig) {
        let dir = Onb::from_w(self.base_normal).to_world(cosine_hemisphere(&mut self.rng));
        self.ray = Some(Ray::new(self.base_point, dir));
        self.t_max = cfg.ao_radius;
    }

    fn resume_sh(&mut self, cfg: &GpuConfig, scene: &Scene, ray: Ray, hit: Option<RayHit>) {
        if self.bounces == 0 {
            self.bounces = 1;
            match hit {
                None => {
                    self.color = scene.sky.radiance(ray.dir);
                    self.ray = None;
                }
                Some(h) => {
                    self.record_base_hit(scene, ray, h);
                    self.spawn_shadow_ray(scene);
                }
            }
            return;
        }
        self.secondary_done += 1;
        if hit.is_some() {
            self.secondary_hits += 1;
        }
        if self.secondary_done < cfg.sh_samples {
            self.spawn_shadow_ray(scene);
        } else {
            let lit = 1.0 - self.secondary_hits as f32 / cfg.sh_samples.max(1) as f32;
            // Direct lighting: albedo scaled by visibility plus a small
            // ambient floor so shadowed pixels are not pure black.
            self.color = self.base_albedo * (0.15 + 0.85 * lit);
            self.ray = None;
        }
    }

    fn spawn_shadow_ray(&mut self, scene: &Scene) {
        match scene.sample_light_point(&mut self.rng) {
            Some(target) => {
                let to_light = target - self.base_point;
                let dist = to_light.length();
                if dist <= RAY_BIAS {
                    // Degenerate: shading point on the light itself.
                    self.ray = Some(Ray::new(self.base_point, self.base_normal));
                    self.t_max = RAY_BIAS;
                } else {
                    self.ray = Some(Ray::new(self.base_point, to_light));
                    self.t_max = dist - RAY_BIAS;
                }
            }
            None => {
                // No lights: a fixed "sun" direction, as open daylight
                // scenes are lit by the sky.
                let sun = Vec3::new(0.4, 1.0, 0.25).normalized();
                self.ray = Some(Ray::from_unit(self.base_point, sun));
                self.t_max = f32::INFINITY;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_scenes::SceneId;

    fn scene() -> Scene {
        SceneId::Wknd.build(2)
    }

    fn cfg() -> GpuConfig {
        GpuConfig::small(1)
    }

    #[test]
    fn any_hit_schedule_per_kind() {
        assert!(!ShaderKind::PathTrace.wants_anyhit(0));
        assert!(!ShaderKind::PathTrace.wants_anyhit(5));
        assert!(!ShaderKind::AmbientOcclusion.wants_anyhit(0));
        assert!(ShaderKind::AmbientOcclusion.wants_anyhit(1));
        assert!(ShaderKind::Shadow.wants_anyhit(2));
        // Query kinds never use any-hit: gather traversal needs full
        // enumeration, containment needs the true closest hit.
        for it in [0, 1, 5] {
            assert!(!ShaderKind::Knn.wants_anyhit(it));
            assert!(!ShaderKind::Radius.wants_anyhit(it));
            assert!(!ShaderKind::Contain.wants_anyhit(it));
        }
    }

    #[test]
    fn masked_thread_never_traces() {
        let mut t = ShaderThread::masked();
        assert!(t.ray.is_none());
        t.resume(ShaderKind::PathTrace, &cfg(), &scene(), None, &[]);
        assert!(t.ray.is_none());
        assert_eq!(t.color, Rgb::BLACK);
    }

    #[test]
    fn pt_miss_collects_sky_and_exits() {
        let s = scene();
        let mut t = ShaderThread::begin(&s, 0, 0.5, 0.9);
        let dir = t.ray.unwrap().dir;
        t.resume(ShaderKind::PathTrace, &cfg(), &s, None, &[]);
        assert!(t.ray.is_none());
        assert_eq!(t.color, s.sky.radiance(dir));
    }

    #[test]
    fn pt_bounce_continues_until_limit() {
        let s = scene();
        let mut c = cfg();
        c.max_bounces = 3;
        let mut t = ShaderThread::begin(&s, 1, 0.5, 0.3);
        // Feed it fake diffuse hits until it exhausts its bounce budget.
        let mut bounces = 0;
        while t.ray.is_some() && bounces < 10 {
            // Hit the ground quad (triangle 0, lambertian).
            t.resume(
                ShaderKind::PathTrace,
                &c,
                &s,
                Some(RayHit {
                    triangle: 0,
                    t: 5.0,
                }),
                &[],
            );
            bounces += 1;
        }
        assert!(t.ray.is_none());
        assert_eq!(bounces, 3, "bounce budget must cap the loop");
    }

    #[test]
    fn pt_is_deterministic_per_pixel() {
        let s = scene();
        let mut a = ShaderThread::begin(&s, 42, 0.4, 0.4);
        let mut b = ShaderThread::begin(&s, 42, 0.4, 0.4);
        let hit = Some(RayHit {
            triangle: 0,
            t: 8.0,
        });
        a.resume(ShaderKind::PathTrace, &cfg(), &s, hit, &[]);
        b.resume(ShaderKind::PathTrace, &cfg(), &s, hit, &[]);
        assert_eq!(a.ray, b.ray, "same seed + same hits = same scatter");
        // Different pixel index -> different stream.
        let mut c = ShaderThread::begin(&s, 43, 0.4, 0.4);
        c.resume(ShaderKind::PathTrace, &cfg(), &s, hit, &[]);
        assert_ne!(a.ray, c.ray);
    }

    #[test]
    fn ao_counts_occlusion() {
        let s = scene();
        let c = cfg();
        let mut t = ShaderThread::begin(&s, 7, 0.5, 0.2);
        // Primary hit on the ground.
        t.resume(
            ShaderKind::AmbientOcclusion,
            &c,
            &s,
            Some(RayHit {
                triangle: 0,
                t: 10.0,
            }),
            &[],
        );
        assert!(t.ray.is_some(), "AO rays must follow the primary hit");
        assert_eq!(t.t_max, c.ao_radius, "AO rays are short");
        // All AO rays occluded -> black.
        for _ in 0..c.ao_samples {
            assert!(t.ray.is_some());
            t.resume(
                ShaderKind::AmbientOcclusion,
                &c,
                &s,
                Some(RayHit {
                    triangle: 1,
                    t: 0.5,
                }),
                &[],
            );
        }
        assert!(t.ray.is_none());
        assert_eq!(t.color, Rgb::BLACK);
    }

    #[test]
    fn ao_unoccluded_keeps_albedo() {
        let s = scene();
        let c = cfg();
        let mut t = ShaderThread::begin(&s, 8, 0.5, 0.2);
        t.resume(
            ShaderKind::AmbientOcclusion,
            &c,
            &s,
            Some(RayHit {
                triangle: 0,
                t: 10.0,
            }),
            &[],
        );
        for _ in 0..c.ao_samples {
            t.resume(ShaderKind::AmbientOcclusion, &c, &s, None, &[]);
        }
        assert!(t.ray.is_none());
        assert!(t.color.luminance() > 0.0, "open sky -> full albedo");
    }

    #[test]
    fn ao_primary_miss_shows_sky() {
        let s = scene();
        let mut t = ShaderThread::begin(&s, 9, 0.5, 0.95);
        let dir = t.ray.unwrap().dir;
        t.resume(ShaderKind::AmbientOcclusion, &cfg(), &s, None, &[]);
        assert!(t.ray.is_none());
        assert_eq!(t.color, s.sky.radiance(dir));
    }

    #[test]
    fn shadow_rays_target_light_or_sun() {
        let s = scene(); // wknd has no lights -> sun fallback
        let c = cfg();
        let mut t = ShaderThread::begin(&s, 11, 0.5, 0.3);
        t.resume(
            ShaderKind::Shadow,
            &c,
            &s,
            Some(RayHit {
                triangle: 0,
                t: 10.0,
            }),
            &[],
        );
        let shadow = t.ray.expect("shadow ray follows the primary hit");
        assert!(shadow.dir.y > 0.5, "sun fallback points upward");
        // Lit scene: shadow rays have finite t_max toward the light.
        let lit = SceneId::Bath.build(2);
        let mut t2 = ShaderThread::begin(&lit, 12, 0.5, 0.5);
        t2.resume(
            ShaderKind::Shadow,
            &c,
            &lit,
            Some(RayHit {
                triangle: 0,
                t: 5.0,
            }),
            &[],
        );
        assert!(t2.ray.is_some());
        assert!(t2.t_max.is_finite());
    }

    #[test]
    fn shadow_occlusion_darkens() {
        let s = SceneId::Bath.build(2);
        let c = cfg();
        let shade = |occluded: bool| {
            let mut t = ShaderThread::begin(&s, 13, 0.5, 0.5);
            t.resume(
                ShaderKind::Shadow,
                &c,
                &s,
                Some(RayHit {
                    triangle: 0,
                    t: 5.0,
                }),
                &[],
            );
            for _ in 0..c.sh_samples {
                let hit = occluded.then_some(RayHit {
                    triangle: 1,
                    t: 0.3,
                });
                t.resume(ShaderKind::Shadow, &c, &s, hit, &[]);
            }
            assert!(t.ray.is_none());
            t.color
        };
        assert!(shade(true).luminance() < shade(false).luminance());
    }

    #[test]
    fn keys_are_frozen() {
        // These short keys appear in canonical serve cache keys and
        // BENCH row identifiers — changing one invalidates pins.
        assert_eq!(ShaderKind::PathTrace.key(), "pt");
        assert_eq!(ShaderKind::AmbientOcclusion.key(), "ao");
        assert_eq!(ShaderKind::Shadow.key(), "sh");
        assert_eq!(ShaderKind::Knn.key(), "knn");
        assert_eq!(ShaderKind::Radius.key(), "rad");
        assert_eq!(ShaderKind::Contain.key(), "cont");
    }

    #[test]
    fn query_kind_classification() {
        for k in [ShaderKind::Knn, ShaderKind::Radius] {
            assert!(k.is_query());
            assert!(k.is_gather());
        }
        assert!(ShaderKind::Contain.is_query());
        assert!(!ShaderKind::Contain.is_gather());
        for k in [
            ShaderKind::PathTrace,
            ShaderKind::AmbientOcclusion,
            ShaderKind::Shadow,
        ] {
            assert!(!k.is_query());
            assert!(!k.is_gather());
        }
    }

    #[test]
    fn query_threads_probe_from_a_deterministic_point() {
        let s = SceneId::Quni.build(2);
        let a = ShaderThread::begin_query(&s, ShaderKind::Knn, 5, 7);
        let b = ShaderThread::begin_query(&s, ShaderKind::Knn, 5, 7);
        assert_eq!(a.ray, b.ray, "same (pixel, salt) -> same probe");
        assert_eq!(
            a.ray.unwrap().orig,
            ShaderThread::query_point(&s, 5, 7),
            "probe anchors at the shared query point"
        );
        assert_eq!(a.t_max, PROBE_T_MAX, "gather probes are epsilon rays");
        let c = ShaderThread::begin_query(&s, ShaderKind::Knn, 6, 7);
        assert_ne!(a.ray.unwrap().orig, c.ray.unwrap().orig);
        // Containment probes are ordinary closest-hit rays.
        let cells = SceneId::Qamr.build(2);
        let d = ShaderThread::begin_query(&cells, ShaderKind::Contain, 0, 0);
        assert_eq!(d.t_max, f32::INFINITY);
    }

    #[test]
    fn radius_resume_filters_and_dedupes_candidates() {
        let s = SceneId::Quni.build(2);
        let domain = s.query.as_ref().unwrap();
        let tpp = domain.tris_per_prim;
        // Feed every triangle of every point as the gathered candidate
        // set (a maximally sloppy superset, each prim repeated 8x).
        let all: Vec<u32> = (0..domain.points.len() as u32 * tpp).collect();
        let mut found_neighbors = false;
        for pixel in 0..64 {
            let mut t = ShaderThread::begin_query(&s, ShaderKind::Radius, pixel, 1);
            let q = t.query_point;
            t.resume(ShaderKind::Radius, &cfg(), &s, None, &all);
            assert!(t.ray.is_none(), "queries are single-trace");
            // The answer must be exactly the in-radius points, ascending,
            // with the per-prim duplicates collapsed.
            let expect: Vec<u32> = (0..domain.points.len())
                .filter(|&p| domain.within_radius(q, p))
                .map(|p| p as u32)
                .collect();
            assert_eq!(t.query_hits, expect);
            found_neighbors |= !expect.is_empty();
        }
        assert!(found_neighbors, "some query point should find neighbors");
    }

    #[test]
    fn knn_resume_ranks_by_distance_and_truncates() {
        let s = SceneId::Quni.build(2);
        let domain = s.query.as_ref().unwrap();
        let mut t = ShaderThread::begin_query(&s, ShaderKind::Knn, 9, 2);
        let q = t.query_point;
        let all: Vec<u32> = (0..domain.points.len() as u32 * domain.tris_per_prim).collect();
        t.resume(ShaderKind::Knn, &cfg(), &s, None, &all);
        assert!(t.query_hits.len() <= domain.k);
        let dist = |p: u32| (domain.points[p as usize] - q).length_squared().to_bits();
        for w in t.query_hits.windows(2) {
            assert!(
                (dist(w[0]), w[0]) < (dist(w[1]), w[1]),
                "sorted by (dist, idx)"
            );
        }
        for &p in &t.query_hits {
            assert!(domain.within_radius(q, p as usize));
        }
    }

    #[test]
    fn contain_resume_names_the_hit_cell() {
        let s = SceneId::Qamr.build(2);
        let domain = s.query.as_ref().unwrap();
        let mut t = ShaderThread::begin_query(&s, ShaderKind::Contain, 4, 3);
        let expected = domain.cell_containing(t.query_point);
        // The closest hit from inside a cell is one of that cell's own
        // triangles; simulate it directly.
        let hit = expected.map(|cell| RayHit {
            triangle: domain.prim_base + cell as u32 * domain.tris_per_prim,
            t: 1.0,
        });
        t.resume(ShaderKind::Contain, &cfg(), &s, hit, &[]);
        assert!(t.ray.is_none());
        let expect: Vec<u32> = expected.into_iter().map(|c| c as u32).collect();
        assert_eq!(t.query_hits, expect);
        assert_eq!(expect.len(), 1, "guard-band sampling keeps points in cells");
    }

    #[test]
    fn query_answers_drive_the_pixel_color() {
        let s = SceneId::Qamr.build(2);
        let shade = |hits: &[u32]| {
            let mut t = ShaderThread::begin_query(&s, ShaderKind::Contain, 0, 0);
            t.finish_query(hits.to_vec());
            t.color
        };
        assert_eq!(
            shade(&[3]),
            shade(&[3]),
            "color is a pure function of the answer"
        );
        assert_ne!(
            shade(&[3]),
            shade(&[4]),
            "different answers must differ visibly"
        );
        assert_ne!(shade(&[]), shade(&[0]));
    }
}
