//! Hardware area model for the CoopRT additions (§7.5, Table 3).
//!
//! The paper implements the new blocks of Fig. 7/8 in RTL and
//! synthesizes them with FreePDK45: 16,122 combinational cells /
//! 13,347 µm² at full-warp scope, shrinking with the subwarp scheme.
//! Without a synthesis flow, this module counts the same blocks
//! analytically — priority encoders, the main-TOS multiplexor, the
//! per-thread multiplexors, the min_thit AND/OR network and comparators,
//! and the thit crossbar — with per-block gate counts, and calibrates a
//! single technology factor so the full-warp design matches the paper's
//! cell count. Subwarp scaling then *follows from the structure*, and
//! lands within a few percent of Table 3.

use crate::config::WARP_SIZE;

/// Warp-buffer storage per thread in the baseline RT unit: the
/// RayProperties, TraversalStack and min_thit fields, assuming a
/// 16-entry traversal stack (§7.5).
pub const WARP_BUFFER_BITS_PER_THREAD: u64 = 768;

/// Width of the added `main_tid` field per thread.
pub const MAIN_TID_BITS: u64 = 5;

/// The added stack-empty flag per thread.
pub const STACK_EMPTY_FLAG_BITS: u64 = 1;

/// Area of one sequential cell (D flip-flop) in FreePDK45, µm² (§7.5).
pub const FLIP_FLOP_AREA_UM2: f64 = 6.0;

/// Node-address width on the traversal stack, bits.
const ADDR_BITS: u64 = 32;

/// `thit` (hit distance) width, bits.
const THIT_BITS: u64 = 32;

/// Calibration so that `cooprt_area(32).cells` matches the paper's
/// 16,122 cells (one global technology/complexity factor — the *shape*
/// over subwarp sizes comes from the block structure, not from fitting).
const CELL_CALIBRATION: f64 = 16122.0 / 9050.0;

/// Average combinational cell area, µm² (calibrated: 13,347 µm² over
/// 16,122 cells in the paper's full-warp synthesis).
const UM2_PER_CELL: f64 = 13347.0 / 16122.0;

/// Cell counts of each CoopRT hardware block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AreaBreakdown {
    /// The two priority encoders per subwarp (Fig. 8).
    pub priority_encoders: u64,
    /// The main-thread TOS output multiplexor per subwarp (Fig. 8).
    pub tos_mux: u64,
    /// Per-thread stack-input multiplexors (Fig. 7, red block).
    pub per_thread_mux: u64,
    /// min_thit AND gates and OR reduction (Fig. 7, §5.3).
    pub min_thit_network: u64,
    /// Per-thread thit < min_thit comparators.
    pub comparators: u64,
    /// `main_tid == tid` equality checks.
    pub tid_equality: u64,
    /// The thit data-path crossbar (32×32, or k smaller ones).
    pub crossbar: u64,
    /// Scheduling / handshake control logic.
    pub control: u64,
}

impl AreaBreakdown {
    /// Total combinational cells.
    pub fn cells(&self) -> u64 {
        self.priority_encoders
            + self.tos_mux
            + self.per_thread_mux
            + self.min_thit_network
            + self.comparators
            + self.tid_equality
            + self.crossbar
            + self.control
    }

    /// Total area in µm².
    pub fn area_um2(&self) -> f64 {
        self.cells() as f64 * UM2_PER_CELL
    }

    /// Area expressed in flip-flop equivalents (the paper's "~2,200
    /// flip-flops" comparison).
    pub fn flip_flop_equivalents(&self) -> f64 {
        self.area_um2() / FLIP_FLOP_AREA_UM2
    }
}

/// Counts the CoopRT combinational cells for a given LBU subwarp scope
/// (the §7.5 "first approach": all subwarps processed each cycle, one
/// PE pair and TOS mux per subwarp).
///
/// # Panics
///
/// Panics unless `subwarp_size` is 4, 8, 16 or 32.
///
/// # Examples
///
/// ```
/// use cooprt_core::area::cooprt_area;
///
/// let full = cooprt_area(32);
/// let quarter = cooprt_area(4);
/// assert!(quarter.cells() < full.cells(), "smaller subwarps need less logic");
/// ```
pub fn cooprt_area(subwarp_size: usize) -> AreaBreakdown {
    assert!(
        matches!(subwarp_size, 4 | 8 | 16 | 32),
        "subwarp size must be 4, 8, 16 or 32 (got {subwarp_size})"
    );
    let s = subwarp_size as u64;
    let k = WARP_SIZE as u64 / s; // number of subwarp groups
    let n = WARP_SIZE as u64;
    let mux_width = ADDR_BITS + MAIN_TID_BITS; // TOS + main_tid travel together

    let raw = AreaBreakdown {
        // Two s-input priority encoders per group, ~3 cells per input
        // plus fixed decode.
        priority_encoders: 2 * k * (3 * s + 5),
        // One s-to-1 mux per group, (s-1) 2:1 stages, 2 cells per bit.
        tos_mux: 2 * k * (s - 1) * mux_width,
        // One 2:1 mux per thread on the stack-input path.
        per_thread_mux: n * ADDR_BITS * 2,
        // AND gate per thread (thit gated by math_rdy & tid match) plus
        // the per-group OR reduction of §5.3.
        min_thit_network: n * THIT_BITS + k * (s - 1) * THIT_BITS,
        // thit < min_thit comparator per thread, ~1.5 cells per bit.
        comparators: n * THIT_BITS * 3 / 2,
        // 5-bit equality per thread, with fan-in.
        tid_equality: n * 8,
        // Crosspoint switches: k crossbars of s x s. Dominated by
        // drivers, ~0.35 cells per crosspoint after wire sharing.
        crossbar: (k * s * s * 35) / 100,
        // Per-thread handshake plus per-group sequencing.
        control: n * 10 + k * 20,
    };

    // Apply the single global calibration factor to every block.
    let scale = |c: u64| -> u64 { (c as f64 * CELL_CALIBRATION).round() as u64 };
    AreaBreakdown {
        priority_encoders: scale(raw.priority_encoders),
        tos_mux: scale(raw.tos_mux),
        per_thread_mux: scale(raw.per_thread_mux),
        min_thit_network: scale(raw.min_thit_network),
        comparators: scale(raw.comparators),
        tid_equality: scale(raw.tid_equality),
        crossbar: scale(raw.crossbar),
        control: scale(raw.control),
    }
}

/// Storage bits of the baseline warp buffer for `entries` warp-buffer
/// entries (§7.5: 768 bits × 32 threads × entries; 98,304 bits at the
/// default 4 entries).
pub fn warp_buffer_bits(entries: usize) -> u64 {
    WARP_BUFFER_BITS_PER_THREAD * WARP_SIZE as u64 * entries as u64
}

/// Storage bits CoopRT adds to the warp buffer: the 5-bit `main_tid`
/// and the stack-empty flag per thread per entry.
pub fn added_field_bits(entries: usize) -> u64 {
    (MAIN_TID_BITS + STACK_EMPTY_FLAG_BITS) * WARP_SIZE as u64 * entries as u64
}

/// CoopRT's total area overhead as a fraction of the warp-buffer area
/// (the paper's headline "< 3.0% of the warp buffer in the RT unit").
///
/// Combinational area is converted to flip-flop equivalents; storage is
/// compared bit-for-bit, as in §7.5.
pub fn overhead_fraction(subwarp_size: usize, entries: usize) -> f64 {
    let comb_ff = cooprt_area(subwarp_size).flip_flop_equivalents();
    (comb_ff + added_field_bits(entries) as f64) / warp_buffer_bits(entries) as f64
}

/// Storage bits of the ray-path predictor table for `entries` slots.
///
/// Each direct-mapped slot holds a 64-bit signature tag plus a node
/// address compressed to a 33-bit heap offset (the BVH heap spans well
/// under 2^33 bytes) and a valid bit — 98 bits per entry, ≈ 3.1 KiB at
/// the default 256 entries, a fraction of the warp buffer's 98,304
/// bits (Demoullin et al. size their table similarly).
pub fn predict_table_bits(entries: usize) -> u64 {
    const TAG_BITS: u64 = 64;
    const NODE_OFFSET_BITS: u64 = 33;
    const VALID_BITS: u64 = 1;
    (TAG_BITS + NODE_OFFSET_BITS + VALID_BITS) * entries as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_warp_matches_paper_cell_count() {
        let a = cooprt_area(32);
        let cells = a.cells();
        assert!(
            (15300..=16900).contains(&cells),
            "expected ~16,122 cells (paper), got {cells}"
        );
        assert!((a.area_um2() - 13347.0).abs() / 13347.0 < 0.06);
    }

    #[test]
    fn area_decreases_monotonically_with_subwarp_size() {
        let a32 = cooprt_area(32).cells();
        let a16 = cooprt_area(16).cells();
        let a8 = cooprt_area(8).cells();
        let a4 = cooprt_area(4).cells();
        assert!(a32 > a16 && a16 > a8 && a8 > a4, "{a32} {a16} {a8} {a4}");
    }

    #[test]
    fn subwarp_4_saves_around_ten_percent() {
        // Table 3: 9.7% area saving at subwarp 4.
        let full = cooprt_area(32).area_um2();
        let s4 = cooprt_area(4).area_um2();
        let saving = (full - s4) / full;
        assert!(
            (0.05..=0.15).contains(&saving),
            "expected ~9.7% saving, got {:.1}%",
            saving * 100.0
        );
    }

    #[test]
    fn flip_flop_equivalents_near_2200() {
        let ff = cooprt_area(32).flip_flop_equivalents();
        assert!(
            (2000.0..=2450.0).contains(&ff),
            "paper: ~2,200 FF equivalents, got {ff:.0}"
        );
    }

    #[test]
    fn warp_buffer_storage_matches_section_7_5() {
        assert_eq!(warp_buffer_bits(4), 98_304);
        assert_eq!(warp_buffer_bits(1), 24_576);
        assert_eq!(added_field_bits(4), 4 * 32 * 6);
    }

    #[test]
    fn overhead_is_below_three_percent_ish() {
        // Paper: (2200 + 4*32*6)/98304 < 3.0%.
        let o = overhead_fraction(32, 4);
        assert!(o < 0.033, "overhead {:.4} should be ~3%", o);
        assert!(o > 0.02, "overhead {:.4} suspiciously small", o);
    }

    #[test]
    fn smaller_subwarps_reduce_overhead() {
        assert!(overhead_fraction(4, 4) < overhead_fraction(32, 4));
    }

    #[test]
    fn breakdown_sums_to_total() {
        let a = cooprt_area(8);
        let sum = a.priority_encoders
            + a.tos_mux
            + a.per_thread_mux
            + a.min_thit_network
            + a.comparators
            + a.tid_equality
            + a.crossbar
            + a.control;
        assert_eq!(sum, a.cells());
    }

    #[test]
    #[should_panic(expected = "subwarp size")]
    fn invalid_subwarp_rejected() {
        let _ = cooprt_area(12);
    }

    #[test]
    fn predict_table_is_a_fraction_of_the_warp_buffer() {
        // The predictor's area pitch: its table must stay well under
        // the warp buffer it sits next to.
        assert_eq!(predict_table_bits(256), 98 * 256);
        assert!(predict_table_bits(256) < warp_buffer_bits(4) / 2);
        assert_eq!(predict_table_bits(0), 0);
    }
}
