//! Per-`trace_ray` latency statistics.
//!
//! The paper's Fig. 11 and Fig. 14 are fundamentally statements about
//! the latency *distribution* of `trace_ray` instructions — CoopRT
//! compresses the long tail that large warp buffers cannot. This module
//! collects every instruction's latency and summarizes it.

/// Latency samples of every retired `trace_ray` instruction in a run.
#[derive(Clone, Debug, Default)]
pub struct TraceLatencies {
    samples: Vec<u64>,
    sorted: bool,
}

impl TraceLatencies {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one instruction's latency (issue to retire, cycles).
    pub fn record(&mut self, cycles: u64) {
        self.samples.push(cycles);
        self.sorted = false;
    }

    /// Folds another collection's samples into this one (used to merge
    /// per-worker latency series — e.g. the per-client request
    /// latencies of the `loadgen` harness — before computing
    /// quantiles over the union).
    pub fn merge(&mut self, other: &TraceLatencies) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile latency (`q` in `[0, 1]`), or 0 if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.samples.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        self.samples[idx]
    }

    /// Mean latency, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Maximum latency, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Tail-to-median ratio (`p99 / p50`), a 1-number measure of how
    /// skewed the distribution is; 0.0 if empty.
    pub fn tail_ratio(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let p50 = self.quantile(0.5).max(1);
        self.quantile(0.99) as f64 / p50 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[u64]) -> TraceLatencies {
        let mut t = TraceLatencies::new();
        for &v in values {
            t.record(v);
        }
        t
    }

    #[test]
    fn empty_collection_is_all_zeros() {
        let mut t = TraceLatencies::new();
        assert!(t.is_empty());
        assert_eq!(t.quantile(0.5), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 0);
        assert_eq!(t.tail_ratio(), 0.0);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let mut t = filled(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(t.quantile(0.0), 10);
        assert_eq!(t.quantile(1.0), 100);
        assert_eq!(t.quantile(0.5), 60); // index round(9 * 0.5) = 5 (0-based)
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn mean_and_max() {
        let t = filled(&[1, 2, 3, 4]);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4);
    }

    #[test]
    fn tail_ratio_flags_skew() {
        let mut uniform = filled(&vec![100; 100]);
        assert!((uniform.tail_ratio() - 1.0).abs() < 1e-9);
        let mut skewed = TraceLatencies::new();
        for _ in 0..95 {
            skewed.record(100);
        }
        for _ in 0..5 {
            skewed.record(10_000);
        }
        assert!(skewed.tail_ratio() > 10.0, "got {}", skewed.tail_ratio());
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut t = filled(&[5, 1, 9]);
        assert_eq!(t.quantile(1.0), 9);
        t.record(100);
        assert_eq!(t.quantile(1.0), 100);
    }

    #[test]
    fn merge_unions_the_samples() {
        let mut a = filled(&[1, 2, 3]);
        assert_eq!(a.quantile(1.0), 3); // force a sort before merging
        let b = filled(&[10, 20]);
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.quantile(1.0), 20);
        assert_eq!(a.quantile(0.0), 1);
        let empty = TraceLatencies::new();
        a.merge(&empty);
        assert_eq!(a.len(), 5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        let mut t = filled(&[1]);
        let _ = t.quantile(1.5);
    }
}
