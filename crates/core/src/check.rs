//! Opt-in engine invariant checking (the correctness analogue of the
//! telemetry tracer).
//!
//! A [`Checker`] handle is installed with
//! [`Simulation::with_checker`](crate::Simulation::with_checker) and
//! cloned into the engine and every RT unit, exactly like the
//! [`Tracer`](cooprt_telemetry::Tracer). Disabled (the default) every
//! hook is a single branch and the invariant predicates never run, so
//! the hot path is unchanged; enabled, the engine verifies
//! cycle-boundary invariants and records violations into the shared
//! buffer instead of panicking, so a fuzzing harness can collect,
//! shrink and report them:
//!
//! - **Ray conservation** — per RT unit, rays (and `trace_ray`
//!   instructions) issued equal those retired plus those in flight.
//! - **Structural hazards** — at most one response-FIFO pop and at most
//!   one coalesced node fetch per RT unit per cycle.
//! - **LBU pair validity** — every load-balancing move goes from a main
//!   thread with stack work to share to a distinct helper thread that is
//!   idle (empty stack, no fetch in flight).
//! - **`min_thit` monotonicity** — a ray's closest-hit bound never
//!   increases.
//! - **Calendar sanity** — the response FIFO never yields an event that
//!   is not yet due, fetches complete strictly in the future, and the
//!   engine's wake calendar never schedules the next cycle in the past.
//!
//! Checking is purely observational: no scheduling decision reads the
//! checker, and the `golden_cycles` suite runs the full scene matrix
//! with it enabled to pin that cycle counts stay bitwise identical.

use std::sync::{Arc, Mutex};

/// Per-RT-unit per-cycle structural counters (response pops and
/// coalesced fetches must not exceed one each).
#[derive(Clone, Copy, Debug, Default)]
struct CycleCounters {
    cycle: u64,
    pops: u32,
    fetches: u32,
}

#[derive(Debug, Default)]
struct CheckState {
    checks: u64,
    violations: Vec<String>,
    per_sm: Vec<CycleCounters>,
}

impl CheckState {
    fn counters(&mut self, sm: usize, now: u64) -> &mut CycleCounters {
        if sm >= self.per_sm.len() {
            self.per_sm.resize(sm + 1, CycleCounters::default());
        }
        let c = &mut self.per_sm[sm];
        if c.cycle != now {
            *c = CycleCounters {
                cycle: now,
                pops: 0,
                fetches: 0,
            };
        }
        c
    }

    fn record(&mut self, now: u64, msg: String) {
        self.violations.push(format!("[cycle {now}] {msg}"));
    }
}

/// A cloneable handle to the engine's invariant checker.
///
/// [`Checker::disabled`] (the default) costs one branch per hook;
/// [`Checker::enabled`] shares a violation buffer between all clones,
/// so the handle given to [`Simulation::with_checker`]
/// (`crate::Simulation::with_checker`) observes everything the engine
/// recorded once the run finishes.
#[derive(Clone, Debug, Default)]
pub struct Checker {
    inner: Option<Arc<Mutex<CheckState>>>,
}

impl Checker {
    /// A checker whose hooks are single never-taken branches.
    pub fn disabled() -> Self {
        Checker { inner: None }
    }

    /// An enabled checker with a fresh shared violation buffer.
    pub fn enabled() -> Self {
        Checker {
            inner: Some(Arc::new(Mutex::new(CheckState::default()))),
        }
    }

    /// True if this handle verifies invariants.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Verifies one invariant: evaluates `pred` only when enabled and
    /// records a violation (rendered by `msg`) when it fails.
    #[inline]
    pub fn check(&self, now: u64, pred: impl FnOnce() -> bool, msg: impl FnOnce() -> String) {
        if let Some(state) = &self.inner {
            let mut st = state.lock().expect("checker mutex poisoned");
            st.checks += 1;
            if !pred() {
                st.record(now, msg());
            }
        }
    }

    /// Counts one response-FIFO pop on RT unit `sm` at `now`; more than
    /// one pop per unit per cycle is a violation.
    #[inline]
    pub fn count_response_pop(&self, sm: usize, now: u64) {
        if let Some(state) = &self.inner {
            let mut st = state.lock().expect("checker mutex poisoned");
            st.checks += 1;
            let c = st.counters(sm, now);
            c.pops += 1;
            if c.pops > 1 {
                let pops = c.pops;
                st.record(
                    now,
                    format!("RT unit {sm} popped {pops} responses in one cycle"),
                );
            }
        }
    }

    /// Counts one coalesced node fetch on RT unit `sm` at `now`; more
    /// than one fetch per unit per cycle is a violation.
    #[inline]
    pub fn count_fetch(&self, sm: usize, now: u64) {
        if let Some(state) = &self.inner {
            let mut st = state.lock().expect("checker mutex poisoned");
            st.checks += 1;
            let c = st.counters(sm, now);
            c.fetches += 1;
            if c.fetches > 1 {
                let fetches = c.fetches;
                st.record(
                    now,
                    format!("RT unit {sm} issued {fetches} coalesced fetches in one cycle"),
                );
            }
        }
    }

    /// Number of invariant evaluations so far (0 when disabled).
    pub fn checks_run(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.lock().expect("checker mutex poisoned").checks)
    }

    /// Snapshot of every recorded violation, in detection order.
    pub fn violations(&self) -> Vec<String> {
        self.inner.as_ref().map_or_else(Vec::new, |s| {
            s.lock().expect("checker mutex poisoned").violations.clone()
        })
    }

    /// Panics with all recorded violations, if any. Convenience for
    /// tests that want checked runs to be hard failures.
    #[track_caller]
    pub fn assert_clean(&self) {
        let v = self.violations();
        assert!(
            v.is_empty(),
            "engine invariant violations:\n{}",
            v.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_checker_is_inert() {
        let c = Checker::disabled();
        c.check(5, || panic!("predicate must not run"), || unreachable!());
        c.count_fetch(0, 5);
        c.count_response_pop(0, 5);
        assert!(!c.is_enabled());
        assert_eq!(c.checks_run(), 0);
        assert!(c.violations().is_empty());
        c.assert_clean();
    }

    #[test]
    fn enabled_checker_records_violations() {
        let c = Checker::enabled();
        c.check(3, || true, || unreachable!());
        c.check(4, || false, || "broken".to_string());
        assert!(c.is_enabled());
        assert_eq!(c.checks_run(), 2);
        assert_eq!(c.violations(), vec!["[cycle 4] broken".to_string()]);
    }

    #[test]
    fn clones_share_the_buffer() {
        let c = Checker::enabled();
        let clone = c.clone();
        clone.check(1, || false, || "from clone".to_string());
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn per_cycle_structural_counters_allow_one_each() {
        let c = Checker::enabled();
        c.count_response_pop(0, 10);
        c.count_fetch(0, 10);
        c.count_response_pop(1, 10); // other unit, same cycle: fine
        c.count_response_pop(0, 11); // same unit, next cycle: fine
        assert!(c.violations().is_empty());
        c.count_response_pop(0, 11);
        c.count_fetch(0, 10); // stale cycle for unit 0 -> fresh window
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("popped 2 responses"));
    }

    #[test]
    #[should_panic(expected = "engine invariant violations")]
    fn assert_clean_panics_on_violation() {
        let c = Checker::enabled();
        c.check(0, || false, || "boom".to_string());
        c.assert_clean();
    }
}
