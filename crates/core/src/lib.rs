//! # CoopRT core: cooperative BVH traversal in a cycle-level RT unit
//!
//! This crate is the paper's primary contribution, rebuilt from scratch:
//! a cycle-level model of a GPU RT unit (warp buffer, memory scheduler
//! with address coalescing, response FIFO, per-thread math units) plus
//! the **CoopRT** extension — a Load Balancing Unit that lets idle
//! threads in a warp steal BVH nodes from busy threads' traversal stacks
//! and traverse them in parallel, synchronizing closest-hit distances
//! through the main thread's `min_thit` field.
//!
//! The module map follows the paper:
//!
//! - [`config`] — Table 1 hardware configurations ([`GpuConfig`]) and
//!   the [`TraversalPolicy`] switch;
//! - [`rtunit`] — §2.3/§5 RT unit with the §5.1 architecture;
//! - [`lbu`] — the §5.2 Load Balancing Unit (priority-encoder pairing,
//!   subwarp scoping);
//! - [`shader`] — Listing 1's path-tracing raygen loop plus the §7.3
//!   AO/SH shaders;
//! - [`engine`] — SMs, thread-block dispatch, the cycle loop, and every
//!   measurement the evaluation needs (activity sampling, stall
//!   breakdown, warp timelines, slowest-warp latency);
//! - [`reorder`] — ray reordering ahead of warp formation: Morton /
//!   octant-hash coherence keys and the deterministic bucketed
//!   counting sort behind the [`ReorderPolicy`] axis;
//! - [`trace`] — trace-driven record/replay: record the front end
//!   (raygen/shading) once, replay the timing model under any sweep
//!   configuration from a compact self-contained binary trace;
//! - [`parallel`] — deterministic outer-loop parallelism (scoped-thread
//!   work pool behind the `COOPRT_THREADS` knob); each engine stays
//!   single-threaded, so results are bitwise identical at any width;
//! - [`area`] — the §7.5 area model (Table 3).
//!
//! # Quickstart
//!
//! ```
//! use cooprt_core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
//! use cooprt_scenes::SceneId;
//!
//! let scene = SceneId::Crnvl.build(2);
//! let config = GpuConfig::small(2);
//!
//! let base = Simulation::new(&scene, &config, TraversalPolicy::Baseline)
//!     .run_frame(ShaderKind::PathTrace, 8, 8).unwrap();
//! let coop = Simulation::new(&scene, &config, TraversalPolicy::CoopRt)
//!     .run_frame(ShaderKind::PathTrace, 8, 8).unwrap();
//!
//! // Functional correctness: identical images...
//! assert_eq!(base.image, coop.image);
//! // ...with fewer (or equal) cycles under cooperative traversal.
//! assert!(coop.cycles <= base.cycles);
//! ```

pub mod area;
pub mod check;
pub mod config;
pub mod engine;
pub mod latency;
pub mod lbu;
pub mod metrics;
pub mod parallel;
pub mod predictor;
pub mod reorder;
pub mod rtunit;
pub mod shader;
pub mod trace;

pub use check::Checker;
pub use config::{
    GpuConfig, StealPosition, SubwarpMode, TraversalOrder, TraversalPolicy, WarpTiling, WARP_SIZE,
};
pub use engine::{
    ActivitySample, ActivitySeries, ConfigError, FrameResult, IntervalSample, IntervalSeries,
    Simulation, StallBreakdown, TimelineSample,
};
pub use latency::TraceLatencies;
pub use metrics::{FrameMetrics, LatencySummary, MetricsReport, METRICS_SCHEMA_VERSION};
pub use predictor::{
    PredictPolicy, Predictor, PredictorStats, RayPathPredictor, PREDICT_ENTRY_LIFT,
};
pub use reorder::{ReorderPolicy, ReorderStats, DEFAULT_REORDER_BUCKETS};
pub use rtunit::{RayHit, RtUnit, StatusCounts, TraceQuery, TraceResult};
pub use shader::{ShaderKind, ShaderThread, PROBE_T_MAX};
pub use trace::{
    IssueRecord, RayRecord, Recorder, Trace, TraceError, TraceReader, TraceWriter, TRACE_MAGIC,
    TRACE_VERSION,
};
