//! Deterministic outer-loop parallelism.
//!
//! Each simulated [`Engine`](crate::engine) is strictly
//! single-threaded — the cycle loop is the unit of determinism. What
//! *can* run concurrently is the outer evaluation loop: independent
//! frames (samples, scenes, configurations, policies). This module
//! provides the scoped-thread work pool those loops share.
//!
//! Determinism contract: [`par_map`] invokes `f` on every item exactly
//! once and returns results **in item order**, so any reduction the
//! caller performs afterwards runs in the same fixed order as the
//! sequential loop — floating-point accumulation and all. The worker
//! count changes wall-clock time only, never a single output bit.
//!
//! The worker count comes from the `COOPRT_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`].
//! The implementation uses only `std::thread::scope`, so it works in
//! fully offline builds; a rayon-backed pool could be slotted in behind
//! the same [`par_map`] signature if the dependency ever becomes
//! available.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The configured outer-parallelism width: `COOPRT_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism
/// (falling back to 1).
pub fn threads() -> usize {
    match std::env::var("COOPRT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in item order.
///
/// Workers pull item indices from a shared atomic counter (dynamic
/// scheduling — simulation times per item vary wildly), tag each result
/// with its index, and the merge step restores item order. With
/// `threads <= 1` or fewer than two items this is a plain sequential
/// loop with no thread spawned.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut tagged: Vec<(usize, U)> = buckets.into_iter().flatten().collect();
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Runs two independent closures concurrently and returns both results.
///
/// Used for baseline/CoopRT comparison pairs. Falls back to sequential
/// execution when `threads <= 1`.
pub fn join<A, B, RA, RB>(threads: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_visits_each_item_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u64> = (0..57).collect();
        let out = par_map(&items, 4, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, items);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let (a, b) = join(threads, || 2 + 2, || "ok");
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn par_map_propagates_panics() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map(&items, 4, |_, &x| {
            if x == 3 {
                panic!("worker boom");
            }
            x
        });
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }
}
