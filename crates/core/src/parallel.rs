//! Deterministic outer-loop parallelism.
//!
//! Each simulated [`Engine`](crate::engine) is strictly
//! single-threaded — the cycle loop is the unit of determinism. What
//! *can* run concurrently is the outer evaluation loop: independent
//! frames (samples, scenes, configurations, policies). This module
//! provides the scoped-thread work pool those loops share.
//!
//! Determinism contract: [`par_map`] invokes `f` on every item exactly
//! once and returns results **in item order**, so any reduction the
//! caller performs afterwards runs in the same fixed order as the
//! sequential loop — floating-point accumulation and all. The worker
//! count changes wall-clock time only, never a single output bit.
//!
//! The worker count comes from the `COOPRT_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`].
//! The implementation uses only `std::thread::scope`, so it works in
//! fully offline builds; a rayon-backed pool could be slotted in behind
//! the same [`par_map`] signature if the dependency ever becomes
//! available.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// The configured outer-parallelism width: `COOPRT_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism
/// (falling back to 1).
pub fn threads() -> usize {
    match std::env::var("COOPRT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in item order.
///
/// Workers pull item indices from a shared atomic counter (dynamic
/// scheduling — simulation times per item vary wildly), tag each result
/// with its index, and the merge step restores item order. With
/// `threads <= 1` or fewer than two items this is a plain sequential
/// loop with no thread spawned.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut tagged: Vec<(usize, U)> = buckets.into_iter().flatten().collect();
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Runs two independent closures concurrently and returns both results.
///
/// Used for baseline/CoopRT comparison pairs. Falls back to sequential
/// execution when `threads <= 1`.
pub fn join<A, B, RA, RB>(threads: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

/// Why a [`SyncQueue::try_push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back so the caller
    /// can apply backpressure (e.g. an HTTP 429).
    Full(T),
    /// The queue was closed; no new work is accepted.
    Closed(T),
}

/// Outcome of a [`SyncQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue open but empty.
    Timeout,
    /// The queue is closed **and** fully drained; the worker can exit.
    Closed,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer work queue with explicit
/// admission control and drain-on-close semantics.
///
/// This is the synchronization primitive behind long-lived worker
/// pools (the `cooprt-serve` job queue): producers [`try_push`] and get
/// an immediate [`PushError::Full`] when the queue is at capacity —
/// never blocking, so callers can reject work upstream — and consumers
/// [`pop_timeout`] in a loop. [`close`] stops admission but lets
/// consumers **drain** everything already queued; only a closed *and*
/// empty queue reports [`Pop::Closed`], which is the worker's signal to
/// exit. That ordering is what makes graceful shutdown of a worker pool
/// a one-liner: close, then join.
///
/// [`try_push`]: SyncQueue::try_push
/// [`pop_timeout`]: SyncQueue::pop_timeout
/// [`close`]: SyncQueue::close
#[derive(Debug)]
pub struct SyncQueue<T> {
    inner: Mutex<QueueInner<T>>,
    nonempty: Condvar,
}

impl<T> SyncQueue<T> {
    /// Creates a queue admitting at most `capacity` items at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SyncQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                capacity,
                closed: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Enqueues `item` if there is room, or returns it inside a
    /// [`PushError`] without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.closed {
            return Err(PushError::Closed(item));
        }
        if q.items.len() >= q.capacity {
            return Err(PushError::Full(item));
        }
        q.items.push_back(item);
        drop(q);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, waiting up to `timeout` for one to
    /// arrive. Items still queued when the queue is closed are drained
    /// before [`Pop::Closed`] is reported.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = q.items.pop_front() {
                return Pop::Item(item);
            }
            if q.closed {
                return Pop::Closed;
            }
            let (guard, wait) = self
                .nonempty
                .wait_timeout(q, timeout)
                .expect("queue poisoned");
            q = guard;
            if wait.timed_out() && q.items.is_empty() && !q.closed {
                return Pop::Timeout;
            }
        }
    }

    /// Closes the queue: further [`SyncQueue::try_push`] calls fail with
    /// [`PushError::Closed`], consumers drain the remaining items, and
    /// every blocked consumer is woken.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`SyncQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// The admission capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("queue poisoned").capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_visits_each_item_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u64> = (0..57).collect();
        let out = par_map(&items, 4, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, items);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let (a, b) = join(threads, || 2 + 2, || "ok");
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn par_map_propagates_panics() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map(&items, 4, |_, &x| {
            if x == 3 {
                panic!("worker boom");
            }
            x
        });
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn queue_rejects_past_capacity_and_hands_the_item_back() {
        let q = SyncQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn queue_drains_after_close_then_reports_closed() {
        let q = SyncQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item("a"));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item("b"));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::<&str>::Closed);
        assert!(q.is_closed());
    }

    #[test]
    fn queue_pop_times_out_when_open_and_empty() {
        let q: SyncQueue<u32> = SyncQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Timeout);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_close_wakes_blocked_consumers() {
        let q: SyncQueue<u32> = SyncQueue::new(1);
        std::thread::scope(|s| {
            let consumer = s.spawn(|| q.pop_timeout(Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            assert_eq!(consumer.join().unwrap(), Pop::Closed);
        });
    }

    #[test]
    fn queue_hands_every_item_to_exactly_one_consumer() {
        use std::sync::atomic::AtomicU64;
        let q = SyncQueue::new(128);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    match q.pop_timeout(Duration::from_millis(20)) {
                        Pop::Item(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        Pop::Timeout => continue,
                        Pop::Closed => break,
                    }
                });
            }
            for v in 1..=100u64 {
                loop {
                    match q.try_push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(_)) => std::thread::yield_now(),
                        Err(PushError::Closed(_)) => panic!("queue closed early"),
                    }
                }
            }
            q.close();
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_queue_panics() {
        let _ = SyncQueue::<u32>::new(0);
    }
}
