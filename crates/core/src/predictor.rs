//! Speculative ray prediction: the §8.2 intersection predictor (Liu et
//! al., MICRO'21) and the hash-based **ray-path predictor** (Demoullin
//! et al., "Hash-Based Ray Path Prediction") — two per-SM hardware
//! tables keyed by a quantized ray signature.
//!
//! The *intersection* predictor maps the signature to the last hit
//! **primitive**: coherent rays (AO/shadow rays from neighbouring
//! pixels) hash to the same entry and re-test the same triangle,
//! skipping whole traversals for any-hit queries and priming `min_thit`
//! for closest-hit queries.
//!
//! The *ray-path* predictor maps the signature to a BVH **entry node**:
//! an any-hit traversal starts at the predicted node instead of the
//! root, and on a subtree miss walks **up one parent level at a time**
//! (go-up-level fallback, via the parent table in
//! [`cooprt_bvh::BvhImage`]) until the root is reached — so the
//! occlusion outcome is always exact while successful predictions skip
//! every ancestor fetch above the entry node. Selected by
//! [`PredictPolicy`], the fourth axis of the evaluation matrix.
//!
//! Neither table may ever change a rendered image: predictions are
//! verified (intersection) or backstopped by the root walk-up
//! (ray-path). `cooprt-check`'s `predictcheck` oracle and the engine's
//! neutrality tests pin that.

use cooprt_bvh::BvhImage;
use cooprt_math::Ray;

/// The ray-path prediction policy: the fourth axis of the evaluation
/// matrix, orthogonal to [`TraversalPolicy`](crate::TraversalPolicy),
/// [`ReorderPolicy`](crate::ReorderPolicy) and warp tiling/compaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PredictPolicy {
    /// No ray-path prediction: every traversal starts at the BVH root
    /// (the default, and what every pre-existing golden number uses).
    #[default]
    Off,
    /// Demoullin-style hash-based ray-path prediction: any-hit
    /// traversals start at the predicted entry node and fall back one
    /// parent level at a time on a subtree miss.
    RayPath,
}

impl PredictPolicy {
    /// Short label used in benchmark tables and CLI/API surfaces.
    pub fn label(self) -> &'static str {
        match self {
            PredictPolicy::Off => "off",
            PredictPolicy::RayPath => "ray-path",
        }
    }

    /// Parses a [`PredictPolicy::label`] back to the policy.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(PredictPolicy::Off),
            "ray-path" => Some(PredictPolicy::RayPath),
            _ => None,
        }
    }

    /// Both policies, in matrix order.
    pub const ALL: [PredictPolicy; 2] = [PredictPolicy::Off, PredictPolicy::RayPath];
}

/// Counters of predictor behaviour (both tables).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Intersection-table lookups performed.
    pub lookups: u64,
    /// Lookups that returned an in-bounds candidate primitive.
    pub candidates: u64,
    /// Lookups whose tag matched but whose stored primitive index is
    /// out of bounds for the current scene (a stale entry, e.g. after
    /// the table outlived a scene swap). Stale candidates are dropped
    /// before verification and never counted in
    /// [`PredictorStats::candidates`].
    pub stale: u64,
    /// Candidates whose re-test actually hit (useful predictions).
    pub verified: u64,
    /// Intersection-table updates.
    pub updates: u64,
    /// Ray-path-table lookups performed.
    pub path_lookups: u64,
    /// Lookups that returned a valid predicted entry node.
    pub path_candidates: u64,
    /// Tag matches whose stored node address no longer exists in the
    /// current BVH (dropped, never started from).
    pub path_stale: u64,
    /// Ray-path-table updates.
    pub path_updates: u64,
    /// Rays whose accepted any-hit lay inside the originally predicted
    /// subtree (no go-up step was needed): the predicted-hit count.
    pub path_entry_hits: u64,
    /// Go-up-level fallback steps: a predicted subtree drained without
    /// a hit and traversal restarted one parent level higher.
    pub path_go_up_steps: u64,
    /// Ancestor node fetches skipped by successful predictions: for
    /// each ray that terminated at entry level `d` (depth below the
    /// root after go-up steps), the `d` ancestors a root-start
    /// traversal would have fetched first.
    pub node_fetches_saved: u64,
}

impl PredictorStats {
    /// Accumulates another counter set into this one (per-SM tables are
    /// summed into the frame report).
    pub fn add(&mut self, other: &PredictorStats) {
        self.lookups += other.lookups;
        self.candidates += other.candidates;
        self.stale += other.stale;
        self.verified += other.verified;
        self.updates += other.updates;
        self.path_lookups += other.path_lookups;
        self.path_candidates += other.path_candidates;
        self.path_stale += other.path_stale;
        self.path_updates += other.path_updates;
        self.path_entry_hits += other.path_entry_hits;
        self.path_go_up_steps += other.path_go_up_steps;
        self.node_fetches_saved += other.node_fetches_saved;
    }
}

/// Signature hash of a ray: origin quantized to 4-unit cells, direction
/// to its octant — deliberately coarse, so the localized secondary rays
/// of AO/SH shaders collide and reuse predictions. False candidates are
/// filtered by verification (intersection table) or by the go-up
/// fallback (ray-path table).
fn signature(ray: &Ray) -> u64 {
    let qo = |v: f32| ((v / 4.0).floor() as i64 as u64) & 0xFFFF;
    let qd = |v: f32| u64::from(v >= 0.0);
    let h = qo(ray.orig.x)
        | (qo(ray.orig.y) << 16)
        | (qo(ray.orig.z) << 32)
        | (qd(ray.dir.x) << 48)
        | (qd(ray.dir.y) << 49)
        | (qd(ray.dir.z) << 50);
    // splitmix64 finalizer.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn slot_and_tag(ray: &Ray, len: usize) -> (usize, u32) {
    let h = signature(ray);
    ((h % len as u64) as usize, (h >> 32) as u32)
}

/// A direct-mapped prediction table: quantized ray signature → last hit
/// triangle.
#[derive(Clone, Debug)]
pub struct Predictor {
    entries: Vec<Option<(u32, u32)>>, // (tag, triangle)
    stats: PredictorStats,
}

impl Predictor {
    /// Creates a table with `entries` direct-mapped slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`. Simulation entry points reject that
    /// configuration with a typed
    /// [`ConfigError::ZeroPredictorEntries`](crate::ConfigError) before
    /// any table is built, so this is a backstop for direct users.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        Predictor {
            entries: vec![None; entries],
            stats: PredictorStats::default(),
        }
    }

    /// Looks up a candidate primitive for `ray`.
    ///
    /// `max_triangles` bounds the table by the current scene: a tag
    /// match whose stored index is `>= max_triangles` is a stale entry
    /// (dropped and counted in [`PredictorStats::stale`], not in
    /// [`PredictorStats::candidates`]), so the candidates/verified
    /// ratio in the metrics report stays honest.
    pub fn predict(&mut self, ray: &Ray, max_triangles: usize) -> Option<u32> {
        self.stats.lookups += 1;
        let (slot, tag) = slot_and_tag(ray, self.entries.len());
        match self.entries[slot] {
            Some((t, tri)) if t == tag => {
                if (tri as usize) >= max_triangles {
                    self.stats.stale += 1;
                    self.entries[slot] = None;
                    None
                } else {
                    self.stats.candidates += 1;
                    Some(tri)
                }
            }
            _ => None,
        }
    }

    /// Records that `ray` hit `triangle`.
    pub fn update(&mut self, ray: &Ray, triangle: u32) {
        self.stats.updates += 1;
        let (slot, tag) = slot_and_tag(ray, self.entries.len());
        self.entries[slot] = Some((tag, triangle));
    }

    /// Records that a prediction was verified by the re-test.
    pub fn record_verified(&mut self) {
        self.stats.verified += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

/// How many parent levels above the accepted hit leaf the recorded
/// entry node sits. Predicting a small *subtree* instead of the exact
/// leaf lets coherent neighbour rays (which hit nearby, not identical,
/// leaves) still resolve inside the predicted entry without go-up
/// steps.
pub const PREDICT_ENTRY_LIFT: u32 = 2;

/// Confidence ceiling of a ray-path table entry (a 2-bit saturating
/// counter, the classic branch-predictor design).
const PREDICT_CONF_MAX: u8 = 3;

/// Minimum confidence at which an entry is allowed to steer traversal.
/// New entries start here (optimistic: coherent workloads are right on
/// the first reuse), a mispredict drops below it, and further accepted
/// hits climb back — so a signature that keeps missing its subtree
/// goes quiet instead of paying the go-up penalty every ray.
const PREDICT_CONFIDENT: u8 = 2;

/// One ray-path table entry: signature tag, predicted BVH entry node,
/// and the saturating confidence counter.
#[derive(Clone, Copy, Debug)]
struct PathEntry {
    tag: u32,
    addr: u64,
    conf: u8,
}

/// A direct-mapped ray-path prediction table: quantized ray signature →
/// predicted BVH entry node (Demoullin et al.), gated by a 2-bit
/// saturating confidence counter per entry.
#[derive(Clone, Debug)]
pub struct RayPathPredictor {
    entries: Vec<Option<PathEntry>>,
    stats: PredictorStats,
}

impl RayPathPredictor {
    /// Creates a table with `entries` direct-mapped slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0` (rejected earlier with a typed
    /// [`ConfigError::ZeroPredictorEntries`](crate::ConfigError) by
    /// every simulation entry point).
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        RayPathPredictor {
            entries: vec![None; entries],
            stats: PredictorStats::default(),
        }
    }

    /// Looks up a predicted entry node for `ray`, validating the stored
    /// address against the current BVH (a stale address — e.g. after
    /// the table outlived a scene swap — is dropped and counted, never
    /// started from). Entries whose confidence fell below
    /// [`PREDICT_CONFIDENT`] after mispredictions stay in the table for
    /// training but return no candidate.
    pub fn predict(&mut self, ray: &Ray, image: &BvhImage) -> Option<u64> {
        self.stats.path_lookups += 1;
        let (slot, tag) = slot_and_tag(ray, self.entries.len());
        match self.entries[slot] {
            Some(e) if e.tag == tag => {
                if image.node_at(e.addr).is_none() {
                    self.stats.path_stale += 1;
                    self.entries[slot] = None;
                    None
                } else if e.conf < PREDICT_CONFIDENT {
                    None
                } else {
                    self.stats.path_candidates += 1;
                    Some(e.addr)
                }
            }
            _ => None,
        }
    }

    /// Records the entry node for `ray`: the ancestor
    /// [`PREDICT_ENTRY_LIFT`] levels above the accepted hit leaf at
    /// `leaf_addr` (clamped at the root). A repeat of the already
    /// stored entry strengthens its confidence; a new or changed entry
    /// (re)starts at [`PREDICT_CONFIDENT`].
    pub fn update(&mut self, ray: &Ray, leaf_addr: u64, image: &BvhImage) {
        let mut entry = leaf_addr;
        for _ in 0..PREDICT_ENTRY_LIFT {
            match image.parent_addr(entry) {
                Some(p) => entry = p,
                None => break,
            }
        }
        self.stats.path_updates += 1;
        let (slot, tag) = slot_and_tag(ray, self.entries.len());
        self.entries[slot] = match self.entries[slot] {
            Some(e) if e.tag == tag && e.addr == entry => Some(PathEntry {
                conf: (e.conf + 1).min(PREDICT_CONF_MAX),
                ..e
            }),
            _ => Some(PathEntry {
                tag,
                addr: entry,
                conf: PREDICT_CONFIDENT,
            }),
        };
    }

    /// Records that a prediction for `ray` missed its subtree (the
    /// first go-up step fired): the entry's confidence decays, and
    /// after enough consecutive misses it stops steering traversal
    /// until accepted hits rebuild it.
    pub fn record_mispredict(&mut self, ray: &Ray) {
        let (slot, tag) = slot_and_tag(ray, self.entries.len());
        if let Some(e) = self.entries[slot].as_mut() {
            if e.tag == tag {
                e.conf = e.conf.saturating_sub(1);
            }
        }
    }

    /// Records a hit accepted inside the originally predicted subtree.
    pub fn record_entry_hit(&mut self) {
        self.stats.path_entry_hits += 1;
    }

    /// Records one go-up-level fallback step.
    pub fn record_go_up(&mut self) {
        self.stats.path_go_up_steps += 1;
    }

    /// Records `n` ancestor fetches skipped by a successful prediction.
    pub fn record_saved(&mut self, n: u64) {
        self.stats.node_fetches_saved += n;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_math::{Rgb, Vec3};
    use cooprt_scenes::{Camera, Material, SceneBuilder};

    fn ray(o: Vec3, d: Vec3) -> Ray {
        Ray::new(o, d)
    }

    /// Effectively unbounded scene for tests that only exercise the
    /// signature/table mechanics.
    const MANY: usize = usize::MAX;

    #[test]
    fn empty_table_predicts_nothing() {
        let mut p = Predictor::new(64);
        assert_eq!(p.predict(&ray(Vec3::ZERO, Vec3::Z), MANY), None);
        assert_eq!(p.stats().lookups, 1);
        assert_eq!(p.stats().candidates, 0);
    }

    #[test]
    fn update_then_predict_roundtrips() {
        let mut p = Predictor::new(64);
        let r = ray(Vec3::new(5.0, 1.0, -3.0), Vec3::new(0.2, -0.9, 0.1));
        p.update(&r, 42);
        assert_eq!(p.predict(&r, MANY), Some(42));
    }

    #[test]
    fn stale_candidates_are_dropped_and_counted() {
        // A shrinking-scene sequence: the table learned triangle 42 from
        // a larger scene, then the scene shrank to 10 triangles. The
        // lookup must not report a candidate (the index is meaningless
        // now) and must record the staleness instead.
        let mut p = Predictor::new(64);
        let r = ray(Vec3::new(5.0, 1.0, -3.0), Vec3::new(0.2, -0.9, 0.1));
        p.update(&r, 42);
        assert_eq!(p.predict(&r, 10), None);
        assert_eq!(p.stats().stale, 1);
        assert_eq!(p.stats().candidates, 0, "stale lookups are not candidates");
        // The stale entry was evicted: the next lookup is a plain miss.
        assert_eq!(p.predict(&r, 10), None);
        assert_eq!(p.stats().stale, 1);
        // Re-learning under the new scene works as usual.
        p.update(&r, 3);
        assert_eq!(p.predict(&r, 10), Some(3));
        assert_eq!(p.stats().candidates, 1);
    }

    #[test]
    fn coherent_rays_share_an_entry() {
        // Two rays from nearby origins with nearly equal directions
        // quantize identically.
        let mut p = Predictor::new(256);
        let a = ray(Vec3::new(10.0, 4.0, 2.0), Vec3::new(0.3, 0.8, 0.5));
        let b = ray(Vec3::new(10.3, 4.2, 2.1), Vec3::new(0.1, 0.9, 0.4));
        p.update(&a, 7);
        assert_eq!(
            p.predict(&b, MANY),
            Some(7),
            "coherent neighbour should reuse the prediction"
        );
    }

    #[test]
    fn divergent_rays_do_not_collide_usually() {
        let mut p = Predictor::new(1024);
        p.update(&ray(Vec3::ZERO, Vec3::Z), 1);
        let mut misses = 0;
        for i in 0..20 {
            let d = Vec3::new((i as f32 * 0.7).sin(), 0.4, (i as f32 * 1.3).cos());
            if p.predict(&ray(Vec3::new(50.0 + 4.0 * i as f32, 0.0, 9.0), d), MANY) != Some(1) {
                misses += 1;
            }
        }
        assert!(
            misses >= 18,
            "unrelated rays should rarely alias, got {misses} misses"
        );
    }

    #[test]
    fn new_update_overwrites_old() {
        let mut p = Predictor::new(16);
        let r = ray(Vec3::new(1.0, 1.0, 1.0), Vec3::X);
        p.update(&r, 3);
        p.update(&r, 9);
        assert_eq!(p.predict(&r, MANY), Some(9));
        assert_eq!(p.stats().updates, 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Predictor::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_path_entries_rejected() {
        let _ = RayPathPredictor::new(0);
    }

    #[test]
    fn non_power_of_two_tables_distribute_acceptably() {
        // Indexing is `h % len` over a splitmix64-finalized signature, so
        // any table size (not just powers of two) must spread distinct
        // signatures near-uniformly: modulo of a well-mixed 64-bit hash
        // has no resonance with the quantization lattice. Pin that for
        // sizes with odd factors, including a prime.
        for len in [768usize, 1000, 1021] {
            let mut counts = vec![0u32; len];
            let mut distinct = 0u32;
            // Origins spaced one 4-unit quantization cell apart: every
            // (i, j) pair is a distinct signature.
            for i in 0..100 {
                for j in 0..80 {
                    let r = ray(
                        Vec3::new(4.0 * i as f32, 4.0 * j as f32, 0.0),
                        Vec3::new(0.3, 0.8, 0.5),
                    );
                    let (slot, _) = slot_and_tag(&r, len);
                    counts[slot] += 1;
                    distinct += 1;
                }
            }
            let mean = distinct as f64 / len as f64;
            let max = *counts.iter().max().unwrap() as f64;
            let empty = counts.iter().filter(|&&c| c == 0).count() as f64;
            assert!(
                max <= 4.0 * mean,
                "len {len}: hottest slot {max} vs mean {mean:.1} — modulo bias"
            );
            assert!(
                empty / len as f64 <= 0.05,
                "len {len}: {empty} empty slots of {len} — clustered indexing"
            );
        }
    }

    #[test]
    fn predict_policy_labels_round_trip() {
        for p in PredictPolicy::ALL {
            assert_eq!(PredictPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(PredictPolicy::parse("nope"), None);
        assert_eq!(PredictPolicy::default(), PredictPolicy::Off);
    }

    fn tiny_scene() -> cooprt_scenes::Scene {
        let cam = Camera::look_at(Vec3::new(0.0, 2.0, 12.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0);
        SceneBuilder::new("predictor-test", cam)
            .push(
                cooprt_scenes::scatter_clutter(
                    cooprt_math::Aabb::new(Vec3::new(-6.0, 0.5, -6.0), Vec3::new(6.0, 5.0, 6.0)),
                    40,
                    0.2..0.6,
                    7,
                ),
                Material::Lambertian {
                    albedo: Rgb::splat(0.7),
                },
            )
            .build()
    }

    #[test]
    fn path_predictor_records_a_lifted_entry_node() {
        let scene = tiny_scene();
        let image = &scene.image;
        let mut p = RayPathPredictor::new(128);
        let r = ray(Vec3::new(0.0, 2.0, 12.0), Vec3::new(0.0, -0.1, -1.0));
        // Pick some leaf address to learn from.
        let leaf = image
            .iter()
            .find(|n| matches!(n.kind, cooprt_bvh::NodeKind::Leaf { .. }))
            .expect("scene has leaves")
            .addr;
        p.update(&r, leaf, image);
        let entry = p.predict(&r, image).expect("just-learned signature hits");
        // The entry is an ancestor-or-self of the leaf, at most
        // PREDICT_ENTRY_LIFT levels up.
        let mut cur = leaf;
        let mut found = cur == entry;
        for _ in 0..PREDICT_ENTRY_LIFT {
            match image.parent_addr(cur) {
                Some(parent) => {
                    cur = parent;
                    found |= cur == entry;
                }
                None => break,
            }
        }
        assert!(
            found,
            "entry {entry:#x} is not a lifted ancestor of {leaf:#x}"
        );
        assert_eq!(p.stats().path_candidates, 1);
        assert_eq!(p.stats().path_updates, 1);
    }

    #[test]
    fn mispredicted_entries_go_quiet_until_retrained() {
        let scene = tiny_scene();
        let image = &scene.image;
        let mut p = RayPathPredictor::new(128);
        let r = ray(Vec3::new(0.0, 2.0, 12.0), Vec3::new(0.0, -0.1, -1.0));
        p.update(&r, image.root_addr(), image);
        assert!(
            p.predict(&r, image).is_some(),
            "fresh entries are confident"
        );
        // One subtree miss drops below the confidence threshold: the
        // entry survives for training but stops steering traversal.
        p.record_mispredict(&r);
        assert_eq!(p.predict(&r, image), None, "shaken entries stay quiet");
        assert_eq!(p.stats().path_stale, 0, "quiet is not stale");
        // A re-accepted hit on the same entry restores confidence.
        p.update(&r, image.root_addr(), image);
        assert!(p.predict(&r, image).is_some(), "retrained entries predict");
        // Confidence saturates: many updates still decay in one step
        // sequence of misses, never underflowing.
        for _ in 0..8 {
            p.update(&r, image.root_addr(), image);
        }
        for _ in 0..8 {
            p.record_mispredict(&r);
        }
        assert_eq!(p.predict(&r, image), None);
    }

    #[test]
    fn path_predictor_drops_stale_addresses() {
        let scene = tiny_scene();
        let image = &scene.image;
        let mut p = RayPathPredictor::new(128);
        let r = ray(Vec3::new(0.0, 2.0, 12.0), Vec3::new(0.0, -0.1, -1.0));
        // Learn the root, then swap to a different image where that
        // address does not exist.
        p.update(&r, image.root_addr(), image);
        let other = {
            let cam = Camera::look_at(Vec3::new(0.0, 2.0, 12.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0);
            SceneBuilder::new("other", cam)
                .push(
                    cooprt_scenes::quad(Vec3::new(-1.0, 0.0, -1.0), Vec3::X * 2.0, Vec3::Z * 2.0),
                    Material::Lambertian {
                        albedo: Rgb::splat(0.5),
                    },
                )
                .build()
        };
        // The learned address is valid in `image`; if it happens to be
        // valid in `other` too (both images start at the same heap
        // base), the lookup legitimately returns it — force staleness
        // with an address no image contains.
        p.update(&r, u64::MAX - 1024, image);
        let before = p.stats().path_updates;
        assert!(before >= 2);
        assert_eq!(p.predict(&r, &other.image), None);
        assert_eq!(p.stats().path_stale, 1);
        assert_eq!(p.stats().path_candidates, 0);
    }

    #[test]
    fn stats_add_accumulates_every_field() {
        let mut a = PredictorStats {
            lookups: 1,
            candidates: 2,
            stale: 3,
            verified: 4,
            updates: 5,
            path_lookups: 6,
            path_candidates: 7,
            path_stale: 8,
            path_updates: 9,
            path_entry_hits: 10,
            path_go_up_steps: 11,
            node_fetches_saved: 12,
        };
        let b = a;
        a.add(&b);
        assert_eq!(
            a,
            PredictorStats {
                lookups: 2,
                candidates: 4,
                stale: 6,
                verified: 8,
                updates: 10,
                path_lookups: 12,
                path_candidates: 14,
                path_stale: 16,
                path_updates: 18,
                path_entry_hits: 20,
                path_go_up_steps: 22,
                node_fetches_saved: 24,
            }
        );
    }
}
