//! Intersection prediction (Liu et al., MICRO'21), the §8.2 related
//! technique: a small per-SM hardware cache from quantized ray
//! signatures to previously hit primitives.
//!
//! Coherent rays (AO/shadow rays from neighbouring pixels) hash to the
//! same entry and re-test the same primitive, skipping whole traversals
//! for any-hit queries and priming `min_thit` for closest-hit queries.
//! Divergent path-tracing bounces rarely repeat a signature, which is
//! why the original paper evaluates it on AO/SH-style workloads.

use cooprt_math::Ray;

/// Counters of predictor behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Table lookups performed.
    pub lookups: u64,
    /// Lookups that returned a candidate primitive.
    pub candidates: u64,
    /// Candidates whose re-test actually hit (useful predictions).
    pub verified: u64,
    /// Table updates.
    pub updates: u64,
}

/// A direct-mapped prediction table: quantized ray signature → last hit
/// triangle.
#[derive(Clone, Debug)]
pub struct Predictor {
    entries: Vec<Option<(u32, u32)>>, // (tag, triangle)
    stats: PredictorStats,
}

impl Predictor {
    /// Creates a table with `entries` direct-mapped slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        Predictor {
            entries: vec![None; entries],
            stats: PredictorStats::default(),
        }
    }

    /// Signature hash of a ray: origin quantized to 4-unit cells,
    /// direction to its octant — deliberately coarse, so the localized
    /// secondary rays of AO/SH shaders collide and reuse predictions.
    /// False candidates are filtered by the verification test.
    fn signature(ray: &Ray) -> u64 {
        let qo = |v: f32| ((v / 4.0).floor() as i64 as u64) & 0xFFFF;
        let qd = |v: f32| u64::from(v >= 0.0);
        let h = qo(ray.orig.x)
            | (qo(ray.orig.y) << 16)
            | (qo(ray.orig.z) << 32)
            | (qd(ray.dir.x) << 48)
            | (qd(ray.dir.y) << 49)
            | (qd(ray.dir.z) << 50);
        // splitmix64 finalizer.
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn slot_and_tag(&self, ray: &Ray) -> (usize, u32) {
        let h = Self::signature(ray);
        ((h % self.entries.len() as u64) as usize, (h >> 32) as u32)
    }

    /// Looks up a candidate primitive for `ray`.
    pub fn predict(&mut self, ray: &Ray) -> Option<u32> {
        self.stats.lookups += 1;
        let (slot, tag) = self.slot_and_tag(ray);
        match self.entries[slot] {
            Some((t, tri)) if t == tag => {
                self.stats.candidates += 1;
                Some(tri)
            }
            _ => None,
        }
    }

    /// Records that `ray` hit `triangle`.
    pub fn update(&mut self, ray: &Ray, triangle: u32) {
        self.stats.updates += 1;
        let (slot, tag) = self.slot_and_tag(ray);
        self.entries[slot] = Some((tag, triangle));
    }

    /// Records that a prediction was verified by the re-test.
    pub fn record_verified(&mut self) {
        self.stats.verified += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_math::Vec3;

    fn ray(o: Vec3, d: Vec3) -> Ray {
        Ray::new(o, d)
    }

    #[test]
    fn empty_table_predicts_nothing() {
        let mut p = Predictor::new(64);
        assert_eq!(p.predict(&ray(Vec3::ZERO, Vec3::Z)), None);
        assert_eq!(p.stats().lookups, 1);
        assert_eq!(p.stats().candidates, 0);
    }

    #[test]
    fn update_then_predict_roundtrips() {
        let mut p = Predictor::new(64);
        let r = ray(Vec3::new(5.0, 1.0, -3.0), Vec3::new(0.2, -0.9, 0.1));
        p.update(&r, 42);
        assert_eq!(p.predict(&r), Some(42));
    }

    #[test]
    fn coherent_rays_share_an_entry() {
        // Two rays from nearby origins with nearly equal directions
        // quantize identically.
        let mut p = Predictor::new(256);
        let a = ray(Vec3::new(10.0, 4.0, 2.0), Vec3::new(0.3, 0.8, 0.5));
        let b = ray(Vec3::new(10.3, 4.2, 2.1), Vec3::new(0.1, 0.9, 0.4));
        p.update(&a, 7);
        assert_eq!(
            p.predict(&b),
            Some(7),
            "coherent neighbour should reuse the prediction"
        );
    }

    #[test]
    fn divergent_rays_do_not_collide_usually() {
        let mut p = Predictor::new(1024);
        p.update(&ray(Vec3::ZERO, Vec3::Z), 1);
        let mut misses = 0;
        for i in 0..20 {
            let d = Vec3::new((i as f32 * 0.7).sin(), 0.4, (i as f32 * 1.3).cos());
            if p.predict(&ray(Vec3::new(50.0 + 4.0 * i as f32, 0.0, 9.0), d)) != Some(1) {
                misses += 1;
            }
        }
        assert!(
            misses >= 18,
            "unrelated rays should rarely alias, got {misses} misses"
        );
    }

    #[test]
    fn new_update_overwrites_old() {
        let mut p = Predictor::new(16);
        let r = ray(Vec3::new(1.0, 1.0, 1.0), Vec3::X);
        p.update(&r, 3);
        p.update(&r, 9);
        assert_eq!(p.predict(&r), Some(9));
        assert_eq!(p.stats().updates, 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Predictor::new(0);
    }

    #[test]
    fn non_power_of_two_tables_distribute_acceptably() {
        // Indexing is `h % len` over a splitmix64-finalized signature, so
        // any table size (not just powers of two) must spread distinct
        // signatures near-uniformly: modulo of a well-mixed 64-bit hash
        // has no resonance with the quantization lattice. Pin that for
        // sizes with odd factors, including a prime.
        for len in [768usize, 1000, 1021] {
            let p = Predictor::new(len);
            let mut counts = vec![0u32; len];
            let mut distinct = 0u32;
            // Origins spaced one 4-unit quantization cell apart: every
            // (i, j) pair is a distinct signature.
            for i in 0..100 {
                for j in 0..80 {
                    let r = ray(
                        Vec3::new(4.0 * i as f32, 4.0 * j as f32, 0.0),
                        Vec3::new(0.3, 0.8, 0.5),
                    );
                    let (slot, _) = p.slot_and_tag(&r);
                    counts[slot] += 1;
                    distinct += 1;
                }
            }
            let mean = distinct as f64 / len as f64;
            let max = *counts.iter().max().unwrap() as f64;
            let empty = counts.iter().filter(|&&c| c == 0).count() as f64;
            assert!(
                max <= 4.0 * mean,
                "len {len}: hottest slot {max} vs mean {mean:.1} — modulo bias"
            );
            assert!(
                empty / len as f64 <= 0.05,
                "len {len}: {empty} empty slots of {len} — clustered indexing"
            );
        }
    }
}
