//! GPU and RT-unit configuration (Table 1 of the paper).

use crate::predictor::PredictPolicy;
use crate::reorder::{ReorderPolicy, DEFAULT_REORDER_BUCKETS};
use cooprt_gpu::{MemoryConfig, PowerModel};

/// Warp width — 32 threads, lock-step (§2.2).
pub const WARP_SIZE: usize = 32;

/// Which traversal policy the RT unit runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TraversalPolicy {
    /// The baseline RT unit: every thread traverses only its own ray
    /// (Algorithm 1).
    #[default]
    Baseline,
    /// CoopRT: the Load Balancing Unit lets idle threads steal nodes
    /// from busy threads' traversal stacks (Algorithm 2).
    CoopRt,
}

impl TraversalPolicy {
    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            TraversalPolicy::Baseline => "baseline",
            TraversalPolicy::CoopRt => "cooprt",
        }
    }
}

/// Where the LBU takes a node from the main thread's traversal stack.
///
/// The paper's hardware pops the **top** of the stack (§4.2); classic
/// software work-stealing takes from the **bottom**, where nodes root
/// larger subtrees. `ablation_steal_depth` compares the two.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StealPosition {
    /// Steal the top-of-stack node (the paper's design).
    #[default]
    Top,
    /// Steal the bottom-of-stack node (deque-style work stealing).
    Bottom,
}

/// Traversal order of the per-thread node container (§4.2).
///
/// The paper's hardware performs DFS over a stack (LIFO); the same
/// cooperative mechanism applies to BFS over a queue (FIFO), where
/// "helper threads would steal nodes from the front of the queue". BFS
/// exposes more parallelism early at the cost of a larger node
/// container high-water mark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TraversalOrder {
    /// Depth-first: process the most recently pushed node (the paper's
    /// baseline and CoopRT design).
    #[default]
    Dfs,
    /// Breadth-first: process the oldest pushed node.
    Bfs,
}

/// How subwarp groups are serviced by the LBU each cycle (§7.5).
///
/// The paper weighs two implementations: processing **all** subwarps in
/// one cycle (one small PE pair per group — the synthesized design of
/// Table 3), or a subwarp scheduler that picks **one** suitable group
/// per cycle (less logic, plus scheduling hardware). It argues both
/// perform alike because `trace_ray` latency dwarfs the scheduling
/// latency; the `subwarp_scheduling_modes_perform_similarly` engine
/// test verifies that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SubwarpMode {
    /// Every subwarp group finds a pair each cycle (first approach).
    #[default]
    AllGroups,
    /// A round-robin subwarp scheduler services one group per cycle
    /// (second approach).
    OneGroup,
}

/// How pixels are grouped into warps.
///
/// Real GPUs rasterize warps over small screen tiles so that the 32
/// rays of a warp are spatially coherent; a linear strip of 32 pixels
/// is the naive alternative. Coherent tiles keep warp rays in nearby
/// BVH subtrees (better coalescing and L1 reuse) — and, by reducing
/// intra-warp divergence, they shrink the headroom CoopRT feeds on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WarpTiling {
    /// 32 consecutive pixels of one row (Vulkan-sim's thread-block
    /// mapping; the default, and what every calibrated figure uses).
    #[default]
    Linear,
    /// An 8-wide x 4-tall screen tile per warp (the common hardware
    /// rasterization mapping) — the `ablations` coherence study.
    Tiled8x4,
}

/// Full configuration of the simulated GPU.
///
/// Defaults mirror Table 1 (`SM75_RTX2060`): 30 SMs, one RT unit per SM,
/// a 4-entry RT warp buffer, 32 thread blocks per SM, and the Table 1
/// memory system. [`GpuConfig::mobile`] gives the §7.4 mobile part.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Memory system parameters.
    pub mem: MemoryConfig,
    /// RT-unit warp buffer entries (Table 1: 4).
    pub warp_buffer_size: usize,
    /// Maximum resident thread blocks per SM (Table 1: 32). Each TB is
    /// one warp, the Vulkan-sim default.
    pub max_tbs_per_sm: usize,
    /// Subwarp scope of the Load Balancing Unit: only threads within the
    /// same subwarp may help each other. `32` = whole-warp cooperation
    /// (the paper's default); §7.5 explores 4, 8 and 16.
    pub subwarp_size: usize,
    /// Latency of the per-thread math units (coordinate transform +
    /// intersection tests), core cycles.
    pub math_latency: u64,
    /// Cycles the raygen shader spends computing the primary ray.
    pub raygen_cycles: u64,
    /// Per-bounce shading cost attributed to ALU instructions, cycles.
    pub shade_alu_cycles: u64,
    /// Per-bounce shading cost attributed to load/store instructions
    /// (hit-record reads, color stores), cycles.
    pub shade_mem_cycles: u64,
    /// Per-bounce shading cost attributed to SFU instructions
    /// (normalize / sqrt / trig), cycles.
    pub shade_sfu_cycles: u64,
    /// Path-tracing bounce budget (§2.1: 16 in this study).
    pub max_bounces: u32,
    /// Ambient-occlusion rays per shaded pixel.
    pub ao_samples: u32,
    /// Maximum AO ray length (world units) — AO rays are short and
    /// localized (§7.3).
    pub ao_radius: f32,
    /// Shadow rays per shaded pixel.
    pub sh_samples: u32,
    /// Node transfers the LBU performs per subwarp per cycle (the
    /// paper's hardware moves exactly one; `ablation_lbu_rate` sweeps
    /// this).
    pub lbu_moves_per_cycle: u32,
    /// Which end of the main thread's stack the LBU steals from.
    /// Ignored under [`TraversalOrder::Bfs`], which always steals from
    /// the queue front as the paper describes.
    pub steal_from: StealPosition,
    /// DFS (stack) or BFS (queue) node ordering.
    pub traversal_order: TraversalOrder,
    /// All-groups-per-cycle or one-group-per-cycle LBU servicing.
    pub subwarp_mode: SubwarpMode,
    /// Pixel-to-warp mapping (screen tiles vs linear strips).
    pub warp_tiling: WarpTiling,
    /// Ray reordering ahead of warp formation (Meister et al.): sort
    /// pending rays by a spatial coherence key before packing them into
    /// warps, at first-wave formation and — with
    /// [`GpuConfig::compaction`] — at every between-wave re-packing.
    /// The third policy axis, orthogonal to
    /// [`TraversalPolicy`](crate::TraversalPolicy) and
    /// [`WarpTiling`]: timing-only, never results (images stay bitwise
    /// identical to [`ReorderPolicy::Off`]).
    pub reorder: ReorderPolicy,
    /// Bucket count of the reordering counting sort. Must be non-zero
    /// when [`GpuConfig::reorder`] is enabled (typed
    /// [`ConfigError`](crate::ConfigError) at the simulation entry
    /// points).
    pub reorder_buckets: usize,
    /// Intersection prediction (Liu et al., MICRO'21; §8.2): a per-SM
    /// hardware cache mapping quantized ray signatures to previously hit
    /// primitives. Predicted primitives are tested *first*: a verified
    /// hit answers any-hit queries without traversal and seeds
    /// `min_thit` for closest-hit queries. The paper notes it is
    /// "effective with localized rays that AO and SH shaders generate"
    /// but untested on PT — the `ext_predictor` bench measures both.
    pub intersection_predictor: bool,
    /// Hash-based ray-path prediction (Demoullin et al.): any-hit
    /// traversals start at a predicted BVH entry node and walk up one
    /// parent level at a time on a subtree miss (go-up-level fallback),
    /// so occlusion outcomes — and therefore images — are bitwise
    /// identical to [`PredictPolicy::Off`]. The fourth policy axis,
    /// orthogonal to [`TraversalPolicy`], [`GpuConfig::reorder`] and
    /// compaction/tiling. Unlike reordering this one changes real
    /// traversal *work* (node fetches flow through the same L1/MSHR
    /// path), so cycle counts move; images never do.
    pub predict: PredictPolicy,
    /// Entries in each per-SM prediction table (direct-mapped; shared
    /// sizing for the intersection and ray-path tables).
    ///
    /// Must be non-zero when [`GpuConfig::intersection_predictor`] or
    /// [`GpuConfig::predict`] is enabled — rejected with a typed
    /// [`ConfigError::ZeroPredictorEntries`](crate::ConfigError) at
    /// every simulation entry point. Any non-zero size is
    /// valid — the table index is a splitmix64-finalized signature
    /// reduced modulo this size, so non-power-of-two sizes distribute
    /// uniformly too (pinned by the predictor's distribution test);
    /// powers of two merely match the hardware-cost model of the
    /// original technique.
    pub predictor_entries: usize,
    /// Active-thread compaction (Wald, HPG'11), the software technique
    /// the paper contrasts with in §3/§8.1: between bounces, threads
    /// with live rays are re-packed into fewer, denser warps. Addresses
    /// *inactive* threads but not *early finishers* — the `ext_compaction`
    /// bench reproduces that argument. Execution becomes wave-synchronous
    /// (one `trace_ray` per warp per wave).
    pub compaction: bool,
    /// Cycles charged between waves for the compaction pass / relaunch.
    pub compaction_overhead_cycles: u64,
    /// Child-node prefetching: when an internal node is processed, the
    /// surviving children's lines are prefetched. A simple stand-in for
    /// the treelet prefetcher the paper discusses in §8.2 — useful when
    /// bandwidth is abundant, counterproductive once CoopRT saturates it
    /// (the `ext_prefetch` bench quantifies the interaction).
    pub prefetch_children: bool,
    /// Eliminate child nodes whose AABB entry distance is not closer
    /// than the current `min_thit` (Algorithm 1 line 8). Disabling this
    /// (`ablation_no_elimination`) quantifies how much pruning saves.
    pub node_elimination: bool,
    /// Thread-activity sampling interval, cycles (the paper samples
    /// AerialVision stats every 500 cycles).
    pub sample_interval: u64,
    /// Power model for energy/EDP reporting.
    pub power: PowerModel,
}

impl GpuConfig {
    /// The desktop configuration of Table 1.
    pub fn rtx2060() -> Self {
        GpuConfig {
            mem: MemoryConfig::rtx2060_like(30),
            warp_buffer_size: 4,
            max_tbs_per_sm: 32,
            subwarp_size: WARP_SIZE,
            math_latency: 12,
            raygen_cycles: 60,
            shade_alu_cycles: 30,
            shade_mem_cycles: 90,
            shade_sfu_cycles: 15,
            max_bounces: 16,
            ao_samples: 4,
            ao_radius: 2.5,
            sh_samples: 2,
            lbu_moves_per_cycle: 1,
            steal_from: StealPosition::Top,
            traversal_order: TraversalOrder::Dfs,
            subwarp_mode: SubwarpMode::AllGroups,
            warp_tiling: WarpTiling::Linear,
            reorder: ReorderPolicy::Off,
            reorder_buckets: DEFAULT_REORDER_BUCKETS,
            intersection_predictor: false,
            predict: PredictPolicy::Off,
            predictor_entries: 1024,
            compaction: false,
            compaction_overhead_cycles: 300,
            prefetch_children: false,
            node_elimination: true,
            sample_interval: 500,
            power: PowerModel::gpuwattch_like(),
        }
    }

    /// The §7.4 mobile configuration: 8 SMs, 4 memory channels.
    pub fn mobile() -> Self {
        GpuConfig {
            mem: MemoryConfig::mobile_like(8),
            ..Self::rtx2060()
        }
    }

    /// A scaled-down desktop config for unit tests: `sms` SMs, same
    /// relative parameters.
    pub fn small(sms: usize) -> Self {
        GpuConfig {
            mem: MemoryConfig::rtx2060_like(sms),
            ..Self::rtx2060()
        }
    }

    /// Returns a copy with a different RT warp buffer size (Fig. 13
    /// sweep).
    pub fn with_warp_buffer(mut self, entries: usize) -> Self {
        assert!(entries > 0, "warp buffer needs at least one entry");
        self.warp_buffer_size = entries;
        self
    }

    /// Returns a copy with a different LBU subwarp scope (Fig. 19
    /// sweep).
    ///
    /// # Panics
    ///
    /// Panics unless `size` is one of 4, 8, 16 or 32.
    pub fn with_subwarp(mut self, size: usize) -> Self {
        assert!(
            matches!(size, 4 | 8 | 16 | 32),
            "subwarp size must be 4, 8, 16 or 32 (got {size})"
        );
        self.subwarp_size = size;
        self
    }

    /// Returns a copy with a different ray-reordering policy (the
    /// bench matrix's third axis).
    pub fn with_reorder(mut self, policy: ReorderPolicy) -> Self {
        self.reorder = policy;
        self
    }

    /// Returns a copy with a different ray-path prediction policy (the
    /// bench matrix's fourth axis).
    pub fn with_predict(mut self, policy: PredictPolicy) -> Self {
        self.predict = policy;
        self
    }

    /// Number of SMs (each with one RT unit).
    pub fn sm_count(&self) -> usize {
        self.mem.sm_count
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::rtx2060()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = GpuConfig::rtx2060();
        assert_eq!(c.sm_count(), 30);
        assert_eq!(c.warp_buffer_size, 4);
        assert_eq!(c.max_tbs_per_sm, 32);
        assert_eq!(c.subwarp_size, 32);
        assert_eq!(c.max_bounces, 16);
    }

    #[test]
    fn mobile_is_smaller() {
        let m = GpuConfig::mobile();
        assert_eq!(m.sm_count(), 8);
        assert_eq!(m.mem.dram_channels, 4);
    }

    #[test]
    fn sweep_helpers() {
        let c = GpuConfig::rtx2060().with_warp_buffer(16).with_subwarp(8);
        assert_eq!(c.warp_buffer_size, 16);
        assert_eq!(c.subwarp_size, 8);
    }

    #[test]
    #[should_panic(expected = "subwarp size")]
    fn bad_subwarp_rejected() {
        let _ = GpuConfig::rtx2060().with_subwarp(5);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(TraversalPolicy::Baseline.label(), "baseline");
        assert_eq!(TraversalPolicy::CoopRt.label(), "cooprt");
        assert_eq!(TraversalPolicy::default(), TraversalPolicy::Baseline);
    }

    #[test]
    fn reorder_axis_defaults_off_with_buckets() {
        let c = GpuConfig::rtx2060();
        assert_eq!(c.reorder, ReorderPolicy::Off);
        assert_eq!(c.reorder_buckets, DEFAULT_REORDER_BUCKETS);
        let m = c.with_reorder(ReorderPolicy::Morton);
        assert_eq!(m.reorder, ReorderPolicy::Morton);
    }

    #[test]
    fn predict_axis_defaults_off_with_entries() {
        let c = GpuConfig::rtx2060();
        assert_eq!(c.predict, PredictPolicy::Off);
        assert_eq!(c.predictor_entries, 1024);
        let p = c.with_predict(PredictPolicy::RayPath);
        assert_eq!(p.predict, PredictPolicy::RayPath);
    }
}
