//! Ray reordering: coherence-keyed warp re-packing ahead of the RT
//! units ("On Ray Reordering Techniques for Faster GPU Ray Tracing",
//! Meister et al.).
//!
//! CoopRT attacks traversal divergence *after* warps are formed (idle
//! threads steal nodes inside a warp); reordering is the complementary
//! lever *before* warp formation: sort the pending rays by a spatial
//! coherence key so that the 32 rays packed into one warp walk nearby
//! BVH subtrees. The engine applies it at two points — first-wave warp
//! formation, and (with [`compaction`](crate::GpuConfig::compaction)
//! on) every between-wave re-packing of live threads.
//!
//! Two key constructions are provided, selected by [`ReorderPolicy`]:
//!
//! - **Morton** — a 30-bit Morton code of the quantized ray origin
//!   (10 bits per axis over the scene's root AABB, HLBVH-style bit
//!   interleaving) with the 3-bit direction octant in the low bits:
//!   origin-major ordering, so warps share L1/L2 working sets.
//! - **Octant-hash** — a concatenated "ray hash" key: direction octant
//!   in the high bits, then the quantized direction magnitudes, then a
//!   coarse origin cell. Direction-major ordering, the classic
//!   hash-based grouping for secondary rays.
//!
//! Both keys are exactly [`KEY_BITS`] wide, so one bucketing scheme
//! serves both.
//!
//! # Determinism
//!
//! Warp packing must be reproducible — golden cycle counts, the
//! record/replay differential and the serve result cache all depend on
//! it — so the permutation is computed by a **stable bucketed counting
//! sort**: keys map to buckets through an order-preserving
//! multiply-shift, bucket offsets come from a prefix sum, and threads
//! scatter in their original order. No comparison sort, no
//! `sort_unstable`, no hash-map iteration: the same threads with the
//! same keys produce the same order on every platform and at every
//! host worker count (keys are pure functions of the ray and the scene
//! bounds; the engine itself is single-threaded).
//!
//! # Results are never touched
//!
//! Reordering permutes *work*, never *results*: per-pixel shading
//! depends only on that pixel's own ray sequence and hits, which are
//! warp-independent. Images are bitwise identical to the unordered run
//! under every policy combination — `reorder_is_functionally_neutral`
//! here, the `cooprt-check` reorder oracle, and the simperf reorder
//! matrix all pin that.

use cooprt_math::{Aabb, Ray, Vec3};

/// Width of every reorder key, bits. Both [`ReorderPolicy::Morton`]
/// and [`ReorderPolicy::OctantHash`] keys occupy exactly this many low
/// bits, so bucket mapping is one shared multiply-shift.
pub const KEY_BITS: u32 = 33;

/// Default counting-sort bucket count
/// ([`GpuConfig::reorder_buckets`](crate::GpuConfig::reorder_buckets)).
pub const DEFAULT_REORDER_BUCKETS: usize = 256;

/// The ray-reordering policy: the third axis of the evaluation matrix,
/// orthogonal to [`TraversalPolicy`](crate::TraversalPolicy) and to
/// warp tiling/compaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReorderPolicy {
    /// No reordering: warps form in tiling/compaction order (the
    /// default, and what every pre-existing golden number uses).
    #[default]
    Off,
    /// Sort by Morton code of the quantized origin, direction octant
    /// as tiebreak (origin-major spatial coherence).
    Morton,
    /// Sort by direction octant, then quantized direction, then coarse
    /// origin cell (direction-major "ray hash" coherence).
    OctantHash,
}

impl ReorderPolicy {
    /// Short label used in benchmark tables and CLI/API surfaces.
    pub fn label(self) -> &'static str {
        match self {
            ReorderPolicy::Off => "off",
            ReorderPolicy::Morton => "morton",
            ReorderPolicy::OctantHash => "octant-hash",
        }
    }

    /// Parses a [`ReorderPolicy::label`] back to the policy.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(ReorderPolicy::Off),
            "morton" => Some(ReorderPolicy::Morton),
            "octant-hash" => Some(ReorderPolicy::OctantHash),
            _ => None,
        }
    }

    /// All three policies, in matrix order.
    pub const ALL: [ReorderPolicy; 3] = [
        ReorderPolicy::Off,
        ReorderPolicy::Morton,
        ReorderPolicy::OctantHash,
    ];
}

/// Spreads the low 10 bits of `v` so consecutive bits land 3 apart
/// (the classic HLBVH `expand_bits`).
#[inline]
fn expand_bits10(v: u32) -> u32 {
    let mut v = v & 0x3ff;
    v = (v | (v << 16)) & 0x0300_00ff;
    v = (v | (v << 8)) & 0x0300_f00f;
    v = (v | (v << 4)) & 0x030c_30c3;
    v = (v | (v << 2)) & 0x0924_9249;
    v
}

/// Interleaves three 10-bit coordinates into a 30-bit Morton code
/// (`x` highest-order, matching the HLBVH convention).
#[inline]
pub fn morton3(x: u32, y: u32, z: u32) -> u32 {
    (expand_bits10(x) << 2) | (expand_bits10(y) << 1) | expand_bits10(z)
}

/// Quantizes `v` over `[min, min + extent)` to `bits` bits. A
/// degenerate extent (flat scene axis) maps everything to cell 0,
/// which merely collapses that axis's contribution to the key.
#[inline]
fn quantize(v: f32, min: f32, extent: f32, bits: u32) -> u32 {
    let cells = 1u32 << bits;
    // NaN extents (empty scene bounds) fall through to cell 0 too.
    if extent.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater) {
        return 0;
    }
    let t = ((v - min) / extent).clamp(0.0, 1.0);
    ((t * cells as f32) as u32).min(cells - 1)
}

/// The direction octant: sign bits of `(x, y, z)` packed into 3 bits.
#[inline]
pub fn octant(dir: Vec3) -> u32 {
    (u32::from(dir.x < 0.0) << 2) | (u32::from(dir.y < 0.0) << 1) | u32::from(dir.z < 0.0)
}

/// The reorder key of one ray under `policy` (zero for
/// [`ReorderPolicy::Off`]). Always fits in [`KEY_BITS`] bits.
#[inline]
pub fn ray_key(policy: ReorderPolicy, ray: &Ray, bounds: &Aabb) -> u64 {
    let ext = bounds.max - bounds.min;
    match policy {
        ReorderPolicy::Off => 0,
        ReorderPolicy::Morton => {
            // Origin-major: 30-bit origin Morton code, octant low.
            let m = morton3(
                quantize(ray.orig.x, bounds.min.x, ext.x, 10),
                quantize(ray.orig.y, bounds.min.y, ext.y, 10),
                quantize(ray.orig.z, bounds.min.z, ext.z, 10),
            );
            (u64::from(m) << 3) | u64::from(octant(ray.dir))
        }
        ReorderPolicy::OctantHash => {
            // Direction-major "ray hash": octant (3b), |direction|
            // quantized to 5 bits per axis as a 15-bit Morton code,
            // then a coarse 5-bit-per-axis origin cell (15-bit Morton).
            let dq = morton3(
                quantize(ray.dir.x.abs(), 0.0, 1.0, 5),
                quantize(ray.dir.y.abs(), 0.0, 1.0, 5),
                quantize(ray.dir.z.abs(), 0.0, 1.0, 5),
            );
            let oq = morton3(
                quantize(ray.orig.x, bounds.min.x, ext.x, 5),
                quantize(ray.orig.y, bounds.min.y, ext.y, 5),
                quantize(ray.orig.z, bounds.min.z, ext.z, 5),
            );
            (u64::from(octant(ray.dir)) << 30) | (u64::from(dq) << 15) | u64::from(oq)
        }
    }
}

/// Order-preserving multiply-shift from a [`KEY_BITS`]-bit key to a
/// bucket index in `[0, buckets)`.
#[inline]
pub fn bucket_of(key: u64, buckets: usize) -> usize {
    debug_assert!(key < (1u64 << KEY_BITS));
    ((u128::from(key) * buckets as u128) >> KEY_BITS) as usize
}

/// Counters of one reordering pass (or the per-frame sum of all
/// passes), feeding [`FrameResult`](crate::FrameResult) and the
/// metrics report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Reordering passes run (1 without compaction, one per wave with).
    pub passes: u64,
    /// Ray keys computed (= threads considered across passes).
    pub keys_computed: u64,
    /// Threads whose position changed relative to the pre-sort order.
    pub rays_moved: u64,
    /// Non-empty buckets, summed over passes.
    pub bucket_occupancy_sum: u64,
    /// Configured bucket count (0 until the first pass).
    pub buckets: u64,
}

impl ReorderStats {
    /// Folds one pass's counters into the per-frame sum.
    pub fn add(&mut self, other: &ReorderStats) {
        self.passes += other.passes;
        self.keys_computed += other.keys_computed;
        self.rays_moved += other.rays_moved;
        self.bucket_occupancy_sum += other.bucket_occupancy_sum;
        self.buckets = self.buckets.max(other.buckets);
    }

    /// Mean occupied-bucket count per pass.
    pub fn avg_bucket_occupancy(&self) -> f64 {
        if self.passes == 0 {
            0.0
        } else {
            self.bucket_occupancy_sum as f64 / self.passes as f64
        }
    }
}

/// Stable bucketed counting sort: permutes `threads` by ascending
/// bucket of `key_of(thread)`, preserving the input order within each
/// bucket. Returns the permuted order plus this pass's counters.
///
/// # Panics
///
/// Panics if `buckets == 0`; the engine validates
/// [`GpuConfig::reorder_buckets`](crate::GpuConfig::reorder_buckets)
/// before any pass runs.
pub fn reorder_by_key(
    threads: &[u32],
    buckets: usize,
    mut key_of: impl FnMut(u32) -> u64,
) -> (Vec<u32>, ReorderStats) {
    assert!(buckets > 0, "counting sort needs at least one bucket");
    let mut bucket_ix = Vec::with_capacity(threads.len());
    let mut counts = vec![0u32; buckets];
    for &t in threads {
        let b = bucket_of(key_of(t), buckets);
        bucket_ix.push(b);
        counts[b] += 1;
    }
    let occupied = counts.iter().filter(|&&c| c > 0).count() as u64;
    // Exclusive prefix sum: counts[b] becomes the first output slot of
    // bucket b.
    let mut offset = 0u32;
    for c in counts.iter_mut() {
        let n = *c;
        *c = offset;
        offset += n;
    }
    let mut order = vec![0u32; threads.len()];
    for (i, &t) in threads.iter().enumerate() {
        let slot = &mut counts[bucket_ix[i]];
        order[*slot as usize] = t;
        *slot += 1;
    }
    let moved = order
        .iter()
        .zip(threads.iter())
        .filter(|(a, b)| a != b)
        .count() as u64;
    let stats = ReorderStats {
        passes: 1,
        keys_computed: threads.len() as u64,
        rays_moved: moved,
        bucket_occupancy_sum: occupied,
        buckets: buckets as u64,
    };
    (order, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_math::Vec3;

    fn unit_bounds() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0))
    }

    #[test]
    fn morton_interleaves_like_hlbvh() {
        // x=1, y=0, z=0 -> bit 2; x=0, y=0, z=1 -> bit 0.
        assert_eq!(morton3(1, 0, 0), 0b100);
        assert_eq!(morton3(0, 1, 0), 0b010);
        assert_eq!(morton3(0, 0, 1), 0b001);
        assert_eq!(morton3(0b11, 0, 0), 0b100100);
        // Full-width inputs stay within 30 bits.
        assert!(morton3(0x3ff, 0x3ff, 0x3ff) < (1 << 30));
    }

    #[test]
    fn keys_fit_key_bits_and_separate_octants() {
        let b = unit_bounds();
        for policy in [ReorderPolicy::Morton, ReorderPolicy::OctantHash] {
            let fwd = Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(0.0, 0.0, 1.0));
            let bwd = Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(0.0, 0.0, -1.0));
            let kf = ray_key(policy, &fwd, &b);
            let kb = ray_key(policy, &bwd, &b);
            assert!(kf < (1 << KEY_BITS) && kb < (1 << KEY_BITS), "{policy:?}");
            assert_ne!(kf, kb, "{policy:?} must separate opposite octants");
        }
        assert_eq!(
            ray_key(
                ReorderPolicy::Off,
                &Ray::new(Vec3::ZERO, Vec3::X),
                &unit_bounds()
            ),
            0
        );
    }

    #[test]
    fn morton_keys_order_nearby_origins_together() {
        let b = unit_bounds();
        let at = |x: f32| {
            ray_key(
                ReorderPolicy::Morton,
                &Ray::new(Vec3::new(x, 0.1, 0.1), Vec3::Y),
                &b,
            )
        };
        // Two origins in the same quantization cell share a key...
        assert_eq!(at(0.100), at(0.1004));
        // ...and far apart origins do not.
        assert_ne!(at(0.1), at(0.9));
    }

    #[test]
    fn degenerate_bounds_do_not_panic_or_divide_by_zero() {
        let flat = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 1.0));
        let r = Ray::new(Vec3::new(0.5, 0.0, 0.5), Vec3::Y);
        for policy in ReorderPolicy::ALL {
            let k = ray_key(policy, &r, &flat);
            assert!(k < (1 << KEY_BITS));
        }
    }

    #[test]
    fn counting_sort_is_stable_and_deterministic() {
        // Two buckets; odd threads key high, even key low. Stability:
        // evens keep their relative order, then odds keep theirs.
        let threads: Vec<u32> = (0..10).collect();
        let key = |t: u32| if t % 2 == 1 { (1 << KEY_BITS) - 1 } else { 0 };
        let (order, stats) = reorder_by_key(&threads, 2, key);
        assert_eq!(order, vec![0, 2, 4, 6, 8, 1, 3, 5, 7, 9]);
        assert_eq!(stats.keys_computed, 10);
        assert_eq!(stats.bucket_occupancy_sum, 2);
        assert_eq!(stats.buckets, 2);
        // rays_moved counts positions that changed (index 0 and the
        // final 9 land where they started).
        assert_eq!(stats.rays_moved, 8);
        // Determinism: bitwise the same on a second run.
        let (order2, _) = reorder_by_key(&threads, 2, key);
        assert_eq!(order, order2);
    }

    #[test]
    fn identity_keys_leave_the_order_untouched() {
        let threads: Vec<u32> = (0..77).collect();
        let (order, stats) = reorder_by_key(&threads, 64, |_| 0);
        assert_eq!(order, threads);
        assert_eq!(stats.rays_moved, 0);
        assert_eq!(stats.bucket_occupancy_sum, 1);
    }

    #[test]
    fn bucket_mapping_is_order_preserving_and_in_range() {
        let buckets = 37; // non-power-of-two on purpose
        let mut last = 0usize;
        for k in (0..(1u64 << KEY_BITS)).step_by(1 << 24) {
            let b = bucket_of(k, buckets);
            assert!(b < buckets);
            assert!(b >= last, "bucket map must be monotone in the key");
            last = b;
        }
        assert_eq!(bucket_of((1 << KEY_BITS) - 1, buckets), buckets - 1);
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in ReorderPolicy::ALL {
            assert_eq!(ReorderPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(ReorderPolicy::parse("sideways"), None);
        assert_eq!(ReorderPolicy::default(), ReorderPolicy::Off);
    }
}
