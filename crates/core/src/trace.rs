//! Trace-driven record/replay: capture the front end once, replay the
//! timing model everywhere.
//!
//! Design-space sweeps re-run the whole simulator per configuration,
//! even though only the timing model (caches, MSHRs, DRAM, RT units,
//! LBU) changes between points. This module splits the two halves
//! behind a compact binary trace:
//!
//! - **Record** ([`Trace::record`]): a live run with a [`Recorder`]
//!   installed (the same zero-cost-when-disabled tap pattern as
//!   [`Tracer`](cooprt_telemetry::Tracer) / [`Checker`](crate::Checker))
//!   captures every `(ray, t_max)` a shader thread submits at the
//!   warp-issue boundary, the per-SM `trace_ray` issue stream, the
//!   final image, and the serialized BVH. Recording is observational:
//!   cycle counts are bitwise identical with the recorder on or off.
//! - **Replay** ([`Trace::replay`]): the engine runs with recorded
//!   per-thread ray streams in place of live shader threads — no RNG,
//!   no shading, no scene build — while the RT units re-execute
//!   functional traversal inside the timing model exactly as live.
//!   Replaying at the recorded configuration is bitwise
//!   cycle-identical to live simulation (`golden_cycles` pins this for
//!   all 15 scenes x both policies).
//!
//! **Why ray-level recording replays under any timing config.** The
//! per-thread `(ray, t_max)` sequences depend only on functional hit
//! results, which the simulator guarantees are identical across
//! traversal policies, warp tilings, cache geometries and every other
//! timing knob (the image-identity tests pin this). Recording at the
//! fetch level instead would bake in LBU steal decisions, which *are*
//! timing-dependent under CoopRT. So one trace recorded under any
//! config replays validly under any sweep point that keeps the
//! shader-visible fields ([`Trace::check_config`]) fixed — including
//! the other traversal policy.
//!
//! The trace embeds the serialized [`BvhImage`], so replay is fully
//! self-contained: a sweep shard decodes the trace and runs, skipping
//! scene generation, BVH build *and* raygen.
//!
//! # Format (version 1)
//!
//! All integers are LEB128 varints unless stated; `f32` values are
//! stored as their exact little-endian bit patterns (bitwise identity
//! survives the round trip).
//!
//! ```text
//! magic   "CPRT" (4 raw bytes)
//! version varint
//! header  scene name (str), detail, scene content hash,
//!         shader kind (u8), width, height, sample salt,
//!         max_bounces, ao_samples, ao_radius (f32), sh_samples
//! bvh     root addr, node count, nodes (tag u8; leaf: triangle index,
//!         internal: child count x [addr offset, bounds 6xf32]),
//!         root bounds (6xf32), triangle count, triangles (9xf32)
//! streams thread count, per thread: record count x
//!         [orig 3xf32, dir 3xf32, t_max f32]
//! issues  record count x [sm, warp, iteration, active lanes]
//! image   thread count x [r, g, b]  (f32 each)
//! footer  FNV-1a 64 checksum of everything after the magic (8 raw
//!         little-endian bytes)
//! ```

use crate::config::{GpuConfig, TraversalPolicy};
use crate::engine::{ConfigError, FrameResult, Simulation};
use crate::rtunit::TraceQuery;
use crate::shader::ShaderKind;
use cooprt_bvh::{BvhImage, ChildRef, Node, NodeKind};
use cooprt_math::{Aabb, Ray, Rgb, Triangle, Vec3};
use cooprt_scenes::Scene;
use std::sync::{Arc, Mutex};

/// The four magic bytes opening every trace.
pub const TRACE_MAGIC: [u8; 4] = *b"CPRT";

/// Current trace format version.
pub const TRACE_VERSION: u64 = 1;

/// Typed decode/replay error. Corrupt or truncated input surfaces as a
/// value of this type — never a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// The buffer does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The trace was written by an unknown format version.
    UnsupportedVersion(u64),
    /// The buffer ended in the middle of a field.
    Truncated {
        /// Byte offset at which the read ran out of input.
        offset: usize,
    },
    /// A field decoded but its value is inconsistent (bad enum tag,
    /// counts that disagree, an unpacked BVH layout, ...).
    Corrupt(String),
    /// The footer checksum does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the footer.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// The replay configuration changes a shader-visible field, so the
    /// recorded ray streams would not be the streams a live run under
    /// that configuration produces.
    ConfigMismatch(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a CoopRT trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads {TRACE_VERSION})"
                )
            }
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated at byte {offset}")
            }
            TraceError::Corrupt(why) => write!(f, "corrupt trace: {why}"),
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: footer {stored:#018x}, body hashes to {computed:#018x}"
            ),
            TraceError::ConfigMismatch(why) => write!(f, "config incompatible with trace: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One recorded ray submission of one shader thread, in issue order.
///
/// Stores the exact `f32` bits of the live ray; [`RayRecord::ray`]
/// reconstructs the [`Ray`] with the identical precomputed reciprocal
/// direction (IEEE division is deterministic), so replayed traversal is
/// bit-exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RayRecord {
    /// Ray origin.
    pub orig: Vec3,
    /// Unit ray direction.
    pub dir: Vec3,
    /// The thread's `t_max` at submission (closest-hit search bound).
    pub t_max: f32,
}

impl RayRecord {
    /// Captures a live ray and its search bound.
    pub fn from_ray(ray: Ray, t_max: f32) -> Self {
        RayRecord {
            orig: ray.orig,
            dir: ray.dir,
            t_max,
        }
    }

    /// Reconstructs the ray exactly as the live engine submitted it.
    pub fn ray(&self) -> Ray {
        Ray::from_unit(self.orig, self.dir)
    }
}

/// One warp `trace_ray` issue as seen at an SM's RT-unit port.
///
/// Informational (the `cooprt trace info` instruction-stream summary);
/// replay regenerates issues from the ray streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IssueRecord {
    /// Issuing SM.
    pub sm: u32,
    /// Warp id within its wave.
    pub warp: u32,
    /// The warp's bounce iteration at issue.
    pub iteration: u32,
    /// Number of lanes carrying a ray.
    pub active_lanes: u32,
}

#[derive(Debug, Default)]
struct RecordState {
    /// Per-thread (= per-pixel) submissions in issue order.
    streams: Vec<Vec<RayRecord>>,
    /// Per-SM issue stream in cycle order.
    issues: Vec<IssueRecord>,
}

/// Shared handle installed into a [`Simulation`] to capture the front
/// end of one frame (see [`Simulation::with_recorder`]).
///
/// Same shape as [`Tracer`](cooprt_telemetry::Tracer) and
/// [`Checker`](crate::Checker): a disabled recorder is a `None` and
/// every tap is a single branch, so the default path pays nothing.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<RecordState>>>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder that captures ray submissions and issue records.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Mutex::new(RecordState::default()))),
        }
    }

    /// True if this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Engine tap: a frame over `pixels` threads is starting.
    #[inline]
    pub(crate) fn begin(&self, pixels: usize) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.lock().unwrap();
        state.streams.clear();
        state.streams.resize(pixels, Vec::new());
        state.issues.clear();
    }

    /// Engine tap: warp `warp` issued a `trace_ray` on SM `sm`. Lane
    /// `i` belongs to thread `members[i]`; active lanes append their
    /// `(ray, t_max)` to that thread's stream.
    #[inline]
    pub(crate) fn record_issue(
        &self,
        sm: u32,
        warp: u32,
        iteration: u32,
        members: &[u32],
        query: &TraceQuery,
    ) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.lock().unwrap();
        let mut active = 0u32;
        for (i, &t) in members.iter().enumerate() {
            if let Some(ray) = query.rays[i] {
                active += 1;
                state.streams[t as usize].push(RayRecord::from_ray(ray, query.t_max[i]));
            }
        }
        state.issues.push(IssueRecord {
            sm,
            warp,
            iteration,
            active_lanes: active,
        });
    }

    /// Drains the captured streams and issue records.
    pub fn take(&self) -> (Vec<Vec<RayRecord>>, Vec<IssueRecord>) {
        match &self.inner {
            None => (Vec::new(), Vec::new()),
            Some(inner) => {
                let mut state = inner.lock().unwrap();
                (
                    std::mem::take(&mut state.streams),
                    std::mem::take(&mut state.issues),
                )
            }
        }
    }
}

/// A decoded (or freshly recorded) trace: header, embedded BVH, the
/// per-thread ray streams, the issue stream, and the final image.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Scene label the trace was recorded from.
    pub scene_name: String,
    /// Scene detail level (informational).
    pub detail: u32,
    /// [`BvhImage::content_hash`] of the embedded BVH.
    pub scene_hash: u64,
    /// Shader the front end ran.
    pub kind: ShaderKind,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// RNG salt of the recorded sample.
    pub sample_salt: u64,
    /// Shader-visible config at record time: [`GpuConfig::max_bounces`].
    pub max_bounces: u32,
    /// Shader-visible config at record time: [`GpuConfig::ao_samples`].
    pub ao_samples: u32,
    /// Shader-visible config at record time: [`GpuConfig::ao_radius`].
    pub ao_radius: f32,
    /// Shader-visible config at record time: [`GpuConfig::sh_samples`].
    pub sh_samples: u32,
    /// The serialized BVH the rays traverse (self-contained replay).
    pub bvh: BvhImage,
    /// Per-thread ray submissions, `width * height` streams.
    pub streams: Vec<Vec<RayRecord>>,
    /// Warp-issue stream (informational).
    pub issues: Vec<IssueRecord>,
    /// The recorded final image (replay never shades).
    pub image: Vec<Rgb>,
}

impl Trace {
    /// Runs one live frame with recording enabled and packages the
    /// capture as a [`Trace`].
    ///
    /// `detail` is carried in the header for provenance only. The
    /// returned [`FrameResult`] is bitwise identical to a run without
    /// the recorder.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyFrame`] for zero-pixel frames.
    pub fn record(
        scene: &Scene,
        detail: u32,
        cfg: &GpuConfig,
        policy: TraversalPolicy,
        kind: ShaderKind,
        width: usize,
        height: usize,
    ) -> Result<(FrameResult, Trace), ConfigError> {
        let recorder = Recorder::enabled();
        let frame = Simulation::new(scene, cfg, policy)
            .with_recorder(recorder.clone())
            .run_frame(kind, width, height)?;
        let (streams, issues) = recorder.take();
        let trace = Trace {
            scene_name: scene.name.clone(),
            detail,
            scene_hash: scene.image.content_hash(),
            kind,
            width,
            height,
            sample_salt: 0,
            max_bounces: cfg.max_bounces,
            ao_samples: cfg.ao_samples,
            ao_radius: cfg.ao_radius,
            sh_samples: cfg.sh_samples,
            bvh: scene.image.clone(),
            streams,
            issues,
            image: frame.image.clone(),
        };
        Ok((frame, trace))
    }

    /// Drives the timing model from this trace under `cfg`/`policy`,
    /// without re-running shading or building the scene.
    ///
    /// Replaying at the recorded configuration reproduces the live
    /// cycle count bitwise; replaying at a different timing
    /// configuration (caches, MSHRs, DRAM, warp buffer, subwarp, LBU,
    /// tiling, compaction, either policy) is exactly the simulation a
    /// live run of that point would perform, minus the front-end cost.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ConfigMismatch`] if `cfg` changes a
    /// shader-visible field (see [`Trace::check_config`]).
    pub fn replay(
        &self,
        cfg: &GpuConfig,
        policy: TraversalPolicy,
    ) -> Result<FrameResult, TraceError> {
        self.check_config(cfg)?;
        let scene = Scene::for_replay(self.scene_name.clone(), self.bvh.clone());
        Simulation::new(&scene, cfg, policy)
            .replay_frame(
                self.kind,
                self.width,
                self.height,
                self.streams.clone(),
                self.image.clone(),
            )
            .map_err(|e| TraceError::Corrupt(e.to_string()))
    }

    /// Verifies that `cfg` keeps every shader-visible field the streams
    /// were recorded under. Timing-only fields may differ freely.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ConfigMismatch`] naming the first
    /// diverging field.
    pub fn check_config(&self, cfg: &GpuConfig) -> Result<(), TraceError> {
        let mismatch = |field: &str, recorded: String, requested: String| {
            Err(TraceError::ConfigMismatch(format!(
                "{field} recorded as {recorded}, requested {requested}"
            )))
        };
        if cfg.max_bounces != self.max_bounces {
            return mismatch(
                "max_bounces",
                self.max_bounces.to_string(),
                cfg.max_bounces.to_string(),
            );
        }
        if cfg.ao_samples != self.ao_samples {
            return mismatch(
                "ao_samples",
                self.ao_samples.to_string(),
                cfg.ao_samples.to_string(),
            );
        }
        if cfg.ao_radius.to_bits() != self.ao_radius.to_bits() {
            return mismatch(
                "ao_radius",
                self.ao_radius.to_string(),
                cfg.ao_radius.to_string(),
            );
        }
        if cfg.sh_samples != self.sh_samples {
            return mismatch(
                "sh_samples",
                self.sh_samples.to_string(),
                cfg.sh_samples.to_string(),
            );
        }
        Ok(())
    }

    /// Total ray submissions across all threads.
    pub fn total_records(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Encodes the trace into the version-1 binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TraceWriter::new();
        w.put_varint(TRACE_VERSION);
        // Header.
        w.put_str(&self.scene_name);
        w.put_varint(u64::from(self.detail));
        w.put_varint(self.scene_hash);
        w.put_u8(match self.kind {
            ShaderKind::PathTrace => 0,
            ShaderKind::AmbientOcclusion => 1,
            ShaderKind::Shadow => 2,
            ShaderKind::Knn => 3,
            ShaderKind::Radius => 4,
            ShaderKind::Contain => 5,
        });
        w.put_varint(self.width as u64);
        w.put_varint(self.height as u64);
        w.put_varint(self.sample_salt);
        w.put_varint(u64::from(self.max_bounces));
        w.put_varint(u64::from(self.ao_samples));
        w.put_f32(self.ao_radius);
        w.put_varint(u64::from(self.sh_samples));
        // BVH.
        let base = self.bvh.root_addr();
        w.put_varint(base);
        w.put_varint(self.bvh.node_count() as u64);
        for node in &self.bvh {
            match &node.kind {
                NodeKind::Leaf { triangle } => {
                    w.put_u8(0);
                    w.put_varint(u64::from(*triangle));
                }
                NodeKind::Internal { children } => {
                    w.put_u8(1);
                    w.put_varint(children.len() as u64);
                    for c in children {
                        w.put_varint(c.addr - base);
                        put_aabb(&mut w, &c.bounds);
                    }
                }
            }
        }
        put_aabb(&mut w, &self.bvh.root_bounds());
        w.put_varint(self.bvh.triangles().len() as u64);
        for t in self.bvh.triangles() {
            put_vec3(&mut w, t.v0);
            put_vec3(&mut w, t.v1);
            put_vec3(&mut w, t.v2);
        }
        // Streams.
        w.put_varint(self.streams.len() as u64);
        for stream in &self.streams {
            w.put_varint(stream.len() as u64);
            for rec in stream {
                put_vec3(&mut w, rec.orig);
                put_vec3(&mut w, rec.dir);
                w.put_f32(rec.t_max);
            }
        }
        // Issues.
        w.put_varint(self.issues.len() as u64);
        for issue in &self.issues {
            w.put_varint(u64::from(issue.sm));
            w.put_varint(u64::from(issue.warp));
            w.put_varint(u64::from(issue.iteration));
            w.put_varint(u64::from(issue.active_lanes));
        }
        // Image.
        for px in &self.image {
            w.put_f32(px.r);
            w.put_f32(px.g);
            w.put_f32(px.b);
        }
        // Assemble: magic + body + checksum footer.
        let body = w.into_bytes();
        let mut out = Vec::with_capacity(4 + body.len() + 8);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv64(&body).to_le_bytes());
        out
    }

    /// Decodes a version-1 trace, validating magic, version, checksum
    /// and structural consistency.
    ///
    /// # Errors
    ///
    /// Every malformation maps to a [`TraceError`]; this function never
    /// panics on untrusted input.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        if bytes.len() < 4 {
            return Err(TraceError::Truncated {
                offset: bytes.len(),
            });
        }
        if bytes[..4] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut r = TraceReader::new(&bytes[4..]);
        let version = r.read_varint()?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        // Checksum: the last 8 bytes cover everything after the magic.
        if bytes.len() < 4 + r.position() + 8 {
            return Err(TraceError::Truncated {
                offset: bytes.len(),
            });
        }
        let body = &bytes[4..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let computed = fnv64(body);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        let mut r = TraceReader::new(body);
        let _version = r.read_varint()?;
        // Header.
        let scene_name = r.read_str()?;
        let detail = read_u32(&mut r, "detail")?;
        let scene_hash = r.read_varint()?;
        let kind = match r.read_u8()? {
            0 => ShaderKind::PathTrace,
            1 => ShaderKind::AmbientOcclusion,
            2 => ShaderKind::Shadow,
            3 => ShaderKind::Knn,
            4 => ShaderKind::Radius,
            5 => ShaderKind::Contain,
            k => return Err(TraceError::Corrupt(format!("unknown shader kind tag {k}"))),
        };
        let width = read_usize(&mut r, "width")?;
        let height = read_usize(&mut r, "height")?;
        let sample_salt = r.read_varint()?;
        let max_bounces = read_u32(&mut r, "max_bounces")?;
        let ao_samples = read_u32(&mut r, "ao_samples")?;
        let ao_radius = r.read_f32()?;
        let sh_samples = read_u32(&mut r, "sh_samples")?;
        let pixels = width
            .checked_mul(height)
            .filter(|&p| p > 0)
            .ok_or_else(|| TraceError::Corrupt(format!("bad frame geometry {width}x{height}")))?;
        // BVH.
        let base = r.read_varint()?;
        let node_count = read_count(&mut r, "node count")?;
        let mut nodes = Vec::with_capacity(node_count);
        let mut addr = base;
        for _ in 0..node_count {
            let kind = match r.read_u8()? {
                0 => NodeKind::Leaf {
                    triangle: read_u32(&mut r, "leaf triangle")?,
                },
                1 => {
                    let n = read_count(&mut r, "child count")?;
                    let mut children = Vec::with_capacity(n);
                    for _ in 0..n {
                        let offset = r.read_varint()?;
                        let bounds = read_aabb(&mut r)?;
                        children.push(ChildRef {
                            addr: base + offset,
                            bounds,
                        });
                    }
                    NodeKind::Internal { children }
                }
                t => return Err(TraceError::Corrupt(format!("unknown node tag {t}"))),
            };
            let node = Node { addr, kind };
            addr += u64::from(node.size_bytes());
            nodes.push(node);
        }
        let root_bounds = read_aabb(&mut r)?;
        let triangle_count = read_count(&mut r, "triangle count")?;
        let mut triangles = Vec::with_capacity(triangle_count);
        for _ in 0..triangle_count {
            triangles.push(Triangle::new(
                read_vec3(&mut r)?,
                read_vec3(&mut r)?,
                read_vec3(&mut r)?,
            ));
        }
        let bvh =
            BvhImage::from_parts(nodes, root_bounds, triangles).map_err(TraceError::Corrupt)?;
        if bvh.content_hash() != scene_hash {
            return Err(TraceError::Corrupt(format!(
                "embedded BVH hashes to {:#018x}, header says {scene_hash:#018x}",
                bvh.content_hash()
            )));
        }
        // Streams.
        let thread_count = read_count(&mut r, "thread count")?;
        if thread_count != pixels {
            return Err(TraceError::Corrupt(format!(
                "{thread_count} ray streams for a {width}x{height} frame"
            )));
        }
        let mut streams = Vec::with_capacity(thread_count);
        for _ in 0..thread_count {
            let n = read_count(&mut r, "stream length")?;
            let mut stream = Vec::with_capacity(n);
            for _ in 0..n {
                let orig = read_vec3(&mut r)?;
                let dir = read_vec3(&mut r)?;
                let t_max = r.read_f32()?;
                stream.push(RayRecord { orig, dir, t_max });
            }
            streams.push(stream);
        }
        // Issues.
        let issue_count = read_count(&mut r, "issue count")?;
        let mut issues = Vec::with_capacity(issue_count);
        for _ in 0..issue_count {
            issues.push(IssueRecord {
                sm: read_u32(&mut r, "issue sm")?,
                warp: read_u32(&mut r, "issue warp")?,
                iteration: read_u32(&mut r, "issue iteration")?,
                active_lanes: read_u32(&mut r, "issue lanes")?,
            });
        }
        // Image.
        let mut image = Vec::with_capacity(pixels);
        for _ in 0..pixels {
            image.push(Rgb {
                r: r.read_f32()?,
                g: r.read_f32()?,
                b: r.read_f32()?,
            });
        }
        if r.remaining() > 0 {
            return Err(TraceError::Corrupt(format!(
                "{} trailing bytes after the image section",
                r.remaining()
            )));
        }
        Ok(Trace {
            scene_name,
            detail,
            scene_hash,
            kind,
            width,
            height,
            sample_salt,
            max_bounces,
            ao_samples,
            ao_radius,
            sh_samples,
            bvh,
            streams,
            issues,
            image,
        })
    }
}

/// Binary encoder for the trace format: LEB128 varints plus raw
/// little-endian `f32` bit patterns.
#[derive(Debug, Default)]
pub struct TraceWriter {
    buf: Vec<u8>,
}

impl TraceWriter {
    /// An empty writer.
    pub fn new() -> Self {
        TraceWriter::default()
    }

    /// Appends an LEB128-encoded unsigned integer (1..=10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends the exact bit pattern of an `f32` (little-endian).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Binary decoder over a byte slice; every read returns a typed
/// [`TraceError`] instead of panicking on truncated or malformed input.
#[derive(Debug)]
pub struct TraceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> TraceReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        TraceReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8, TraceError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(TraceError::Truncated { offset: self.pos });
        };
        self.pos += 1;
        Ok(b)
    }

    /// Reads an LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] at end of input;
    /// [`TraceError::Corrupt`] for overlong encodings (more than 10
    /// bytes, which cannot fit a `u64`).
    pub fn read_varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        for i in 0..10 {
            let byte = self.read_u8()?;
            // The 10th byte may only carry the u64's top bit.
            if i == 9 && byte > 1 {
                return Err(TraceError::Corrupt(format!(
                    "overlong varint at byte {}",
                    self.pos - 10
                )));
            }
            v |= u64::from(byte & 0x7f) << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceError::Corrupt(format!(
            "unterminated varint at byte {}",
            self.pos - 10
        )))
    }

    /// Reads an `f32` from its little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] at end of input.
    pub fn read_f32(&mut self) -> Result<f32, TraceError> {
        if self.remaining() < 4 {
            return Err(TraceError::Truncated { offset: self.pos });
        }
        let bits = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(f32::from_bits(bits))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] if the prefix overruns the buffer;
    /// [`TraceError::Corrupt`] for invalid UTF-8 or an absurd length.
    pub fn read_str(&mut self) -> Result<String, TraceError> {
        let len = self.read_varint()? as usize;
        if len > self.remaining() {
            return Err(TraceError::Truncated { offset: self.pos });
        }
        let s = std::str::from_utf8(&self.buf[self.pos..self.pos + len])
            .map_err(|e| TraceError::Corrupt(format!("invalid UTF-8 string: {e}")))?
            .to_string();
        self.pos += len;
        Ok(s)
    }
}

/// Reads an element count, rejecting values that provably exceed the
/// remaining input (each element is at least one byte) before any
/// allocation happens — a corrupt count must not OOM the decoder.
fn read_count(r: &mut TraceReader<'_>, what: &str) -> Result<usize, TraceError> {
    let n = r.read_varint()?;
    if n > r.remaining() as u64 {
        return Err(TraceError::Corrupt(format!(
            "{what} {n} exceeds the {} bytes left in the trace",
            r.remaining()
        )));
    }
    Ok(n as usize)
}

fn read_u32(r: &mut TraceReader<'_>, what: &str) -> Result<u32, TraceError> {
    let v = r.read_varint()?;
    u32::try_from(v).map_err(|_| TraceError::Corrupt(format!("{what} {v} overflows u32")))
}

fn read_usize(r: &mut TraceReader<'_>, what: &str) -> Result<usize, TraceError> {
    let v = r.read_varint()?;
    usize::try_from(v).map_err(|_| TraceError::Corrupt(format!("{what} {v} overflows usize")))
}

fn put_vec3(w: &mut TraceWriter, v: Vec3) {
    w.put_f32(v.x);
    w.put_f32(v.y);
    w.put_f32(v.z);
}

fn read_vec3(r: &mut TraceReader<'_>) -> Result<Vec3, TraceError> {
    Ok(Vec3::new(r.read_f32()?, r.read_f32()?, r.read_f32()?))
}

fn put_aabb(w: &mut TraceWriter, aabb: &Aabb) {
    put_vec3(w, aabb.min);
    put_vec3(w, aabb.max);
}

fn read_aabb(r: &mut TraceReader<'_>) -> Result<Aabb, TraceError> {
    let min = read_vec3(r)?;
    let max = read_vec3(r)?;
    Ok(Aabb { min, max })
}

/// FNV-1a 64 over a byte slice (the trace footer checksum; the
/// workspace carries no external hashing dependency).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_scenes::SceneId;

    fn record_small(
        id: SceneId,
        policy: TraversalPolicy,
        kind: ShaderKind,
    ) -> (FrameResult, Trace) {
        let scene = id.build(2);
        let cfg = GpuConfig::small(2);
        Trace::record(&scene, 2, &cfg, policy, kind, 8, 8).unwrap()
    }

    #[test]
    fn varint_roundtrips_boundary_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = TraceWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = TraceReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_varint().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_is_minimal_length() {
        for (v, len) in [(0u64, 1usize), (127, 1), (128, 2), (16_383, 2), (16_384, 3)] {
            let mut w = TraceWriter::new();
            w.put_varint(v);
            assert_eq!(w.bytes().len(), len, "varint({v})");
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // Eleven continuation bytes can never terminate inside a u64.
        let bytes = [0x80u8; 11];
        let mut r = TraceReader::new(&bytes);
        assert!(matches!(r.read_varint(), Err(TraceError::Corrupt(_))));
        // A 10-byte varint whose last byte overflows the top bit.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        let mut r = TraceReader::new(&bytes);
        assert!(matches!(r.read_varint(), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn f32_bits_survive_the_round_trip() {
        let values = [
            0.0f32,
            -0.0,
            1.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
            12345.678,
        ];
        let mut w = TraceWriter::new();
        for &v in &values {
            w.put_f32(v);
        }
        let bytes = w.into_bytes();
        let mut r = TraceReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_f32().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn reader_reports_truncation_with_offsets() {
        let mut r = TraceReader::new(&[]);
        assert_eq!(r.read_u8(), Err(TraceError::Truncated { offset: 0 }));
        let mut r = TraceReader::new(&[0x80]);
        assert_eq!(r.read_varint(), Err(TraceError::Truncated { offset: 1 }));
        let mut r = TraceReader::new(&[1, 2, 3]);
        assert_eq!(r.read_f32(), Err(TraceError::Truncated { offset: 0 }));
    }

    #[test]
    fn trace_roundtrips_bitwise() {
        let (_, trace) = record_small(
            SceneId::Wknd,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );
        let bytes = trace.encode();
        let decoded = Trace::decode(&bytes).unwrap();
        assert_eq!(decoded.scene_name, trace.scene_name);
        assert_eq!(decoded.detail, trace.detail);
        assert_eq!(decoded.scene_hash, trace.scene_hash);
        assert_eq!(decoded.kind, trace.kind);
        assert_eq!(decoded.width, trace.width);
        assert_eq!(decoded.height, trace.height);
        assert_eq!(decoded.max_bounces, trace.max_bounces);
        assert_eq!(decoded.ao_samples, trace.ao_samples);
        assert_eq!(decoded.ao_radius.to_bits(), trace.ao_radius.to_bits());
        assert_eq!(decoded.sh_samples, trace.sh_samples);
        assert_eq!(decoded.bvh.content_hash(), trace.bvh.content_hash());
        assert_eq!(decoded.streams, trace.streams);
        assert_eq!(decoded.issues, trace.issues);
        assert_eq!(decoded.image, trace.image);
    }

    #[test]
    fn trace_roundtrips_for_every_shader_kind() {
        for kind in [
            ShaderKind::PathTrace,
            ShaderKind::AmbientOcclusion,
            ShaderKind::Shadow,
        ] {
            let (_, trace) = record_small(SceneId::Bath, TraversalPolicy::Baseline, kind);
            let decoded = Trace::decode(&trace.encode()).unwrap();
            assert_eq!(decoded.kind, kind);
            assert_eq!(decoded.streams, trace.streams);
        }
    }

    #[test]
    fn every_truncation_prefix_fails_without_panicking() {
        let (_, trace) = record_small(
            SceneId::Ship,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let bytes = trace.encode();
        // Cover every prefix of the (small) header region and a stride
        // through the bulk so the test stays fast.
        for len in (0..bytes.len().min(256)).chain((256..bytes.len()).step_by(97)) {
            let err = Trace::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated { .. }
                        | TraceError::ChecksumMismatch { .. }
                        | TraceError::Corrupt(_)
                        | TraceError::BadMagic
                        | TraceError::UnsupportedVersion(_)
                ),
                "prefix {len}: {err}"
            );
        }
    }

    #[test]
    fn corrupted_bytes_fail_the_checksum() {
        let (_, trace) = record_small(
            SceneId::Wknd,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let bytes = trace.encode();
        // Flip one bit in a stride of positions across the body; every
        // flip must surface as a typed error (usually the checksum).
        for pos in (4..bytes.len() - 8).step_by(131) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(Trace::decode(&bad).is_err(), "flip at {pos} went unnoticed");
        }
        // Corrupting the footer itself is a checksum mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            Trace::decode(&bad),
            Err(TraceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let (_, trace) = record_small(
            SceneId::Wknd,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let bytes = trace.encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(Trace::decode(&bad), Err(TraceError::BadMagic)));
        let mut bad = bytes.clone();
        bad[4] = 99; // version varint
        assert!(matches!(
            Trace::decode(&bad),
            Err(TraceError::UnsupportedVersion(99))
        ));
        assert!(matches!(
            Trace::decode(&[]),
            Err(TraceError::Truncated { .. })
        ));
        assert!(matches!(
            Trace::decode(b"CPRT"),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn replay_is_cycle_identical_to_live() {
        for (id, kind) in [
            (SceneId::Wknd, ShaderKind::PathTrace),
            (SceneId::Crnvl, ShaderKind::PathTrace),
            (SceneId::Bath, ShaderKind::AmbientOcclusion),
            (SceneId::Ref, ShaderKind::Shadow),
        ] {
            for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
                let scene = id.build(2);
                let cfg = GpuConfig::small(2);
                let live = Simulation::new(&scene, &cfg, policy)
                    .run_frame(kind, 8, 8)
                    .unwrap();
                let (recorded, trace) = Trace::record(&scene, 2, &cfg, policy, kind, 8, 8).unwrap();
                assert_eq!(
                    recorded.cycles, live.cycles,
                    "{id}/{policy:?}/{kind:?}: recording perturbed the run"
                );
                let replayed = trace.replay(&cfg, policy).unwrap();
                assert_eq!(replayed.cycles, live.cycles, "{id}/{policy:?}/{kind:?}");
                assert_eq!(replayed.image, live.image, "{id}/{policy:?}/{kind:?}");
                assert_eq!(replayed.events, live.events, "{id}/{policy:?}/{kind:?}");
                assert_eq!(replayed.rays, live.rays, "{id}/{policy:?}/{kind:?}");
                assert_eq!(
                    replayed.mem.l1.accesses, live.mem.l1.accesses,
                    "{id}/{policy:?}/{kind:?}"
                );
            }
        }
    }

    #[test]
    fn one_trace_replays_under_both_policies() {
        // Record once (baseline), replay under either policy: the ray
        // streams are policy-invariant.
        let scene = SceneId::Party.build(2);
        let cfg = GpuConfig::small(2);
        let (_, trace) = Trace::record(
            &scene,
            2,
            &cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            8,
            8,
        )
        .unwrap();
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let live = Simulation::new(&scene, &cfg, policy)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap();
            let replayed = trace.replay(&cfg, policy).unwrap();
            assert_eq!(replayed.cycles, live.cycles, "{policy:?}");
            assert_eq!(replayed.image, live.image, "{policy:?}");
        }
    }

    #[test]
    fn replay_sweeps_timing_configs_from_one_trace() {
        // The recorded config and the replayed config differ in
        // timing-only fields; replay must equal a live run at the
        // replayed config.
        let scene = SceneId::Fox.build(2);
        let record_cfg = GpuConfig::small(2);
        let (_, trace) = Trace::record(
            &scene,
            2,
            &record_cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            8,
            8,
        )
        .unwrap();
        let mut sweep = Vec::new();
        let mut bigger_l1 = GpuConfig::small(2);
        bigger_l1.mem.l1_bytes *= 2;
        sweep.push(bigger_l1);
        sweep.push(GpuConfig::small(2).with_warp_buffer(8));
        let mut tiled = GpuConfig::small(2);
        tiled.warp_tiling = crate::config::WarpTiling::Tiled8x4;
        sweep.push(tiled);
        let mut compact = GpuConfig::small(2);
        compact.compaction = true;
        sweep.push(compact);
        for (i, cfg) in sweep.iter().enumerate() {
            for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
                let live = Simulation::new(&scene, cfg, policy)
                    .run_frame(ShaderKind::PathTrace, 8, 8)
                    .unwrap();
                let replayed = trace.replay(cfg, policy).unwrap();
                assert_eq!(replayed.cycles, live.cycles, "config {i} under {policy:?}");
                assert_eq!(replayed.image, live.image, "config {i} under {policy:?}");
            }
        }
    }

    #[test]
    fn one_unordered_trace_replays_every_reorder_policy() {
        // Reordering is timing-only, so a trace recorded with reorder
        // Off sweeps the whole reorder axis: replay-with-reorder must
        // be cycle-identical to a live reordered run and bitwise
        // image-identical to the recorded frame.
        let scene = SceneId::Party.build(2);
        let record_cfg = GpuConfig::small(2);
        let (recorded, trace) = Trace::record(
            &scene,
            2,
            &record_cfg,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            8,
            8,
        )
        .unwrap();
        for reorder in [
            crate::ReorderPolicy::Morton,
            crate::ReorderPolicy::OctantHash,
        ] {
            let cfg = GpuConfig::small(2).with_reorder(reorder);
            for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
                let live = Simulation::new(&scene, &cfg, policy)
                    .run_frame(ShaderKind::PathTrace, 8, 8)
                    .unwrap();
                let replayed = trace.replay(&cfg, policy).unwrap();
                assert_eq!(replayed.cycles, live.cycles, "{reorder:?}/{policy:?}");
                assert_eq!(replayed.image, recorded.image, "{reorder:?}/{policy:?}");
                assert_eq!(replayed.reorder, live.reorder, "{reorder:?}/{policy:?}");
                assert!(replayed.reorder.passes >= 1, "{reorder:?}/{policy:?}");
            }
        }
    }

    #[test]
    fn replay_rejects_shader_visible_config_changes() {
        let (_, trace) = record_small(
            SceneId::Wknd,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
        );
        let mut cfg = GpuConfig::small(2);
        cfg.max_bounces += 1;
        assert!(matches!(
            trace.replay(&cfg, TraversalPolicy::Baseline),
            Err(TraceError::ConfigMismatch(_))
        ));
        let mut cfg = GpuConfig::small(2);
        cfg.ao_samples += 1;
        assert!(matches!(
            trace.check_config(&cfg),
            Err(TraceError::ConfigMismatch(_))
        ));
        // Timing-only changes pass.
        let mut cfg = GpuConfig::small(2);
        cfg.mem.l1_mshr_entries *= 2;
        assert!(trace.check_config(&cfg).is_ok());
    }

    #[test]
    fn disabled_recorder_records_nothing_and_yields_empty() {
        let recorder = Recorder::disabled();
        assert!(!recorder.is_enabled());
        recorder.begin(64);
        let (streams, issues) = recorder.take();
        assert!(streams.is_empty());
        assert!(issues.is_empty());
    }

    #[test]
    fn recorded_streams_match_the_frame_shape() {
        let (frame, trace) = record_small(
            SceneId::Wknd,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
        );
        assert_eq!(trace.streams.len(), 64);
        assert_eq!(trace.image, frame.image);
        // Every thread traced at least the primary ray.
        assert!(trace.streams.iter().all(|s| !s.is_empty()));
        // Issue records account for exactly the recorded submissions.
        let issued: u64 = trace.issues.iter().map(|i| u64::from(i.active_lanes)).sum();
        assert_eq!(issued, trace.total_records());
        assert_eq!(issued, frame.rays);
    }

    #[test]
    fn decoded_trace_replays_identically_to_the_original() {
        let scene = SceneId::Chsnt.build(2);
        let cfg = GpuConfig::small(2);
        let live = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        let (_, trace) = Trace::record(
            &scene,
            2,
            &cfg,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
            8,
            8,
        )
        .unwrap();
        let decoded = Trace::decode(&trace.encode()).unwrap();
        let replayed = decoded.replay(&cfg, TraversalPolicy::CoopRt).unwrap();
        assert_eq!(replayed.cycles, live.cycles);
        assert_eq!(replayed.image, live.image);
    }
}
