//! The RT unit: warp buffer, memory scheduler, response FIFO, math units
//! and the CoopRT Load Balancing Unit (§2.3, §4, §5).
//!
//! One RT unit exists per SM. Each cycle it:
//!
//! 1. pops at most one response from the response FIFO and runs the
//!    per-thread math units on it (child AABB tests / triangle test,
//!    min_thit update through the per-thread AND/OR network of Fig. 7);
//! 2. schedules one non-stalling warp from the warp buffer;
//! 3. coalesces the top-of-stack node addresses of that warp's eligible
//!    threads and issues **one** unique address to the memory hierarchy;
//! 4. (CoopRT only) lets the LBU move one node per subwarp from a busy
//!    thread's stack to an idle thread's stack;
//! 5. retires any warp whose threads have all drained.
//!
//! The traversal is performed *functionally inside the timing model*:
//! node elimination tests children against the live `min_thit` of the
//! ray's main thread, which is exactly the hardware behaviour (and what
//! the paper had to approximate in Vulkan-sim's split functional/timing
//! design, §6.1).

use crate::check::Checker;
use crate::config::{
    GpuConfig, StealPosition, SubwarpMode, TraversalOrder, TraversalPolicy, WARP_SIZE,
};
use crate::lbu::{find_pairs, LbuPair};
use crate::predictor::{PredictPolicy, Predictor, PredictorStats, RayPathPredictor};
use cooprt_bvh::NodeKind;
use cooprt_gpu::{EnergyEvents, EventCalendar, MemoryHierarchy};
use cooprt_math::Ray;
use cooprt_scenes::Scene;
use cooprt_telemetry::{EventKind, Tracer};
use std::collections::VecDeque;

/// The hit a ray ends a `trace_ray` with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RayHit {
    /// Index of the closest-hit (or first any-hit) triangle.
    pub triangle: u32,
    /// Hit distance.
    pub t: f32,
}

/// One `trace_ray` instruction as dispatched to the RT unit: up to 32
/// rays, one per active thread.
#[derive(Clone, Debug)]
pub struct TraceQuery {
    /// Identifier of the issuing warp (opaque to the RT unit).
    pub warp: usize,
    /// Per-thread ray; `None` for threads masked off by SIMT divergence.
    pub rays: [Option<Ray>; WARP_SIZE],
    /// Per-thread search limit (`f32::INFINITY` for closest-hit;
    /// the light/occlusion distance for shadow and AO rays).
    pub t_max: [f32; WARP_SIZE],
    /// Any-hit semantics: terminate a ray on its first accepted hit.
    pub any_hit: bool,
    /// Gather semantics (spatial queries): instead of intersecting the
    /// ray against the tree, every node whose AABB *contains the ray
    /// origin* is descended and every such leaf triangle is collected
    /// into [`TraceResult::gathered`] — a full enumeration with no
    /// early-out, so `min_thit`/`best` are never touched. The rays are
    /// epsilon probes ([`Ray::probe`]); timing-wise each node visit
    /// still costs one fetch and one box/triangle test per thread.
    pub gather: bool,
}

impl TraceQuery {
    /// A closest-hit query over the given per-thread rays.
    pub fn closest_hit(warp: usize, rays: [Option<Ray>; WARP_SIZE]) -> Self {
        TraceQuery {
            warp,
            rays,
            t_max: [f32::INFINITY; WARP_SIZE],
            any_hit: false,
            gather: false,
        }
    }
}

/// The retired result of one `trace_ray` instruction.
#[derive(Clone, Debug)]
pub struct TraceResult {
    /// The issuing warp.
    pub warp: usize,
    /// Per-thread hit (indexed by the thread that owns the ray).
    pub hits: [Option<RayHit>; WARP_SIZE],
    /// Gather-mode collection: `(lane, triangle)` pairs credited to the
    /// lane that *owns* the ray (helpers credit their main thread), in
    /// ascending `(lane, triangle)` order regardless of the traversal
    /// interleaving the LBU produced. Empty for non-gather queries.
    pub gathered: Vec<(u8, u32)>,
    /// Cycle the instruction entered the RT unit.
    pub issued_at: u64,
    /// Cycle the instruction retired.
    pub retired_at: u64,
}

/// Per-thread status for activity sampling (Fig. 4 categories).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusCounts {
    /// Threads with a non-empty stack or an outstanding fetch.
    pub busy: usize,
    /// Active threads that drained early and are waiting for the warp.
    pub waiting: usize,
    /// Threads masked off (no ray for this `trace_ray`).
    pub inactive: usize,
}

impl StatusCounts {
    /// Total sampled threads.
    pub fn total(&self) -> usize {
        self.busy + self.waiting + self.inactive
    }
}

/// "No outstanding fetch" sentinel in [`ThreadArray::pending`].
const NO_PENDING: u64 = u64::MAX;

/// Cycles one ray-path prediction-table probe keeps a lane's math units
/// busy before its first node fetch can issue (the table is a small
/// per-SM SRAM read in parallel with traversal setup).
const PREDICT_LOOKUP_CYCLES: u64 = 1;

/// Per-ray ray-path prediction state (indexed by the ray's main
/// thread). Present while the traversal runs below the root: from the
/// predicted entry node through any go-up-level fallback steps.
#[derive(Clone, Copy, Debug)]
struct PredictState {
    /// Node the traversal currently starts from: the predicted entry,
    /// then successive ancestors after go-up steps.
    level: u64,
    /// Depth of `level` below the root — the ancestor fetches a
    /// root-start traversal would have performed first.
    depth: u32,
    /// True until the first go-up step: an accepted hit now is an
    /// entry hit (the prediction was exactly right).
    at_entry: bool,
    /// The child of `level` whose subtree the previous restart already
    /// drained (a restart trail): when the node at `level` is
    /// processed, this child is not re-pushed. Exact for any-hit — the
    /// skipped subtree was searched exhaustively with no accept.
    skip: Option<u64>,
}

/// Per-warp thread state in struct-of-arrays layout.
///
/// Each per-cycle sweep (scheduling, coalescing, response delivery, LBU
/// mask building) reads *one* attribute across all 32 threads, so the
/// attributes live in parallel arrays that each sweep walks linearly.
/// The `nonempty`/`pending_mask` occupancy bitmaps additionally answer
/// the aggregate questions (drained? anyone issuable? who can help?)
/// with bit arithmetic, and let the sweeps visit only the set bits —
/// in ascending thread order, which keeps every scheduling decision
/// identical to the old array-of-structs scan.
#[derive(Clone, Debug)]
struct ThreadArray {
    /// Node container per thread: a stack under DFS (process back), a
    /// queue under BFS (process front). Pushes always go to the back.
    stacks: Vec<VecDeque<u64>>,
    /// Outstanding fetch address per thread ([`NO_PENDING`] = none).
    pending: [u64; WARP_SIZE],
    /// Cycle each thread's math units are free again.
    ready_at: [u64; WARP_SIZE],
    /// Owner of the ray each thread traverses (differs from the thread
    /// itself after an LBU steal).
    main_tid: [u8; WARP_SIZE],
    /// Bit `i` set ⇔ `stacks[i]` is non-empty.
    nonempty: u32,
    /// Bit `i` set ⇔ thread `i` has an outstanding fetch.
    pending_mask: u32,
}

impl ThreadArray {
    fn new() -> Self {
        ThreadArray {
            stacks: (0..WARP_SIZE).map(|_| VecDeque::new()).collect(),
            pending: [NO_PENDING; WARP_SIZE],
            ready_at: [0; WARP_SIZE],
            main_tid: std::array::from_fn(|i| i as u8),
            nonempty: 0,
            pending_mask: 0,
        }
    }

    /// Clears all per-thread state; stack capacity is retained so a
    /// recycled array allocates nothing.
    fn reset(&mut self) {
        for s in &mut self.stacks {
            s.clear();
        }
        self.pending = [NO_PENDING; WARP_SIZE];
        self.ready_at = [0; WARP_SIZE];
        for (i, m) in self.main_tid.iter_mut().enumerate() {
            *m = i as u8;
        }
        self.nonempty = 0;
        self.pending_mask = 0;
    }

    fn busy_mask(&self) -> u32 {
        self.nonempty | self.pending_mask
    }

    fn drained(&self) -> bool {
        self.busy_mask() == 0
    }

    /// Threads with a non-empty stack and no outstanding fetch. The
    /// per-thread `ready_at` gate still applies on top of this mask.
    fn issue_candidates(&self) -> u32 {
        self.nonempty & !self.pending_mask
    }

    fn push(&mut self, tid: usize, node: u64) {
        self.stacks[tid].push_back(node);
        self.nonempty |= 1 << tid;
    }

    /// The node thread `tid` would process next.
    fn peek_next(&self, tid: usize, order: TraversalOrder) -> Option<u64> {
        match order {
            TraversalOrder::Dfs => self.stacks[tid].back().copied(),
            TraversalOrder::Bfs => self.stacks[tid].front().copied(),
        }
    }

    /// Removes and returns the node thread `tid` would process next.
    fn pop_next(&mut self, tid: usize, order: TraversalOrder) -> Option<u64> {
        let node = match order {
            TraversalOrder::Dfs => self.stacks[tid].pop_back(),
            TraversalOrder::Bfs => self.stacks[tid].pop_front(),
        };
        if self.stacks[tid].is_empty() {
            self.nonempty &= !(1 << tid);
        }
        node
    }

    /// Removes the node the LBU would steal from (main) thread `tid`.
    fn steal_node(
        &mut self,
        tid: usize,
        order: TraversalOrder,
        steal: StealPosition,
    ) -> Option<u64> {
        let node = match (order, steal) {
            (TraversalOrder::Dfs, StealPosition::Top) => self.stacks[tid].pop_back(),
            (TraversalOrder::Dfs, StealPosition::Bottom) => self.stacks[tid].pop_front(),
            // BFS steals from the queue front (§4.2).
            (TraversalOrder::Bfs, _) => self.stacks[tid].pop_front(),
        };
        if self.stacks[tid].is_empty() {
            self.nonempty &= !(1 << tid);
        }
        node
    }

    fn clear_stack(&mut self, tid: usize) {
        self.stacks[tid].clear();
        self.nonempty &= !(1 << tid);
    }

    fn set_pending(&mut self, tid: usize, addr: u64) {
        debug_assert_ne!(addr, NO_PENDING, "node address collides with sentinel");
        self.pending[tid] = addr;
        self.pending_mask |= 1 << tid;
    }

    fn clear_pending(&mut self, tid: usize) {
        self.pending[tid] = NO_PENDING;
        self.pending_mask &= !(1 << tid);
    }
}

#[derive(Clone, Debug)]
struct Slot {
    warp: usize,
    rays: [Option<Ray>; WARP_SIZE],
    any_hit: bool,
    gather: bool,
    /// Gather-mode collection, unsorted while the warp is resident (the
    /// LBU interleaves threads); sorted at retirement.
    gathered: Vec<(u8, u32)>,
    min_thit: [f32; WARP_SIZE],
    best: [Option<RayHit>; WARP_SIZE],
    done_ray: [bool; WARP_SIZE],
    threads: ThreadArray,
    /// Bit `i` set ⇔ thread `i` owns a ray (not masked off).
    active: u32,
    issued_at: u64,
    /// Ray-path prediction state per ray (by main thread); all `None`
    /// unless [`PredictPolicy::RayPath`] is active on an any-hit query.
    predict: [Option<PredictState>; WARP_SIZE],
    /// Count of `Some` entries in `predict`, so the per-cycle fallback
    /// sweep is skipped entirely for unpredicted warps.
    predict_live: u32,
}

impl Slot {
    fn drained(&self) -> bool {
        self.threads.drained()
    }
}

/// The RT unit of one SM.
#[derive(Clone, Debug)]
pub struct RtUnit {
    sm_id: usize,
    slots: Vec<Option<Slot>>,
    /// Pending memory responses, keyed on their ready cycle. The
    /// calendar pops same-cycle responses in issue order, matching the
    /// sequence-numbered heap it replaced.
    responses: EventCalendar<(usize, u64)>,
    rr: usize,
    /// Round-robin cursor of the subwarp scheduler
    /// ([`SubwarpMode::OneGroup`]).
    group_rr: usize,
    /// Intersection-prediction table, when enabled.
    predictor: Option<Predictor>,
    /// Ray-path prediction table ([`PredictPolicy::RayPath`]), when
    /// enabled.
    path_predictor: Option<RayPathPredictor>,
    /// Recycled per-warp thread arrays: retiring a warp returns its
    /// [`ThreadArray`] here so the next [`RtUnit::issue`] reuses the
    /// allocation (including each thread's stack capacity) instead of
    /// allocating 32 fresh `VecDeque`s per `trace_ray`.
    thread_pool: Vec<ThreadArray>,
    /// Sim-time event tracer (disabled by default; purely
    /// observational — no scheduling decision reads it).
    tracer: Tracer,
    /// Invariant checker (disabled by default; like the tracer, purely
    /// observational — no scheduling decision reads it).
    checker: Checker,
    /// Energy-event counters accumulated by this unit.
    pub events: EnergyEvents,
    /// Total rays dispatched into this unit (active threads across all
    /// issued `trace_ray` instructions). Feeds the rays/sec throughput
    /// metric of the `simperf` bench.
    pub rays_issued: u64,
}

impl RtUnit {
    /// Creates an RT unit with `warp_buffer_size` warp-buffer entries
    /// (no intersection predictor).
    pub fn new(sm_id: usize, warp_buffer_size: usize) -> Self {
        assert!(warp_buffer_size > 0, "warp buffer needs at least one entry");
        RtUnit {
            sm_id,
            slots: vec![None; warp_buffer_size],
            responses: EventCalendar::new(),
            rr: 0,
            group_rr: 0,
            predictor: None,
            path_predictor: None,
            thread_pool: Vec::new(),
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
            events: EnergyEvents::default(),
            rays_issued: 0,
        }
    }

    /// Creates an RT unit configured per `cfg` (warp-buffer size and
    /// the optional intersection / ray-path prediction tables).
    ///
    /// `cfg.predictor_entries == 0` with a predictor enabled is
    /// rejected by the simulation entry points with a typed
    /// [`ConfigError::ZeroPredictorEntries`](crate::ConfigError), so
    /// the table constructors' zero-size panic is unreachable from the
    /// engine.
    pub fn for_config(sm_id: usize, cfg: &GpuConfig) -> Self {
        let mut unit = Self::new(sm_id, cfg.warp_buffer_size);
        if cfg.intersection_predictor {
            unit.predictor = Some(Predictor::new(cfg.predictor_entries));
        }
        if cfg.predict == PredictPolicy::RayPath {
            unit.path_predictor = Some(RayPathPredictor::new(cfg.predictor_entries));
        }
        unit
    }

    /// Install a tracer: `trace_ray` begin/end, node fetches, response
    /// pops and LBU moves are emitted through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Install an invariant checker: response-FIFO pops, coalesced
    /// fetches, `min_thit` updates and LBU moves are verified through it.
    pub fn set_checker(&mut self, checker: Checker) {
        self.checker = checker;
    }

    /// Rays still traversing in this unit: active threads of every
    /// resident warp-buffer entry. Feeds the engine's ray-conservation
    /// invariant (`issued == retired + in-flight`).
    pub fn in_flight_rays(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| u64::from(s.active.count_ones()))
            .sum()
    }

    /// Prediction-table counters, when either table is enabled (both
    /// tables report into one [`PredictorStats`]; their counter
    /// families are disjoint).
    pub fn predictor_stats(&self) -> Option<PredictorStats> {
        if self.predictor.is_none() && self.path_predictor.is_none() {
            return None;
        }
        let mut stats = PredictorStats::default();
        if let Some(p) = &self.predictor {
            stats.add(&p.stats());
        }
        if let Some(p) = &self.path_predictor {
            stats.add(&p.stats());
        }
        Some(stats)
    }

    /// True if a warp-buffer entry is free.
    pub fn has_free_slot(&self) -> bool {
        self.slots.iter().any(|s| s.is_none())
    }

    /// Number of occupied warp-buffer entries.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Dispatches a `trace_ray` instruction into a free warp-buffer
    /// entry; performs the root-AABB test for each active thread
    /// (Algorithm 1, lines 1–2).
    ///
    /// Returns `false` (and does nothing) if the warp buffer is full.
    pub fn issue(&mut self, query: TraceQuery, now: u64, scene: &Scene) -> bool {
        let Some(free) = self.slots.iter().position(|s| s.is_none()) else {
            return false;
        };
        self.events.trace_instructions += 1;
        self.rays_issued += query.rays.iter().flatten().count() as u64;
        // Reuse a retired warp's thread array (and its stacks' capacity)
        // when one is available.
        let mut threads = self.thread_pool.pop().unwrap_or_else(ThreadArray::new);
        threads.reset();
        let mut active = 0u32;
        for (i, ray) in query.rays.iter().enumerate() {
            if ray.is_some() {
                active |= 1 << i;
            }
        }
        self.tracer.emit(now, || EventKind::TraceBegin {
            sm: self.sm_id as u32,
            warp: query.warp as u32,
            active_rays: active.count_ones(),
        });
        let mut slot = Slot {
            warp: query.warp,
            rays: query.rays,
            any_hit: query.any_hit,
            gather: query.gather,
            gathered: Vec::new(),
            min_thit: query.t_max,
            best: [None; WARP_SIZE],
            done_ray: [false; WARP_SIZE],
            threads,
            active,
            issued_at: now,
            predict: [None; WARP_SIZE],
            predict_live: 0,
        };
        let image = &scene.image;
        // Intersection prediction (§8.2): re-test the last primitive a
        // similar ray hit. A verified hit answers any-hit queries
        // outright and seeds min_thit for closest-hit queries. The
        // table is bounded by the scene's triangle count, so stale
        // entries never reach the verification test. Gather queries
        // must enumerate every containing leaf, so a predicted single
        // hit is meaningless for them and the table is bypassed.
        if let Some(pred) = self.predictor.as_mut().filter(|_| !query.gather) {
            for i in 0..WARP_SIZE {
                let Some(ray) = &slot.rays[i] else { continue };
                let Some(tri) = pred.predict(ray, image.triangles().len()) else {
                    continue;
                };
                self.events.triangle_tests += 1;
                if let Some(h) = image.triangle(tri).intersect(ray, slot.min_thit[i]) {
                    pred.record_verified();
                    slot.min_thit[i] = h.t;
                    slot.best[i] = Some(RayHit {
                        triangle: tri,
                        t: h.t,
                    });
                    if slot.any_hit {
                        slot.done_ray[i] = true; // skip the traversal entirely
                    }
                }
            }
        }
        for i in 0..WARP_SIZE {
            if slot.done_ray[i] {
                continue;
            }
            if let Some(ray) = &slot.rays[i] {
                self.events.box_tests += 1;
                // Gather mode descends by point containment instead of
                // ray-box intersection (same test unit, same cost).
                let enters = image.node_count() > 0
                    && if slot.gather {
                        image.root_bounds().contains(ray.orig)
                    } else {
                        image
                            .root_bounds()
                            .intersect(ray, slot.min_thit[i])
                            .is_some()
                    };
                if enters {
                    let mut start = image.root_addr();
                    // Ray-path prediction (Demoullin et al.): an
                    // any-hit traversal starts at the predicted entry
                    // node; the go-up-level fallback in
                    // `refill_predicted` restores full-tree coverage on
                    // a subtree miss, so the occlusion outcome — the
                    // only thing any-hit consumers read — is exact.
                    if slot.any_hit {
                        if let Some(pred) = self.path_predictor.as_mut() {
                            self.events.predict_lookups += 1;
                            slot.threads.ready_at[i] = now + PREDICT_LOOKUP_CYCLES;
                            if let Some(entry) = pred.predict(ray, image) {
                                if entry != image.root_addr() {
                                    let depth =
                                        image.depth_of(entry).expect("candidates are validated");
                                    slot.predict[i] = Some(PredictState {
                                        level: entry,
                                        depth,
                                        at_entry: true,
                                        skip: None,
                                    });
                                    slot.predict_live += 1;
                                    start = entry;
                                    let warp = query.warp as u32;
                                    self.tracer.emit(now, || EventKind::Predict {
                                        sm: self.sm_id as u32,
                                        warp,
                                        lane: i as u32,
                                        entry,
                                        depth,
                                    });
                                }
                            }
                        }
                    }
                    slot.threads.push(i, start);
                    self.events.stack_ops += 1;
                }
            }
        }
        self.slots[free] = Some(slot);
        true
    }

    /// Ray-path go-up-level fallback: any predicted ray whose current
    /// subtree drained without an accepted hit restarts one parent
    /// level higher (re-testing that subtree, which is what the
    /// hardware would do — the refetched nodes are L1-warm), or is
    /// concluded as a miss once the root's subtree itself drained.
    /// Runs before warp retirement each cycle, and only sweeps slots
    /// that actually carry prediction state.
    fn refill_predicted(&mut self, scene: &Scene) {
        if self.path_predictor.is_none() {
            return;
        }
        for s in 0..self.slots.len() {
            let Some(slot) = self.slots[s].as_mut() else {
                continue;
            };
            if slot.predict_live == 0 {
                continue;
            }
            // Which rays still have traversal work, counting helper
            // threads that adopted the ray through the LBU.
            let mut ray_busy = [false; WARP_SIZE];
            let mut busy = slot.threads.busy_mask();
            for t in 0..WARP_SIZE {
                if busy & (1 << t) != 0 {
                    ray_busy[slot.threads.main_tid[t] as usize] = true;
                }
            }
            #[allow(clippy::needless_range_loop)] // mt indexes several parallel arrays
            for mt in 0..WARP_SIZE {
                let Some(ps) = slot.predict[mt] else { continue };
                if slot.done_ray[mt] {
                    slot.predict[mt] = None;
                    slot.predict_live -= 1;
                    continue;
                }
                if ray_busy[mt] {
                    continue;
                }
                match scene.image.parent_addr(ps.level) {
                    Some(parent) => {
                        // The restart must land on a thread that routes
                        // results to ray `mt`. Under CoopRT the ray's
                        // own lane may have been adopted as a helper
                        // for another ray, so prefer an idle thread
                        // already serving `mt` and otherwise retarget
                        // any idle thread (an LBU-style assignment).
                        // With every thread busy, retry next cycle —
                        // the slot cannot retire while threads work.
                        let serving = (0..WARP_SIZE).find(|&t| {
                            busy & (1 << t) == 0 && slot.threads.main_tid[t] as usize == mt
                        });
                        let carrier =
                            serving.or_else(|| (0..WARP_SIZE).find(|&t| busy & (1 << t) == 0));
                        let Some(carrier) = carrier else { continue };
                        let pred = self.path_predictor.as_mut().expect("checked above");
                        pred.record_go_up();
                        if ps.at_entry {
                            // The predicted subtree itself missed:
                            // decay the entry's confidence so a
                            // signature that keeps mispredicting goes
                            // quiet instead of paying this penalty on
                            // every ray.
                            if let Some(ray) = slot.rays[mt].as_ref() {
                                pred.record_mispredict(ray);
                            }
                        }
                        slot.predict[mt] = Some(PredictState {
                            level: parent,
                            depth: ps.depth - 1,
                            at_entry: false,
                            skip: Some(ps.level),
                        });
                        slot.threads.main_tid[carrier] = mt as u8;
                        slot.threads.push(carrier, parent);
                        busy |= 1 << carrier;
                        self.events.stack_ops += 1;
                    }
                    None => {
                        // The root's subtree drained too: a true miss.
                        slot.predict[mt] = None;
                        slot.predict_live -= 1;
                    }
                }
            }
        }
    }

    /// Advances the unit by one cycle; any warps that retired this cycle
    /// are appended to `retired`.
    pub fn step(
        &mut self,
        now: u64,
        mem: &mut MemoryHierarchy,
        scene: &Scene,
        policy: TraversalPolicy,
        cfg: &GpuConfig,
        retired: &mut Vec<TraceResult>,
    ) {
        // 1. Response FIFO: pop at most one ready response per cycle.
        if let Some((t, (slot, addr))) = self.responses.pop_ready(now) {
            self.checker.count_response_pop(self.sm_id, now);
            self.checker.check(
                now,
                || t <= now,
                || {
                    format!(
                        "RT unit {} popped a response due at cycle {t} early",
                        self.sm_id
                    )
                },
            );
            self.tracer.emit(now, || EventKind::ResponsePop {
                sm: self.sm_id as u32,
                addr,
            });
            self.process_response(slot, addr, now, mem, scene, cfg);
        }

        // 2–3. Warp scheduler + memory scheduler: one coalesced node
        // fetch per cycle from one warp.
        let chosen = self.pick_warp(now);
        if let Some(slot_idx) = chosen {
            self.events.scheduler_ops += 1;
            self.issue_memory(slot_idx, now, mem, scene, cfg);
        }

        // 4. Load Balancing Unit (CoopRT only), on the scheduled warp —
        // or, if no warp could issue memory, on any warp with a
        // helper/main pair.
        if policy == TraversalPolicy::CoopRt {
            let lbu_slot = chosen.or_else(|| self.pick_lbu_slot(cfg.subwarp_size));
            if let Some(s) = lbu_slot {
                self.run_lbu(s, cfg, now);
            }
        }

        // 4b. Ray-path go-up fallback: restart drained-but-unresolved
        // predicted rays one level up before retirement can see them.
        self.refill_predicted(scene);

        // 5. Retire drained warps.
        for s in 0..self.slots.len() {
            let drained = matches!(&self.slots[s], Some(slot) if slot.drained());
            if drained {
                let mut slot = self.slots[s].take().expect("checked above");
                self.tracer.emit(now, || EventKind::TraceEnd {
                    sm: self.sm_id as u32,
                    warp: slot.warp as u32,
                    issued_at: slot.issued_at,
                });
                // Canonicalize the gather collection: the LBU interleaves
                // threads non-deterministically *across policies*, so the
                // answer order must not depend on it.
                slot.gathered.sort_unstable();
                retired.push(TraceResult {
                    warp: slot.warp,
                    hits: slot.best,
                    gathered: std::mem::take(&mut slot.gathered),
                    issued_at: slot.issued_at,
                    retired_at: now,
                });
                self.thread_pool.push(slot.threads);
            }
        }
    }

    /// Earliest cycle (>= `now`) at which this unit can make progress,
    /// or `None` if it is empty. Used for cycle skipping.
    pub fn next_event(&self, now: u64, policy: TraversalPolicy, subwarp: usize) -> Option<u64> {
        let mut earliest: Option<u64> = None;
        let mut relax = |t: u64| {
            earliest = Some(earliest.map_or(t, |e| e.min(t)));
        };
        if let Some(ready) = self.responses.peek_min() {
            relax(ready.max(now));
        }
        for slot in self.slots.iter().flatten() {
            let mut cand = slot.threads.issue_candidates();
            while cand != 0 {
                let tid = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                relax(slot.threads.ready_at[tid].max(now));
            }
            if policy == TraversalPolicy::CoopRt {
                let (can, needs) = Self::lbu_masks(slot);
                if !find_pairs(can, needs, subwarp).is_empty() {
                    relax(now);
                }
            }
            if slot.drained() {
                relax(now); // retire is pending
            }
        }
        earliest
    }

    /// Per-thread status over all resident warps (Fig. 4 / Fig. 10).
    pub fn sample_status(&self) -> StatusCounts {
        let mut c = StatusCounts::default();
        for slot in self.slots.iter().flatten() {
            let busy = slot.threads.busy_mask();
            c.busy += busy.count_ones() as usize;
            c.waiting += (slot.active & !busy).count_ones() as usize;
            c.inactive += (!slot.active & !busy).count_ones() as usize;
        }
        c
    }

    /// Busy mask of the slot holding `warp`, if resident (Fig. 11
    /// timelines). Bit `i` set means thread `i` is traversing.
    pub fn busy_mask_of(&self, warp: usize) -> Option<u32> {
        self.slots
            .iter()
            .flatten()
            .find(|s| s.warp == warp)
            .map(|s| s.threads.busy_mask())
    }

    fn pick_warp(&mut self, now: u64) -> Option<usize> {
        let n = self.slots.len();
        for k in 0..n {
            let idx = (self.rr + k) % n;
            if let Some(slot) = &self.slots[idx] {
                let mut cand = slot.threads.issue_candidates();
                while cand != 0 {
                    let tid = cand.trailing_zeros() as usize;
                    if slot.threads.ready_at[tid] <= now {
                        self.rr = (idx + 1) % n;
                        return Some(idx);
                    }
                    cand &= cand - 1;
                }
            }
        }
        None
    }

    fn issue_memory(
        &mut self,
        slot_idx: usize,
        now: u64,
        mem: &mut MemoryHierarchy,
        scene: &Scene,
        cfg: &GpuConfig,
    ) {
        let slot = self.slots[slot_idx]
            .as_mut()
            .expect("scheduler picked occupied slot");
        // Coalesce: the lowest-numbered eligible thread nominates the
        // address; every eligible thread with the same next node joins.
        let order = cfg.traversal_order;
        let eligible = slot.threads.issue_candidates();
        let mut addr = None;
        let mut m = eligible;
        while m != 0 {
            let tid = m.trailing_zeros() as usize;
            m &= m - 1;
            if slot.threads.ready_at[tid] <= now {
                addr = slot.threads.peek_next(tid, order);
                break;
            }
        }
        let addr = addr.expect("scheduler guaranteed an eligible thread");
        let mut coalesced = 0u32;
        let mut m = eligible;
        while m != 0 {
            let tid = m.trailing_zeros() as usize;
            m &= m - 1;
            if slot.threads.ready_at[tid] <= now && slot.threads.peek_next(tid, order) == Some(addr)
            {
                slot.threads.pop_next(tid, order);
                slot.threads.set_pending(tid, addr);
                self.events.stack_ops += 1;
                coalesced += 1;
            }
        }
        let warp = slot.warp as u32;
        let bytes = scene
            .image
            .node_at(addr)
            .expect("traversal stacks hold valid node addresses")
            .size_bytes();
        let ready = mem.access(self.sm_id, addr, bytes, now);
        self.checker.count_fetch(self.sm_id, now);
        self.checker.check(
            now,
            || ready > now,
            || {
                format!(
                    "RT unit {} fetch of node {addr:#x} completes at cycle {ready}, not in the future",
                    self.sm_id
                )
            },
        );
        self.responses.push(ready, (slot_idx, addr));
        self.tracer.emit(now, || EventKind::NodeFetch {
            sm: self.sm_id as u32,
            warp,
            addr,
            threads: coalesced,
            ready_at: ready,
        });
    }

    fn process_response(
        &mut self,
        slot_idx: usize,
        addr: u64,
        now: u64,
        mem: &mut MemoryHierarchy,
        scene: &Scene,
        cfg: &GpuConfig,
    ) {
        let Some(slot) = self.slots[slot_idx].as_mut() else {
            return;
        };
        let node = scene
            .image
            .node_at(addr)
            .expect("response for a valid node");
        let mut pm = slot.threads.pending_mask;
        while pm != 0 {
            let tid = pm.trailing_zeros() as usize;
            pm &= pm - 1;
            if slot.threads.pending[tid] != addr {
                continue;
            }
            slot.threads.clear_pending(tid);
            slot.threads.ready_at[tid] = now + cfg.math_latency;
            let mt = slot.threads.main_tid[tid] as usize;
            if slot.done_ray[mt] {
                continue; // Any-hit already satisfied for this ray.
            }
            let ray = slot.rays[mt].expect("main thread owns a ray");
            match &node.kind {
                NodeKind::Internal { children } => {
                    // A go-up restart re-fetches the drained node's
                    // parent; the restart trail marks the child whose
                    // subtree was already searched so it is tested but
                    // never re-descended.
                    let skip =
                        slot.predict[mt].and_then(
                            |ps| {
                                if ps.level == addr {
                                    ps.skip
                                } else {
                                    None
                                }
                            },
                        );
                    for child in children {
                        self.events.box_tests += 1;
                        if Some(child.addr) == skip {
                            continue;
                        }
                        let limit = if cfg.node_elimination {
                            slot.min_thit[mt]
                        } else {
                            f32::INFINITY
                        };
                        // Gather: descend every child whose box contains
                        // the query point (node elimination cannot apply
                        // — there is no shrinking t interval).
                        let descend = if slot.gather {
                            child.bounds.contains(ray.orig)
                        } else {
                            child.bounds.intersect(&ray, limit).is_some()
                        };
                        if descend {
                            slot.threads.push(tid, child.addr);
                            self.events.stack_ops += 1;
                            if cfg.prefetch_children {
                                let bytes = scene
                                    .image
                                    .node_at(child.addr)
                                    .expect("child addresses are valid")
                                    .size_bytes();
                                mem.prefetch(self.sm_id, child.addr, bytes, now);
                            }
                        }
                    }
                }
                NodeKind::Leaf { triangle } => {
                    self.events.triangle_tests += 1;
                    if slot.gather {
                        // Collect, don't intersect: the leaf's triangle
                        // AABB containing the query point makes it a
                        // candidate. Credited to the ray's owner lane so
                        // LBU-stolen work lands on the right query.
                        if scene.image.triangle(*triangle).bounds().contains(ray.orig) {
                            slot.gathered.push((mt as u8, *triangle));
                        }
                        continue;
                    }
                    // Unbounded test + order-independent tie-break on the
                    // primitive index (see cooprt_bvh::traverse::accepts):
                    // CoopRT re-orders traversal, and edge-grazing rays
                    // tie between adjacent triangles at identical t.
                    let accept = scene
                        .image
                        .triangle(*triangle)
                        .intersect(&ray, f32::INFINITY)
                        .filter(|h| {
                            h.t < slot.min_thit[mt]
                                || matches!(slot.best[mt], Some(b) if h.t == b.t && *triangle < b.triangle)
                        });
                    if let Some(h) = accept {
                        let prev = slot.min_thit[mt];
                        let t = h.t;
                        self.checker.check(
                            now,
                            || t <= prev,
                            || format!("thread {mt} min_thit increased from {prev} to {t}"),
                        );
                        slot.min_thit[mt] = h.t;
                        slot.best[mt] = Some(RayHit {
                            triangle: *triangle,
                            t: h.t,
                        });
                        if let Some(pred) = self.predictor.as_mut() {
                            pred.update(&ray, *triangle);
                        }
                        if slot.any_hit {
                            // Ray-path table learns from the accepted
                            // occluder: future similar rays enter the
                            // BVH a couple of levels above this leaf.
                            if let Some(pred) = self.path_predictor.as_mut() {
                                pred.update(&ray, addr, &scene.image);
                                self.events.predict_lookups += 1;
                                if let Some(ps) = slot.predict[mt] {
                                    if ps.at_entry {
                                        pred.record_entry_hit();
                                    }
                                    // A root-start traversal would have
                                    // fetched the `depth` ancestors the
                                    // prediction let this ray skip.
                                    pred.record_saved(u64::from(ps.depth));
                                }
                            }
                            if slot.predict[mt].take().is_some() {
                                slot.predict_live -= 1;
                            }
                            slot.done_ray[mt] = true;
                            for t in 0..WARP_SIZE {
                                if slot.threads.main_tid[t] as usize == mt {
                                    slot.threads.clear_stack(t);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn lbu_masks(slot: &Slot) -> (u32, u32) {
        // Helpers: empty stack and no fetch in flight. Mains: non-empty
        // stack (even with a fetch in flight — there is work to share).
        (!slot.threads.busy_mask(), slot.threads.nonempty)
    }

    fn pick_lbu_slot(&self, subwarp: usize) -> Option<usize> {
        self.slots.iter().enumerate().find_map(|(i, s)| {
            let slot = s.as_ref()?;
            let (can, needs) = Self::lbu_masks(slot);
            if find_pairs(can, needs, subwarp).is_empty() {
                None
            } else {
                Some(i)
            }
        })
    }

    fn run_lbu(&mut self, slot_idx: usize, cfg: &GpuConfig, now: u64) {
        for _ in 0..cfg.lbu_moves_per_cycle.max(1) {
            let slot = self.slots[slot_idx]
                .as_ref()
                .expect("LBU picked occupied slot");
            let (can, needs) = Self::lbu_masks(slot);
            let mut pairs = find_pairs(can, needs, cfg.subwarp_size);
            if pairs.is_empty() {
                break;
            }
            if cfg.subwarp_mode == SubwarpMode::OneGroup && pairs.len() > 1 {
                // The subwarp scheduler services one suitable group per
                // cycle, round-robin over groups.
                let groups = WARP_SIZE / cfg.subwarp_size;
                let chosen = (0..groups)
                    .map(|k| (self.group_rr + k) % groups)
                    .find_map(|g| {
                        pairs
                            .iter()
                            .copied()
                            .find(|p| p.helper / cfg.subwarp_size == g)
                    })
                    .expect("pairs exist, so some group matches");
                self.group_rr = (chosen.helper / cfg.subwarp_size + 1) % groups;
                pairs = crate::lbu::LbuPairs::single(chosen);
            }
            for &pair in &pairs {
                self.apply_lbu_pair(slot_idx, pair, cfg, now);
            }
        }
    }

    /// Executes one LBU move: steals a node from `pair.main`'s stack and
    /// pushes it onto `pair.helper`'s, re-pointing the helper at the
    /// main's ray. In checked mode the pair is verified first: the
    /// helper must be idle (empty stack, no fetch in flight), the main
    /// must have stack work to share, and the two must be distinct
    /// threads — [`find_pairs`] guarantees all three, so a violation
    /// here means the pairing logic regressed.
    fn apply_lbu_pair(&mut self, slot_idx: usize, pair: LbuPair, cfg: &GpuConfig, now: u64) {
        let sm = self.sm_id;
        let slot = self.slots[slot_idx]
            .as_mut()
            .expect("LBU picked occupied slot");
        if self.checker.is_enabled() {
            let busy = slot.threads.busy_mask();
            let nonempty = slot.threads.nonempty;
            self.checker.check(
                now,
                || pair.helper != pair.main,
                || {
                    format!(
                        "LBU on RT unit {sm}: thread {} paired with itself",
                        pair.main
                    )
                },
            );
            self.checker.check(
                now,
                || busy & (1 << pair.helper) == 0,
                || {
                    format!(
                        "LBU on RT unit {sm}: helper thread {} is not idle",
                        pair.helper
                    )
                },
            );
            self.checker.check(
                now,
                || nonempty & (1 << pair.main) != 0,
                || {
                    format!(
                        "LBU on RT unit {sm}: main thread {} has no stack work to share",
                        pair.main
                    )
                },
            );
        }
        let Some(node) = slot
            .threads
            .steal_node(pair.main, cfg.traversal_order, cfg.steal_from)
        else {
            // Unreachable through `find_pairs`; only a corrupted pair
            // (recorded by the checker above) can land here.
            return;
        };
        let main_tid = slot.threads.main_tid[pair.main];
        slot.threads.push(pair.helper, node);
        slot.threads.main_tid[pair.helper] = main_tid;
        self.events.lbu_moves += 1;
        self.events.stack_ops += 2;
        let warp = slot.warp as u32;
        self.tracer.emit(now, || EventKind::LbuMove {
            sm: self.sm_id as u32,
            warp,
            helper: pair.helper as u32,
            main: pair.main as u32,
            main_tid: u32::from(main_tid),
        });
    }

    /// Test-only hook: applies an arbitrary (possibly invalid) LBU pair
    /// to the slot holding `warp`, bypassing [`find_pairs`]. Used by the
    /// mutation test that proves a broken pairing is caught by the
    /// checker.
    #[cfg(test)]
    fn force_lbu_move(&mut self, warp: usize, pair: LbuPair, cfg: &GpuConfig, now: u64) {
        let slot_idx = self
            .slots
            .iter()
            .position(|s| matches!(s, Some(slot) if slot.warp == warp))
            .expect("warp is resident");
        self.apply_lbu_pair(slot_idx, pair, cfg, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_gpu::MemoryConfig;
    use cooprt_math::{Rgb, Vec3};
    use cooprt_scenes::{Camera, Material, SceneBuilder};

    fn test_scene(clutter: usize) -> Scene {
        let cam = Camera::look_at(Vec3::new(0.0, 2.0, 12.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0);
        SceneBuilder::new("rtunit-test", cam)
            .push(
                cooprt_scenes::quad(Vec3::new(-20.0, 0.0, -20.0), Vec3::X * 40.0, Vec3::Z * 40.0),
                Material::Lambertian {
                    albedo: Rgb::splat(0.5),
                },
            )
            .push(
                cooprt_scenes::scatter_clutter(
                    cooprt_math::Aabb::new(Vec3::new(-6.0, 0.5, -6.0), Vec3::new(6.0, 5.0, 6.0)),
                    clutter,
                    0.2..0.6,
                    7,
                ),
                Material::Lambertian {
                    albedo: Rgb::splat(0.7),
                },
            )
            .build()
    }

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(&MemoryConfig::rtx2060_like(1))
    }

    fn run_to_retire(
        rt: &mut RtUnit,
        mem: &mut MemoryHierarchy,
        scene: &Scene,
        policy: TraversalPolicy,
        cfg: &GpuConfig,
    ) -> (Vec<TraceResult>, u64) {
        let mut retired = Vec::new();
        let mut now = 0;
        while rt.occupied() > 0 {
            rt.step(now, mem, scene, policy, cfg, &mut retired);
            now += 1;
            assert!(now < 10_000_000, "RT unit failed to drain");
        }
        (retired, now)
    }

    fn warp_rays(scene: &Scene, n: usize) -> [Option<Ray>; WARP_SIZE] {
        let mut rays = [None; WARP_SIZE];
        for (i, r) in rays.iter_mut().enumerate().take(n) {
            let s = i as f32 / WARP_SIZE as f32;
            *r = Some(scene.camera.primary_ray(0.2 + 0.6 * s, 0.45));
        }
        rays
    }

    #[test]
    fn results_match_cpu_reference_baseline_and_coop() {
        let scene = test_scene(40);
        let cfg = GpuConfig::small(1);
        let rays = warp_rays(&scene, WARP_SIZE);
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let mut rt = RtUnit::new(0, 4);
            let mut m = mem();
            assert!(rt.issue(TraceQuery::closest_hit(7, rays), 0, &scene));
            let (retired, _) = run_to_retire(&mut rt, &mut m, &scene, policy, &cfg);
            assert_eq!(retired.len(), 1);
            assert_eq!(retired[0].warp, 7);
            #[allow(clippy::needless_range_loop)] // i is the SIMT lane id
            for i in 0..WARP_SIZE {
                let expected = cooprt_bvh::traverse::closest_hit(
                    &scene.image,
                    rays[i].as_ref().unwrap(),
                    f32::INFINITY,
                );
                let got = retired[0].hits[i];
                match (expected, got) {
                    (None, None) => {}
                    (Some(e), Some(g)) => {
                        assert_eq!(e.triangle, g.triangle, "thread {i} ({policy:?})");
                        assert!((e.t - g.t).abs() < 1e-5);
                    }
                    (e, g) => panic!("thread {i} ({policy:?}): cpu={e:?} rt={g:?}"),
                }
            }
        }
    }

    #[test]
    fn coop_is_not_slower_with_divergent_warp() {
        let scene = test_scene(120);
        let cfg = GpuConfig::small(1);
        // Only 4 active threads out of 32: lots of idle helpers.
        let rays = warp_rays(&scene, 4);
        let mut cycles = Vec::new();
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let mut rt = RtUnit::new(0, 4);
            let mut m = mem();
            rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene);
            let (_, t) = run_to_retire(&mut rt, &mut m, &scene, policy, &cfg);
            cycles.push(t);
        }
        assert!(
            cycles[1] < cycles[0],
            "coop ({}) should beat baseline ({}) on a divergent warp",
            cycles[1],
            cycles[0]
        );
    }

    #[test]
    fn coop_uses_the_lbu() {
        let scene = test_scene(60);
        let cfg = GpuConfig::small(1);
        let rays = warp_rays(&scene, 2);
        let mut rt = RtUnit::new(0, 4);
        let mut m = mem();
        rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene);
        let _ = run_to_retire(&mut rt, &mut m, &scene, TraversalPolicy::CoopRt, &cfg);
        assert!(rt.events.lbu_moves > 0, "LBU should have moved nodes");
    }

    #[test]
    fn baseline_never_uses_the_lbu() {
        let scene = test_scene(60);
        let cfg = GpuConfig::small(1);
        let mut rt = RtUnit::new(0, 4);
        let mut m = mem();
        rt.issue(TraceQuery::closest_hit(0, warp_rays(&scene, 2)), 0, &scene);
        let _ = run_to_retire(&mut rt, &mut m, &scene, TraversalPolicy::Baseline, &cfg);
        assert_eq!(rt.events.lbu_moves, 0);
    }

    #[test]
    fn coalescing_merges_identical_rays() {
        let scene = test_scene(30);
        let cfg = GpuConfig::small(1);
        // All 32 threads trace the *same* ray: every fetch coalesces to
        // one memory access.
        let ray = scene.camera.primary_ray(0.5, 0.5);
        let rays = [Some(ray); WARP_SIZE];
        let mut rt = RtUnit::new(0, 4);
        let mut m = mem();
        rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene);
        let _ = run_to_retire(&mut rt, &mut m, &scene, TraversalPolicy::Baseline, &cfg);
        let one_ray_nodes = {
            let mut counters = cooprt_bvh::traverse::TraversalCounters::default();
            let _ = cooprt_bvh::traverse::closest_hit_counted(
                &scene.image,
                &ray,
                f32::INFINITY,
                &mut counters,
            );
            counters.nodes_visited
        };
        // Fetches (= L1 accesses may span 2 lines each) must scale with
        // ONE ray's node count, not 32 rays' worth.
        let accesses = m.stats().l1.accesses;
        assert!(
            accesses <= one_ray_nodes * 3,
            "coalescing failed: {accesses} accesses for {one_ray_nodes} nodes"
        );
    }

    #[test]
    fn any_hit_terminates_early() {
        let scene = test_scene(60);
        let cfg = GpuConfig::small(1);
        let rays = warp_rays(&scene, WARP_SIZE);
        let run = |any_hit: bool| {
            let mut rt = RtUnit::new(0, 4);
            let mut m = mem();
            let q = TraceQuery {
                warp: 0,
                rays,
                t_max: [f32::INFINITY; WARP_SIZE],
                any_hit,
                gather: false,
            };
            rt.issue(q, 0, &scene);
            let (res, t) = run_to_retire(&mut rt, &mut m, &scene, TraversalPolicy::Baseline, &cfg);
            (res, t)
        };
        let (closest, t_closest) = run(false);
        let (any, t_any) = run(true);
        assert!(
            t_any <= t_closest,
            "any-hit ({t_any}) must not exceed closest ({t_closest})"
        );
        // Wherever closest-hit found something, any-hit must too.
        for i in 0..WARP_SIZE {
            assert_eq!(
                closest[0].hits[i].is_some(),
                any[0].hits[i].is_some(),
                "thread {i}"
            );
        }
    }

    #[test]
    fn gather_enumerates_containing_leaves_identically_across_policies() {
        let scene = cooprt_scenes::SceneId::Quni.build(2);
        let cfg = GpuConfig::small(1);
        let mut rays = [None; WARP_SIZE];
        let mut t_max = [f32::INFINITY; WARP_SIZE];
        for (i, r) in rays.iter_mut().enumerate().take(8) {
            let q = crate::shader::ShaderThread::query_point(&scene, i, 1);
            *r = Some(Ray::probe(q));
            t_max[i] = crate::shader::PROBE_T_MAX;
        }
        let mut per_policy = Vec::new();
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let mut rt = RtUnit::new(0, 4);
            let mut m = mem();
            let q = TraceQuery {
                warp: 0,
                rays,
                t_max,
                any_hit: false,
                gather: true,
            };
            assert!(rt.issue(q, 0, &scene));
            let (res, _) = run_to_retire(&mut rt, &mut m, &scene, policy, &cfg);
            assert!(
                res[0].hits.iter().all(|h| h.is_none()),
                "gather never reports hits ({policy:?})"
            );
            per_policy.push(res[0].gathered.clone());
        }
        assert_eq!(per_policy[0], per_policy[1], "answers are policy-invariant");
        // Brute force over every triangle AABB: gather must enumerate
        // exactly the containing leaves, in (lane, triangle) order.
        let mut expect = Vec::new();
        for i in 0..8u8 {
            let q = crate::shader::ShaderThread::query_point(&scene, i as usize, 1);
            for t in 0..scene.image.triangles().len() as u32 {
                if scene.image.triangle(t).bounds().contains(q) {
                    expect.push((i, t));
                }
            }
        }
        assert_eq!(per_policy[0], expect);
        assert!(!expect.is_empty(), "fixture should gather candidates");
    }

    #[test]
    fn t_max_limits_the_search() {
        let scene = test_scene(30);
        let cfg = GpuConfig::small(1);
        let rays = warp_rays(&scene, 8);
        let mut q = TraceQuery::closest_hit(0, rays);
        q.t_max = [0.01; WARP_SIZE]; // nothing is this close
        let mut rt = RtUnit::new(0, 4);
        let mut m = mem();
        rt.issue(q, 0, &scene);
        let (res, _) = run_to_retire(&mut rt, &mut m, &scene, TraversalPolicy::Baseline, &cfg);
        assert!(res[0].hits.iter().all(|h| h.is_none()));
    }

    #[test]
    fn warp_buffer_capacity_is_enforced() {
        let scene = test_scene(10);
        let mut rt = RtUnit::new(0, 2);
        let rays = warp_rays(&scene, 4);
        assert!(rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene));
        assert!(rt.issue(TraceQuery::closest_hit(1, rays), 0, &scene));
        assert!(!rt.has_free_slot());
        assert!(!rt.issue(TraceQuery::closest_hit(2, rays), 0, &scene));
        assert_eq!(rt.occupied(), 2);
    }

    #[test]
    fn all_missing_rays_retire_immediately() {
        let scene = test_scene(10);
        let cfg = GpuConfig::small(1);
        // Rays pointing straight up, away from everything.
        let mut rays = [None; WARP_SIZE];
        for r in rays.iter_mut().take(8) {
            *r = Some(Ray::new(Vec3::new(0.0, 50.0, 0.0), Vec3::Y));
        }
        let mut rt = RtUnit::new(0, 4);
        let mut m = mem();
        rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene);
        let (res, t) = run_to_retire(&mut rt, &mut m, &scene, TraversalPolicy::Baseline, &cfg);
        assert!(t < 5, "nothing to traverse: retires in the first cycles");
        assert!(res[0].hits.iter().all(|h| h.is_none()));
    }

    #[test]
    fn rays_issued_counts_active_threads() {
        let scene = test_scene(10);
        let mut rt = RtUnit::new(0, 4);
        rt.issue(TraceQuery::closest_hit(0, warp_rays(&scene, 5)), 0, &scene);
        rt.issue(
            TraceQuery::closest_hit(1, warp_rays(&scene, WARP_SIZE)),
            0,
            &scene,
        );
        assert_eq!(rt.rays_issued, 5 + WARP_SIZE as u64);
    }

    #[test]
    fn status_sampling_tracks_masks() {
        let scene = test_scene(40);
        let rays = warp_rays(&scene, 10);
        let mut rt = RtUnit::new(0, 4);
        rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene);
        let s = rt.sample_status();
        assert_eq!(s.total(), WARP_SIZE);
        assert_eq!(s.inactive, WARP_SIZE - 10);
        assert!(s.busy > 0);
        assert!(rt.busy_mask_of(0).is_some());
        assert!(rt.busy_mask_of(99).is_none());
    }

    #[test]
    fn checked_run_is_clean_for_both_policies() {
        let scene = test_scene(60);
        let cfg = GpuConfig::small(1);
        let rays = warp_rays(&scene, 6);
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let checker = crate::check::Checker::enabled();
            let mut rt = RtUnit::new(0, 4);
            rt.set_checker(checker.clone());
            let mut m = mem();
            rt.issue(TraceQuery::closest_hit(0, rays), 0, &scene);
            assert_eq!(rt.in_flight_rays(), 6);
            let _ = run_to_retire(&mut rt, &mut m, &scene, policy, &cfg);
            assert_eq!(rt.in_flight_rays(), 0);
            assert!(
                checker.checks_run() > 0,
                "checked run must evaluate invariants ({policy:?})"
            );
            checker.assert_clean();
        }
    }

    #[test]
    fn corrupted_lbu_pair_is_caught_by_the_checker() {
        let scene = test_scene(60);
        let cfg = GpuConfig::small(1);
        let checker = crate::check::Checker::enabled();
        let mut rt = RtUnit::new(0, 4);
        rt.set_checker(checker.clone());
        rt.issue(TraceQuery::closest_hit(3, warp_rays(&scene, 8)), 0, &scene);
        // Threads 0..8 all pushed the root: thread 1 is busy, so pairing
        // it as a *helper* violates the LBU contract. `find_pairs` would
        // never emit this; inject it directly (the mutation).
        rt.force_lbu_move(3, LbuPair { helper: 1, main: 0 }, &cfg, 0);
        let violations = checker.violations();
        assert!(
            violations.iter().any(|v| v.contains("helper thread 1")),
            "mutated LBU pairing must be flagged, got {violations:?}"
        );
    }

    #[test]
    fn next_event_reports_progress_opportunities() {
        let scene = test_scene(20);
        let cfg = GpuConfig::small(1);
        let mut rt = RtUnit::new(0, 4);
        // Empty unit: no events.
        assert_eq!(rt.next_event(0, TraversalPolicy::Baseline, 32), None);
        rt.issue(TraceQuery::closest_hit(0, warp_rays(&scene, 4)), 0, &scene);
        // Threads can issue right away.
        assert_eq!(rt.next_event(5, TraversalPolicy::Baseline, 32), Some(5));
        // After issuing, the next event is the memory response.
        let mut m = mem();
        let mut retired = Vec::new();
        rt.step(
            5,
            &mut m,
            &scene,
            TraversalPolicy::Baseline,
            &cfg,
            &mut retired,
        );
        let ev = rt.next_event(6, TraversalPolicy::Baseline, 32);
        assert!(ev.is_some());
    }
}
