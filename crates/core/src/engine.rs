//! Top-level simulation: SMs, warp dispatch, the cycle loop, and all
//! measurement plumbing (activity sampling, stall attribution, warp
//! timelines).

use crate::check::Checker;
use crate::config::{GpuConfig, TraversalPolicy, WARP_SIZE};
use crate::latency::TraceLatencies;
use crate::predictor::{PredictPolicy, PredictorStats};
use crate::reorder::{self, ReorderPolicy, ReorderStats};
use crate::rtunit::{RtUnit, StatusCounts, TraceQuery, TraceResult};
use crate::shader::{ShaderKind, ShaderThread};
use crate::trace::{RayRecord, Recorder};
use cooprt_gpu::{EnergyEvents, EnergyReport, EventCalendar, MemStats, MemoryHierarchy};
use cooprt_math::{Ray, Rgb};
use cooprt_scenes::Scene;
use cooprt_telemetry::{EventKind, Tracer};
use std::collections::VecDeque;

/// Validation error returned by the public simulation entry points.
///
/// Bad *input* (caller-controlled frame geometry or sample counts) is
/// reported as a typed error rather than a panic; panics remain reserved
/// for internal engine invariants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The requested frame has zero pixels (`width * height == 0`).
    EmptyFrame {
        /// Requested frame width.
        width: usize,
        /// Requested frame height.
        height: usize,
    },
    /// `run_accumulated` was asked for zero samples per pixel.
    ZeroSamples,
    /// Ray reordering is enabled but the counting sort has no buckets
    /// (`reorder != Off` with `reorder_buckets == 0`).
    ZeroReorderBuckets,
    /// A predictor is enabled but its table has no entries
    /// (`intersection_predictor` or `predict != Off` with
    /// `predictor_entries == 0`).
    ZeroPredictorEntries,
    /// A spatial-query shader was requested on a scene without a
    /// matching query domain: `knn`/`rad` need
    /// [`Scene::query`](cooprt_scenes::Scene::query) populated, and
    /// `cont` additionally needs a *cell* domain
    /// ([`QueryDomain::is_cells`](cooprt_scenes::QueryDomain::is_cells)).
    QueryDomainMismatch {
        /// Short key of the offending query shader kind.
        shader: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyFrame { width, height } => {
                write!(f, "image must be non-empty, got {width}x{height}")
            }
            ConfigError::ZeroSamples => write!(f, "need at least one sample per pixel"),
            ConfigError::ZeroReorderBuckets => {
                write!(f, "ray reordering needs at least one sort bucket")
            }
            ConfigError::ZeroPredictorEntries => {
                write!(f, "the predictor needs at least one table entry")
            }
            ConfigError::QueryDomainMismatch { shader } => {
                write!(
                    f,
                    "query shader '{shader}' needs a scene with a matching query domain"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Cycles lost to each instruction class (Fig. 1 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// `trace_ray` instructions (waiting for / executing in the RT unit).
    pub rt: u64,
    /// Load/store instructions from the CUDA cores.
    pub mem: u64,
    /// Compute instructions.
    pub alu: u64,
    /// Special-function-unit instructions.
    pub sfu: u64,
}

impl StallBreakdown {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.rt + self.mem + self.alu + self.sfu
    }

    /// `[rt, mem, alu, sfu]` as fractions of the total.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        let t = t as f64;
        [
            self.rt as f64 / t,
            self.mem as f64 / t,
            self.alu as f64 / t,
            self.sfu as f64 / t,
        ]
    }
}

/// One activity sample (taken every `sample_interval` cycles, like the
/// paper's AerialVision stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivitySample {
    /// Sample time.
    pub cycle: u64,
    /// Threads with non-empty stacks or outstanding fetches.
    pub busy: usize,
    /// Active threads that finished early and wait for their warp.
    pub waiting: usize,
    /// Threads masked off by SIMT divergence.
    pub inactive: usize,
}

impl ActivitySample {
    /// Threads resident in RT units at this sample.
    pub fn present(&self) -> usize {
        self.busy + self.waiting + self.inactive
    }
}

/// The sampled activity series of one simulation (Figs. 2, 4, 10).
#[derive(Clone, Debug, Default)]
pub struct ActivitySeries {
    /// Sampling interval in cycles.
    pub interval: u64,
    /// Samples in time order.
    pub samples: Vec<ActivitySample>,
}

impl ActivitySeries {
    /// Average RT-unit thread utilization: busy threads over resident
    /// threads, averaged across samples with any residents (Fig. 10).
    pub fn avg_utilization(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for s in &self.samples {
            let present = s.present();
            if present > 0 {
                sum += s.busy as f64 / present as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Aggregate Fig. 4 status distribution: fractions of
    /// `[busy, waiting, inactive]` over all sampled threads.
    pub fn status_distribution(&self) -> [f64; 3] {
        let (mut b, mut w, mut i) = (0u64, 0u64, 0u64);
        for s in &self.samples {
            b += s.busy as u64;
            w += s.waiting as u64;
            i += s.inactive as u64;
        }
        let t = (b + w + i) as f64;
        if t == 0.0 {
            return [0.0; 3];
        }
        [b as f64 / t, w as f64 / t, i as f64 / t]
    }
}

/// One interval sample of machine-wide counters (AerialVision-style
/// time series). All counter fields are **cumulative** totals at
/// `cycle`; per-interval rates (e.g. miss rate over the last window)
/// are differences between consecutive samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalSample {
    /// Sample time.
    pub cycle: u64,
    /// Threads with non-empty stacks or outstanding fetches.
    pub busy: usize,
    /// Active threads that finished early and wait for their warp.
    pub waiting: usize,
    /// Threads masked off by SIMT divergence.
    pub inactive: usize,
    /// Occupied warp-buffer slots summed over all RT units.
    pub warp_slots_occupied: usize,
    /// Cumulative L1 accesses (all SMs).
    pub l1_accesses: u64,
    /// Cumulative L1 hits (all SMs).
    pub l1_hits: u64,
    /// Cumulative L2 accesses.
    pub l2_accesses: u64,
    /// Cumulative L2 hits.
    pub l2_hits: u64,
    /// Cumulative bytes read from DRAM.
    pub dram_bytes: u64,
    /// Cumulative DRAM channel-busy cycles (summed over channels).
    pub dram_busy_cycles: u64,
}

/// The interval-sampled counter series of one simulation: the data
/// behind miss-rate / bandwidth / occupancy time-series plots.
#[derive(Clone, Debug, Default)]
pub struct IntervalSeries {
    /// Sampling interval in cycles (same clock as
    /// [`ActivitySeries::interval`]).
    pub interval: u64,
    /// Samples in time order, counters cumulative at each sample.
    pub samples: Vec<IntervalSample>,
}

/// One timeline sample of a traced warp (Fig. 11): which threads are
/// traversing at `cycle`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineSample {
    /// Sample time.
    pub cycle: u64,
    /// Bit `i` set: thread `i` has a non-empty stack or pending fetch.
    pub mask: u32,
}

/// Everything measured over one simulated frame.
#[derive(Clone, Debug)]
pub struct FrameResult {
    /// The rendered image, row-major, one [`Rgb`] per pixel. Identical
    /// between baseline and CoopRT runs (functional correctness, §4.2).
    pub image: Vec<Rgb>,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Total frame latency in core cycles (the paper's performance
    /// metric).
    pub cycles: u64,
    /// Memory-system counters (Figs. 12, 16).
    pub mem: MemStats,
    /// Total rays dispatched to the RT units over the frame (active
    /// threads of every `trace_ray`). Feeds the rays/sec throughput
    /// metric of the `simperf` bench.
    pub rays: u64,
    /// RT-unit event counters.
    pub events: EnergyEvents,
    /// Energy/power/EDP report (Figs. 9, 15, 18).
    pub energy: EnergyReport,
    /// Per-instruction-class stall cycles (Fig. 1).
    pub stalls: StallBreakdown,
    /// Thread-activity samples (Figs. 2, 4, 10).
    pub activity: ActivitySeries,
    /// Interval-sampled machine counters (cache hit rates, DRAM
    /// bandwidth, warp-buffer occupancy over time).
    pub intervals: IntervalSeries,
    /// Latency of the slowest warp, cycles (Fig. 14).
    pub slowest_warp_cycles: u64,
    /// DRAM channel utilization over the frame (§7.4).
    pub dram_utilization: f64,
    /// Predictor counters — intersection-predictor and ray-path
    /// families merged across SMs (all zero when both are disabled).
    pub predictor: PredictorStats,
    /// Latency of every retired `trace_ray` instruction (the raw data
    /// behind Figs. 11 and 14).
    pub trace_latencies: TraceLatencies,
    /// Timeline of the designated warp, if one was requested (Fig. 11).
    pub timeline: Vec<TimelineSample>,
    /// Ray-reordering pass counters (all zero under
    /// [`ReorderPolicy::Off`]).
    pub reorder: ReorderStats,
    /// Spatial-query answers, one `Vec` per pixel (= per query point):
    /// point indices for `knn`/`rad` (kNN in nearest-first order, radius
    /// ascending), the containing cell index for `cont`. Empty for
    /// render shaders and for replay runs.
    pub query_results: Vec<Vec<u32>>,
}

impl FrameResult {
    /// The rendered frame as an [`Image`](cooprt_math::Image), ready
    /// for PPM export or PSNR comparison.
    pub fn image_buffer(&self) -> cooprt_math::Image {
        cooprt_math::Image::from_pixels(self.width, self.height, self.image.clone())
    }

    /// SIMT efficiency of the frame's `trace_ray` issues: mean active
    /// lanes per issued instruction over the full [`WARP_SIZE`]-lane
    /// warp width. 1.0 means every issue carried 32 live rays; ragged
    /// tiles, dead bounces and partial compaction waves all pull it
    /// down.
    pub fn simt_efficiency(&self) -> f64 {
        if self.events.trace_instructions == 0 {
            return 0.0;
        }
        self.rays as f64 / (self.events.trace_instructions * WARP_SIZE as u64) as f64
    }
}

/// A configured simulation of one scene on one GPU configuration under
/// one traversal policy.
///
/// # Examples
///
/// ```
/// use cooprt_core::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
/// use cooprt_scenes::SceneId;
///
/// let scene = SceneId::Wknd.build(2);
/// let config = GpuConfig::small(2);
/// let result = Simulation::new(&scene, &config, TraversalPolicy::CoopRt)
///     .run_frame(ShaderKind::PathTrace, 8, 8).unwrap();
/// assert_eq!(result.image.len(), 64);
/// assert!(result.cycles > 0);
/// ```
#[derive(Clone, Debug)]
pub struct Simulation<'s> {
    scene: &'s Scene,
    config: GpuConfig,
    policy: TraversalPolicy,
    timeline_warp: Option<usize>,
    sample_salt: u64,
    tracer: Tracer,
    checker: Checker,
    recorder: Recorder,
}

impl<'s> Simulation<'s> {
    /// Creates a simulation over `scene` with the given configuration
    /// and traversal policy.
    pub fn new(scene: &'s Scene, config: &GpuConfig, policy: TraversalPolicy) -> Self {
        Simulation {
            scene,
            config: config.clone(),
            policy,
            timeline_warp: None,
            sample_salt: 0,
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
            recorder: Recorder::disabled(),
        }
    }

    /// Installs a sim-time event tracer: the engine hands clones to
    /// every RT unit and the memory hierarchy, and cycle-stamped events
    /// accumulate in the tracer's shared buffer (drain with
    /// [`Tracer::take`] after the run). Tracing is purely
    /// observational: cycle counts are bitwise identical with it on or
    /// off — the `golden_cycles` suite in `cooprt-bench` runs fully
    /// traced to enforce exactly that.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Installs an invariant checker (the `checked` engine mode): the
    /// engine hands clones to every RT unit and verifies cycle-boundary
    /// invariants — ray conservation, one response pop and one coalesced
    /// fetch per unit per cycle, LBU pair validity, `min_thit`
    /// monotonicity, and calendar sanity — recording violations into the
    /// checker's shared buffer (read with [`Checker::violations`] after
    /// the run). Like tracing, checking is purely observational: cycle
    /// counts are bitwise identical with it on or off, which the
    /// `golden_cycles` suite enforces over the full scene matrix.
    pub fn with_checker(mut self, checker: Checker) -> Self {
        self.checker = checker;
        self
    }

    /// Installs a front-end recorder: the engine captures every
    /// `(ray, t_max)` each shader thread submits at the warp-issue
    /// boundary, plus the per-SM issue stream (drain with
    /// [`Recorder::take`] after the run; [`crate::Trace::record`] wraps
    /// the whole recipe). Recording follows the same
    /// zero-cost-when-disabled discipline as tracing and checking: it
    /// is purely observational and cycle counts are bitwise identical
    /// with it on or off, which the `golden_cycles` suite enforces.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sets the per-sample RNG salt (use the sample index when
    /// accumulating several samples per pixel).
    pub fn with_sample_salt(mut self, salt: u64) -> Self {
        self.sample_salt = salt;
        self
    }

    /// Renders `spp` samples per pixel, each a full simulated frame with
    /// a distinct RNG salt, and returns the accumulated (averaged) image
    /// alongside every per-sample [`FrameResult`].
    ///
    /// Samples are simulated concurrently on the worker count from
    /// [`crate::parallel::threads`] (the `COOPRT_THREADS` knob). Each
    /// sample is an independent single-threaded engine, and the
    /// accumulation happens in ascending sample order afterwards, so
    /// the result is bitwise identical to the sequential path.
    ///
    /// Counter hygiene: each per-sample [`FrameResult`] carries
    /// per-frame counters only. Every statistics family
    /// ([`MemStats`](cooprt_gpu::MemStats), [`EnergyEvents`],
    /// [`StallBreakdown`], [`crate::TraceLatencies`],
    /// [`crate::PredictorStats`], [`IntervalSeries`]) lives inside the
    /// per-sample `Engine`, which this method constructs fresh for
    /// every sample — there is no cross-frame state to reset. The
    /// `metrics_report` suite in `cooprt-bench` pins this: identical
    /// back-to-back frames serialize to identical metrics reports.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroSamples`] if `spp == 0`,
    /// [`ConfigError::EmptyFrame`] if the frame has zero pixels, and
    /// [`ConfigError::ZeroReorderBuckets`] if reordering is enabled
    /// without sort buckets.
    pub fn run_accumulated(
        &self,
        kind: ShaderKind,
        width: usize,
        height: usize,
        spp: u32,
    ) -> Result<(Vec<Rgb>, Vec<FrameResult>), ConfigError> {
        self.run_accumulated_with_threads(kind, width, height, spp, crate::parallel::threads())
    }

    /// [`Simulation::run_accumulated`] with an explicit worker count
    /// (`threads == 1` is the plain sequential loop).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroSamples`] if `spp == 0`,
    /// [`ConfigError::EmptyFrame`] if the frame has zero pixels, and
    /// [`ConfigError::ZeroReorderBuckets`] if reordering is enabled
    /// without sort buckets.
    pub fn run_accumulated_with_threads(
        &self,
        kind: ShaderKind,
        width: usize,
        height: usize,
        spp: u32,
        threads: usize,
    ) -> Result<(Vec<Rgb>, Vec<FrameResult>), ConfigError> {
        if spp == 0 {
            return Err(ConfigError::ZeroSamples);
        }
        validate_frame(width, height)?;
        validate_config(&self.config)?;
        validate_query(kind, self.scene)?;
        let salts: Vec<u64> = (0..spp as u64).collect();
        let frames = crate::parallel::par_map(&salts, threads, |_, &s| {
            // Dimensions were validated above; a failure here would be an
            // internal invariant violation, not bad input.
            self.clone()
                .with_sample_salt(s)
                .run_frame(kind, width, height)
                .expect("frame dimensions validated before sample fan-out")
        });
        // Reduce in fixed sample order: f32 accumulation is not
        // associative, so the order must match the sequential loop.
        let mut accum = vec![Rgb::BLACK; width * height];
        for frame in &frames {
            for (acc, px) in accum.iter_mut().zip(&frame.image) {
                *acc += *px * (1.0 / spp as f32);
            }
        }
        Ok((accum, frames))
    }

    /// Requests a Fig. 11-style per-thread timeline of warp `warp`.
    pub fn with_timeline_warp(mut self, warp: usize) -> Self {
        self.timeline_warp = Some(warp);
        self
    }

    /// Simulates one `width x height` frame (1 sample per pixel) with
    /// the given shader and returns all measurements.
    ///
    /// Every counter in the returned [`FrameResult`] is per-frame by
    /// construction: a fresh `Engine` (with a fresh memory hierarchy
    /// and statistics state) is built for each call, so repeated calls
    /// on the same `Simulation` are independent and — the simulator
    /// being deterministic — identical.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyFrame`] if `width * height == 0`
    /// and [`ConfigError::ZeroReorderBuckets`] if reordering is
    /// enabled without sort buckets.
    pub fn run_frame(
        &self,
        kind: ShaderKind,
        width: usize,
        height: usize,
    ) -> Result<FrameResult, ConfigError> {
        validate_frame(width, height)?;
        validate_config(&self.config)?;
        validate_query(kind, self.scene)?;
        Ok(Engine::new(self, kind, width, height).run())
    }

    /// Simulates one frame driven by recorded per-thread ray streams
    /// instead of live shader threads (see [`crate::Trace::replay`],
    /// which packages the trace-level recipe around this).
    ///
    /// The timing model — RT units, caches, MSHRs, DRAM, LBU — runs
    /// exactly as live; only raygen/shading is skipped: each lane's
    /// next `(ray, t_max)` comes from its stream, and warp retirement
    /// advances the stream cursors precisely where live shading would
    /// produce the next bounce. `image` is the recorded frame, echoed
    /// back in the result (replay never shades).
    ///
    /// `streams` and `image` must both hold exactly `width * height`
    /// entries — thread `t` is pixel `t`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyFrame`] if `width * height == 0`
    /// and [`ConfigError::ZeroReorderBuckets`] if reordering is
    /// enabled without sort buckets.
    ///
    /// # Panics
    ///
    /// Panics if `streams` or `image` disagree with the pixel count;
    /// [`crate::Trace`] decoding validates both, so reaching the panic
    /// means a caller bypassed it with inconsistent data.
    pub fn replay_frame(
        &self,
        kind: ShaderKind,
        width: usize,
        height: usize,
        streams: Vec<Vec<RayRecord>>,
        image: Vec<Rgb>,
    ) -> Result<FrameResult, ConfigError> {
        validate_frame(width, height)?;
        validate_config(&self.config)?;
        assert_eq!(streams.len(), width * height, "one ray stream per pixel");
        assert_eq!(image.len(), width * height, "one recorded pixel per thread");
        let cursors = vec![0usize; streams.len()];
        let front = FrontEnd::Replay {
            streams,
            cursors,
            image,
        };
        Ok(Engine::with_front(self, kind, width, height, front).run())
    }
}

/// Rejects zero-pixel frames with a typed error.
fn validate_frame(width: usize, height: usize) -> Result<(), ConfigError> {
    if width == 0 || height == 0 {
        return Err(ConfigError::EmptyFrame { width, height });
    }
    Ok(())
}

/// Rejects inconsistent reorder/predictor configuration with a typed
/// error, so `Predictor::new`'s zero-size panic never fires on
/// caller-controlled input.
fn validate_config(cfg: &GpuConfig) -> Result<(), ConfigError> {
    if cfg.reorder != ReorderPolicy::Off && cfg.reorder_buckets == 0 {
        return Err(ConfigError::ZeroReorderBuckets);
    }
    if (cfg.intersection_predictor || cfg.predict != PredictPolicy::Off)
        && cfg.predictor_entries == 0
    {
        return Err(ConfigError::ZeroPredictorEntries);
    }
    Ok(())
}

/// Rejects a query shader on a scene that cannot answer it. Replay is
/// deliberately exempt ([`Simulation::replay_frame`] never consults the
/// domain): recorded query traces replay on the domain-less
/// [`Scene::for_replay`](cooprt_scenes::Scene::for_replay) stand-in,
/// with [`FrameResult::query_results`] empty.
fn validate_query(kind: ShaderKind, scene: &Scene) -> Result<(), ConfigError> {
    if !kind.is_query() {
        return Ok(());
    }
    let ok = match &scene.query {
        None => false,
        Some(d) => kind != ShaderKind::Contain || d.is_cells(),
    };
    if ok {
        Ok(())
    } else {
        Err(ConfigError::QueryDomainMismatch { shader: kind.key() })
    }
}

/// The engine's workload source: live shader threads, or recorded
/// per-thread ray streams replayed without shading.
///
/// Both arms present the same three observations the timing model ever
/// makes of a thread — "does it hold a ray", "what ray and search
/// bound", "it just retired a `trace_ray`" — so swapping the arm swaps
/// raygen/shading for stream playback while every downstream structure
/// (warps, RT units, memory, LBU) runs unchanged.
///
/// Cursor semantics mirror live aliveness exactly: a live thread's
/// `ray` goes `Some -> None` exactly once, so its k-th submission is
/// its stream's k-th record under *any* warp grouping, and a retire
/// advances the cursor precisely where live shading would decide the
/// next bounce (a dead thread's resume is a no-op in both arms).
enum FrontEnd {
    /// One shader thread per pixel, generating and shading rays.
    Live(Vec<ShaderThread>),
    /// Recorded streams: thread `t` submits `streams[t]` in order.
    Replay {
        /// Per-thread recorded `(ray, t_max)` submissions.
        streams: Vec<Vec<RayRecord>>,
        /// Next un-submitted record of each thread.
        cursors: Vec<usize>,
        /// The recorded final image (replay never shades).
        image: Vec<Rgb>,
    },
}

impl FrontEnd {
    /// Thread (= pixel) count.
    fn len(&self) -> usize {
        match self {
            FrontEnd::Live(threads) => threads.len(),
            FrontEnd::Replay { streams, .. } => streams.len(),
        }
    }

    /// True if thread `t` has a ray left to trace.
    #[inline]
    fn has_ray(&self, t: usize) -> bool {
        match self {
            FrontEnd::Live(threads) => threads[t].ray.is_some(),
            FrontEnd::Replay {
                streams, cursors, ..
            } => cursors[t] < streams[t].len(),
        }
    }

    /// The `(ray, t_max)` lane contents thread `t` contributes to a
    /// `trace_ray` being built right now.
    ///
    /// Dead lanes return `t_max = f32::INFINITY` in replay where live
    /// passes the thread's stale `t_max`; the RT unit provably never
    /// reads `min_thit` of an inactive lane, so the difference is
    /// unobservable (the replay-identity tests pin this).
    #[inline]
    fn query_lane(&self, t: usize) -> (Option<Ray>, f32) {
        match self {
            FrontEnd::Live(threads) => {
                let thread = &threads[t];
                (thread.ray, thread.t_max)
            }
            FrontEnd::Replay {
                streams, cursors, ..
            } => match streams[t].get(cursors[t]) {
                Some(rec) => (Some(rec.ray()), rec.t_max),
                None => (None, f32::INFINITY),
            },
        }
    }

    /// Thread `t`'s warp retired a `trace_ray`: live threads shade and
    /// generate the next ray; replay advances the stream cursor. Both
    /// are no-ops for a thread with no ray in flight.
    fn resume(
        &mut self,
        t: usize,
        kind: ShaderKind,
        cfg: &GpuConfig,
        scene: &Scene,
        hit: Option<crate::rtunit::RayHit>,
        gathered: &[u32],
    ) {
        match self {
            FrontEnd::Live(threads) => threads[t].resume(kind, cfg, scene, hit, gathered),
            FrontEnd::Replay {
                streams, cursors, ..
            } => {
                if cursors[t] < streams[t].len() {
                    cursors[t] += 1;
                }
            }
        }
    }

    /// The final per-pixel colors.
    fn colors(&self) -> Vec<Rgb> {
        match self {
            FrontEnd::Live(threads) => threads.iter().map(|t| t.color).collect(),
            FrontEnd::Replay { image, .. } => image.clone(),
        }
    }

    /// Per-pixel spatial-query answers; empty unless a query shader ran
    /// live (replay carries no shading state to answer from).
    fn query_answers(&self, kind: ShaderKind) -> Vec<Vec<u32>> {
        match self {
            FrontEnd::Live(threads) if kind.is_query() => {
                threads.iter().map(|t| t.query_hits.clone()).collect()
            }
            _ => Vec::new(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Raygen { until: u64 },
    WaitRt,
    InRt,
    Shade { until: u64 },
    Done,
}

struct Warp {
    /// Thread (= pixel) indices of this warp's lanes, at most
    /// [`WARP_SIZE`]. With compaction off, lane `i` of warp `w` is
    /// pixel `w * 32 + i` for the whole frame; with compaction on,
    /// warps are re-formed from live threads between waves.
    members: Vec<u32>,
    iteration: u32,
    phase: Phase,
    /// Charge the raygen setup when this warp activates (first wave /
    /// frame start only).
    needs_raygen: bool,
    /// Retire after a single trace+shade (compaction wave mode).
    one_shot: bool,
    started: u64,
    finished: u64,
    wait_since: u64,
}

struct Sm {
    rt: RtUnit,
    queue: VecDeque<usize>,
    running: Vec<usize>,
}

struct Engine<'s> {
    scene: &'s Scene,
    cfg: GpuConfig,
    policy: TraversalPolicy,
    kind: ShaderKind,
    width: usize,
    height: usize,
    /// Workload source, one thread per pixel (thread id == pixel
    /// index): live shader threads or recorded replay streams.
    front: FrontEnd,
    warps: Vec<Warp>,
    sms: Vec<Sm>,
    /// Cached earliest cycle at which each SM can act again, recomputed
    /// only when that SM is stepped. An SM whose entry exceeds `now`
    /// provably performs a no-op step (all its state is private to its
    /// step section, and issued memory responses carry fixed ready
    /// times), so [`Engine::step_cycle`] skips it and
    /// [`Engine::next_time`] folds over this cache instead of rescanning
    /// every warp of every SM.
    sm_next: Vec<u64>,
    /// Wake calendar over `sm_next`: whenever an SM's cached next-event
    /// time is set, an entry is pushed at that cycle. Entries are
    /// invalidated lazily — one is live only while its time still
    /// equals `sm_next[sm]` — so [`Engine::next_time`] pops the
    /// earliest live entry in amortized O(1) instead of folding over
    /// every SM each skip.
    wake: EventCalendar<u32>,
    mem: MemoryHierarchy,
    tracer: Tracer,
    checker: Checker,
    recorder: Recorder,
    /// Active-ray count of each warp's in-flight `trace_ray`, recorded
    /// at issue (checked mode only; indexed by warp id, reset per wave).
    checked_issue_rays: Vec<u32>,
    /// Per-SM retired ray / `trace_ray`-instruction tallies feeding the
    /// ray-conservation invariant (checked mode only).
    checked_retired_rays: Vec<u64>,
    checked_retired_instr: Vec<u64>,
    stalls: StallBreakdown,
    activity: ActivitySeries,
    intervals: IntervalSeries,
    timeline_warp: Option<usize>,
    timeline: Vec<TimelineSample>,
    retired_buf: Vec<TraceResult>,
    slowest_warp: u64,
    trace_latencies: TraceLatencies,
    /// Per-frame sum of every reordering pass's counters.
    reorder_stats: ReorderStats,
}

impl<'s> Engine<'s> {
    fn new(sim: &Simulation<'s>, kind: ShaderKind, width: usize, height: usize) -> Self {
        let pixels = width * height;
        let threads: Vec<ShaderThread> = (0..pixels)
            .map(|p| {
                if kind.is_query() {
                    // Query workloads: thread p probes query point p
                    // (the frame raster is just a thread grid).
                    return ShaderThread::begin_query(sim.scene, kind, p, sim.sample_salt);
                }
                let x = p % width;
                let y = p / width;
                let u = (x as f32 + 0.5) / width as f32;
                let v = (y as f32 + 0.5) / height as f32;
                ShaderThread::begin_with_salt(sim.scene, p, u, v, sim.sample_salt)
            })
            .collect();
        Engine::with_front(sim, kind, width, height, FrontEnd::Live(threads))
    }

    fn with_front(
        sim: &Simulation<'s>,
        kind: ShaderKind,
        width: usize,
        height: usize,
        front: FrontEnd,
    ) -> Self {
        let cfg = sim.config.clone();
        sim.recorder.begin(front.len());
        let sm_count = cfg.sm_count();
        let sms: Vec<Sm> = (0..sm_count)
            .map(|i| {
                let mut rt = RtUnit::for_config(i, &cfg);
                rt.set_tracer(sim.tracer.clone());
                rt.set_checker(sim.checker.clone());
                Sm {
                    rt,
                    queue: VecDeque::new(),
                    running: Vec::new(),
                }
            })
            .collect();
        let mut mem = MemoryHierarchy::new(&cfg.mem);
        mem.set_tracer(sim.tracer.clone());
        let interval = cfg.sample_interval.max(1);
        let sm_next = vec![0u64; sm_count];
        Engine {
            scene: sim.scene,
            cfg,
            policy: sim.policy,
            kind,
            width,
            height,
            front,
            warps: Vec::new(),
            sms,
            sm_next,
            wake: EventCalendar::new(),
            mem,
            tracer: sim.tracer.clone(),
            checker: sim.checker.clone(),
            recorder: sim.recorder.clone(),
            checked_issue_rays: Vec::new(),
            checked_retired_rays: vec![0; sm_count],
            checked_retired_instr: vec![0; sm_count],
            stalls: StallBreakdown::default(),
            activity: ActivitySeries {
                interval,
                samples: Vec::new(),
            },
            intervals: IntervalSeries {
                interval,
                samples: Vec::new(),
            },
            timeline_warp: sim.timeline_warp,
            timeline: Vec::new(),
            retired_buf: Vec::new(),
            slowest_warp: 0,
            trace_latencies: TraceLatencies::new(),
            reorder_stats: ReorderStats::default(),
        }
    }

    /// Groups pixels into warps per the configured tiling.
    fn pixel_groups(&self) -> Vec<Vec<u32>> {
        let pixels = self.front.len() as u32;
        match self.cfg.warp_tiling {
            crate::config::WarpTiling::Linear => (0..pixels)
                .collect::<Vec<u32>>()
                .chunks(WARP_SIZE)
                .map(|c| c.to_vec())
                .collect(),
            crate::config::WarpTiling::Tiled8x4 => {
                // Walk the image in 8x4 screen tiles; ragged edges form
                // partial warps.
                let (w, h) = (self.width, self.height);
                let mut groups = Vec::new();
                for ty in (0..h).step_by(4) {
                    for tx in (0..w).step_by(8) {
                        let mut members = Vec::with_capacity(WARP_SIZE);
                        for y in ty..(ty + 4).min(h) {
                            for x in tx..(tx + 8).min(w) {
                                members.push((y * w + x) as u32);
                            }
                        }
                        groups.push(members);
                    }
                }
                groups
            }
        }
    }

    /// Applies the configured ray-reordering policy to a thread order
    /// about to be chunked into warps: a stable bucketed counting sort
    /// on each thread's *current* ray key (primary ray at first-wave
    /// formation, next bounce at a compaction re-form). `Off` returns
    /// the order untouched — bitwise the pre-reordering path.
    ///
    /// Works identically for live and replay front ends: both answer
    /// [`FrontEnd::query_lane`] with the thread's next un-submitted
    /// ray, which is why one unordered trace replays every reorder
    /// policy.
    fn reorder_threads(&mut self, threads: Vec<u32>, wave: u32, now: u64) -> Vec<u32> {
        let policy = self.cfg.reorder;
        if policy == ReorderPolicy::Off {
            return threads;
        }
        let bounds = self.scene.image.root_bounds();
        let front = &self.front;
        let (order, pass) = reorder::reorder_by_key(&threads, self.cfg.reorder_buckets, |t| {
            match front.query_lane(t as usize).0 {
                Some(ray) => reorder::ray_key(policy, &ray, &bounds),
                // A dead lane in the order (possible only at wave 0
                // without compaction) keys lowest, preserving input
                // order among its peers.
                None => 0,
            }
        });
        self.tracer.emit(now, || EventKind::Reorder {
            wave,
            rays: pass.keys_computed as u32,
            moved: pass.rays_moved as u32,
            buckets_occupied: pass.bucket_occupancy_sum as u32,
        });
        self.reorder_stats.add(&pass);
        order
    }

    fn any_ray(&self, w: usize) -> bool {
        self.warps[w]
            .members
            .iter()
            .any(|&t| self.front.has_ray(t as usize))
    }

    /// Creates a wave of warps over the given lane groups and queues
    /// them on the SMs (Gigathread-style round-robin). `one_shot` warps
    /// retire after a single trace+shade (compaction mode).
    fn spawn_wave(
        &mut self,
        groups: Vec<Vec<u32>>,
        iteration: u32,
        raygen: bool,
        one_shot: bool,
        now: u64,
    ) {
        self.warps.clear();
        for sm in &mut self.sms {
            sm.queue.clear();
            debug_assert!(sm.running.is_empty(), "waves must not overlap");
        }
        let sm_count = self.sms.len();
        // New work arrived on every SM: invalidate the next-event cache
        // (an entry of `now` makes every SM due immediately, exactly as
        // the old `fill(0)` did) and seed the wake calendar to match.
        self.sm_next.fill(now);
        self.wake.clear();
        for sm in 0..sm_count {
            self.wake.push(now, sm as u32);
        }
        for (w, members) in groups.into_iter().enumerate() {
            debug_assert!(members.len() <= WARP_SIZE);
            self.warps.push(Warp {
                members,
                iteration,
                phase: Phase::Raygen { until: 0 },
                needs_raygen: raygen,
                one_shot,
                started: 0,
                finished: 0,
                wait_since: 0,
            });
            self.sms[w % sm_count].queue.push_back(w);
        }
        if self.checker.is_enabled() {
            // Warp ids restart per wave; the per-warp issue-ray record
            // follows (retired tallies stay cumulative, like the RT
            // units' issue counters).
            self.checked_issue_rays.clear();
            self.checked_issue_rays.resize(self.warps.len(), 0);
        }
    }

    fn run(mut self) -> FrameResult {
        let mut now = 0u64;
        let mut next_sample = self.activity.interval;
        if !self.cfg.compaction {
            // One persistent warp per 32 pixels for the whole frame.
            // With reordering on, the tiling order is re-sorted by
            // primary-ray key before being cut into warps.
            let groups = if self.cfg.reorder == ReorderPolicy::Off {
                self.pixel_groups()
            } else {
                let base: Vec<u32> = self.pixel_groups().into_iter().flatten().collect();
                let order = self.reorder_threads(base, 0, now);
                order.chunks(WARP_SIZE).map(|c| c.to_vec()).collect()
            };
            self.spawn_wave(groups, 0, true, false, now);
            now = self.drain(now, &mut next_sample);
        } else {
            // Wave-synchronous execution with per-bounce compaction.
            let mut wave = 0u32;
            loop {
                let alive: Vec<u32> = (0..self.front.len() as u32)
                    .filter(|&t| self.front.has_ray(t as usize))
                    .collect();
                if alive.is_empty() {
                    break;
                }
                if wave > 0 {
                    now += self.cfg.compaction_overhead_cycles;
                }
                // Reordering rides the compaction pass: the live-thread
                // list is key-sorted before being cut into dense warps
                // (each thread keyed on its *next* ray), so every wave
                // re-packs for coherence at no extra modeled cost.
                let alive = self.reorder_threads(alive, wave, now);
                let groups = alive.chunks(WARP_SIZE).map(|c| c.to_vec()).collect();
                self.spawn_wave(groups, wave, wave == 0, true, now);
                now = self.drain(now, &mut next_sample);
                wave += 1;
            }
        }
        self.finish(now)
    }

    /// Runs the cycle loop until every warp of the current wave is done;
    /// returns the finishing cycle.
    fn drain(&mut self, start: u64, next_sample: &mut u64) -> u64 {
        let mut now = start;
        let mut unfinished = self.warps.len();
        let mut guard = 0u64;
        while unfinished > 0 {
            unfinished -= self.step_cycle(now);
            guard += 1;
            assert!(guard < 2_000_000_000, "simulation failed to converge");
            if unfinished == 0 {
                break;
            }
            let next = self.next_time(now);
            debug_assert!(next > now);
            // Take any activity samples that fall inside the skipped
            // window — state is constant while no SM acts.
            while *next_sample <= next {
                self.take_sample(*next_sample);
                *next_sample += self.activity.interval;
            }
            now = next;
        }
        now
    }

    /// Advances every SM by one cycle; returns how many warps finished.
    fn step_cycle(&mut self, now: u64) -> usize {
        let mut finished = 0;
        for sm_idx in 0..self.sms.len() {
            // An SM whose cached next-event time lies in the future has
            // nothing to do this cycle: stepping it would be a no-op
            // (the cache is recomputed whenever the SM's state changes,
            // and nothing outside its own step section mutates it).
            if self.sm_next[sm_idx] > now {
                continue;
            }
            // Activate queued thread blocks up to the per-SM limit.
            while self.sms[sm_idx].running.len() < self.cfg.max_tbs_per_sm {
                let Some(w) = self.sms[sm_idx].queue.pop_front() else {
                    break;
                };
                self.warps[w].started = now;
                self.tracer.emit(now, || EventKind::WarpIssue {
                    sm: sm_idx as u32,
                    warp: w as u32,
                });
                if self.warps[w].needs_raygen {
                    self.warps[w].phase = Phase::Raygen {
                        until: now + self.cfg.raygen_cycles,
                    };
                    self.stalls.alu += self.cfg.raygen_cycles;
                } else {
                    self.warps[w].phase = Phase::WaitRt;
                    self.warps[w].wait_since = now;
                }
                self.sms[sm_idx].running.push(w);
            }

            // Phase transitions.
            for i in 0..self.sms[sm_idx].running.len() {
                let w = self.sms[sm_idx].running[i];
                match self.warps[w].phase {
                    Phase::Raygen { until } if until <= now => {
                        self.warps[w].phase = Phase::WaitRt;
                        self.warps[w].wait_since = now;
                    }
                    Phase::Shade { until } if until <= now => {
                        if !self.warps[w].one_shot && self.any_ray(w) {
                            self.warps[w].phase = Phase::WaitRt;
                            self.warps[w].wait_since = now;
                        } else {
                            self.warps[w].phase = Phase::Done;
                            self.warps[w].finished = now;
                        }
                    }
                    _ => {}
                }
                if self.warps[w].phase == Phase::WaitRt {
                    if !self.any_ray(w) {
                        // Nothing to trace (can happen for fully masked
                        // warps): skip straight to done.
                        self.warps[w].phase = Phase::Done;
                        self.warps[w].finished = now;
                    } else if self.sms[sm_idx].rt.has_free_slot() {
                        let query = self.build_query(w);
                        if self.checker.is_enabled() {
                            self.checked_issue_rays[w] = query.rays.iter().flatten().count() as u32;
                        }
                        self.recorder.record_issue(
                            sm_idx as u32,
                            w as u32,
                            self.warps[w].iteration,
                            &self.warps[w].members,
                            &query,
                        );
                        let ok = self.sms[sm_idx].rt.issue(query, now, self.scene);
                        debug_assert!(ok);
                        self.warps[w].phase = Phase::InRt;
                    }
                }
            }

            // RT unit cycle.
            self.sms[sm_idx].rt.step(
                now,
                &mut self.mem,
                self.scene,
                self.policy,
                &self.cfg,
                &mut self.retired_buf,
            );
            let retired = std::mem::take(&mut self.retired_buf);
            for res in &retired {
                if self.checker.is_enabled() {
                    self.checked_retired_rays[sm_idx] +=
                        u64::from(self.checked_issue_rays[res.warp]);
                    self.checked_retired_instr[sm_idx] += 1;
                }
                self.retire_warp(res, now);
            }
            self.retired_buf = retired;
            self.retired_buf.clear();

            // Ray conservation at the cycle boundary: everything this RT
            // unit was ever asked to trace is either retired or still
            // resident in its warp buffer.
            if self.checker.is_enabled() {
                let rt = &self.sms[sm_idx].rt;
                let retired_rays = self.checked_retired_rays[sm_idx];
                let retired_instr = self.checked_retired_instr[sm_idx];
                self.checker.check(
                    now,
                    || rt.rays_issued == retired_rays + rt.in_flight_rays(),
                    || {
                        format!(
                            "SM {sm_idx} lost rays: issued {} != retired {retired_rays} + \
                             in-flight {}",
                            rt.rays_issued,
                            rt.in_flight_rays()
                        )
                    },
                );
                self.checker.check(
                    now,
                    || rt.events.trace_instructions == retired_instr + rt.occupied() as u64,
                    || {
                        format!(
                            "SM {sm_idx} lost trace_rays: issued {} != retired {retired_instr} \
                             + occupied {}",
                            rt.events.trace_instructions,
                            rt.occupied()
                        )
                    },
                );
            }

            // Reap finished warps.
            let warps = &self.warps;
            let tracer = &self.tracer;
            let before = self.sms[sm_idx].running.len();
            let mut slowest = self.slowest_warp;
            self.sms[sm_idx].running.retain(|&w| {
                if warps[w].phase == Phase::Done {
                    slowest = slowest.max(warps[w].finished.saturating_sub(warps[w].started));
                    tracer.emit(now, || EventKind::WarpRetire {
                        sm: sm_idx as u32,
                        warp: w as u32,
                    });
                    false
                } else {
                    true
                }
            });
            self.slowest_warp = slowest;
            finished += before - self.sms[sm_idx].running.len();

            // Refresh this SM's next-event cache now that its step is
            // complete; it stays valid until the SM is stepped again.
            let t = self.sm_next_time(sm_idx, now);
            self.sm_next[sm_idx] = t;
            if t != u64::MAX {
                self.wake.push(t, sm_idx as u32);
            }
        }

        // Fig. 11 timeline: capture the designated warp while resident.
        if let Some(tw) = self.timeline_warp {
            let sm = tw % self.sms.len();
            if let Some(mask) = self.sms[sm].rt.busy_mask_of(tw) {
                if self.timeline.last().map(|s| s.cycle) != Some(now) {
                    self.timeline.push(TimelineSample { cycle: now, mask });
                }
            }
        }
        finished
    }

    fn build_query(&mut self, w: usize) -> TraceQuery {
        let warp = &self.warps[w];
        let mut rays = [None; WARP_SIZE];
        let mut t_max = [f32::INFINITY; WARP_SIZE];
        for (i, &t) in warp.members.iter().enumerate() {
            let (ray, bound) = self.front.query_lane(t as usize);
            rays[i] = ray;
            t_max[i] = bound;
        }
        TraceQuery {
            warp: w,
            rays,
            t_max,
            any_hit: self.kind.wants_anyhit(warp.iteration),
            gather: self.kind.is_gather(),
        }
    }

    fn retire_warp(&mut self, res: &TraceResult, now: u64) {
        let w = res.warp;
        self.trace_latencies
            .record(res.retired_at.saturating_sub(res.issued_at));
        // The whole trace_ray episode (waiting for a slot + traversal)
        // stalls on the RT unit.
        self.stalls.rt += now.saturating_sub(self.warps[w].wait_since);
        for i in 0..self.warps[w].members.len() {
            let hit = res.hits[i];
            let t = self.warps[w].members[i] as usize;
            // This lane's slice of the (lane-sorted) gather collection;
            // empty — with no allocation — for non-gather queries.
            let lane = i as u8;
            let start = res.gathered.partition_point(|&(l, _)| l < lane);
            let end = start + res.gathered[start..].partition_point(|&(l, _)| l == lane);
            let gathered: Vec<u32> = res.gathered[start..end].iter().map(|&(_, g)| g).collect();
            self.front
                .resume(t, self.kind, &self.cfg, self.scene, hit, &gathered);
        }
        let warp = &mut self.warps[w];
        warp.iteration += 1;
        let shade =
            self.cfg.shade_mem_cycles + self.cfg.shade_alu_cycles + self.cfg.shade_sfu_cycles;
        self.stalls.mem += self.cfg.shade_mem_cycles;
        self.stalls.alu += self.cfg.shade_alu_cycles;
        self.stalls.sfu += self.cfg.shade_sfu_cycles;
        warp.phase = Phase::Shade { until: now + shade };
    }

    /// Earliest cycle (> `now`) at which SM `sm_idx` can act, or
    /// `u64::MAX` if it is fully drained.
    fn sm_next_time(&self, sm_idx: usize, now: u64) -> u64 {
        let sm = &self.sms[sm_idx];
        if !sm.queue.is_empty() && sm.running.len() < self.cfg.max_tbs_per_sm {
            return now + 1;
        }
        let mut next = u64::MAX;
        for &w in &sm.running {
            match self.warps[w].phase {
                Phase::Raygen { until } | Phase::Shade { until } => {
                    next = next.min(until.max(now + 1));
                }
                Phase::WaitRt if sm.rt.has_free_slot() => {
                    return now + 1;
                }
                _ => {}
            }
        }
        if let Some(t) = sm
            .rt
            .next_event(now + 1, self.policy, self.cfg.subwarp_size)
        {
            next = next.min(t.max(now + 1));
        }
        next
    }

    /// The next cycle after `now` at which any SM or warp can act.
    ///
    /// Amortized O(1): pops the wake calendar until the earliest entry
    /// that still matches its SM's cached next-event time. Every
    /// non-drained SM keeps a live entry (one is pushed whenever
    /// `sm_next` is set, and the SM popped here is stepped — and thus
    /// re-pushed — at the returned cycle), so the first live entry *is*
    /// the minimum over `sm_next`. Stale entries were each pushed once,
    /// so discarding them is amortized constant work.
    fn next_time(&mut self, now: u64) -> u64 {
        while let Some((t, sm)) = self.wake.pop_next() {
            if t == self.sm_next[sm as usize] {
                // A live wake entry in the past would mean the per-SM
                // next-event cache went stale and the engine skipped
                // work (the `.max` below would silently paper over it).
                self.checker.check(
                    now,
                    || t > now,
                    || format!("wake calendar yielded cycle {t} for SM {sm}, not after {now}"),
                );
                return t.max(now + 1);
            }
        }
        now + 1
    }

    fn take_sample(&mut self, cycle: u64) {
        let mut agg = StatusCounts::default();
        let mut occupied = 0usize;
        for sm in &self.sms {
            let s = sm.rt.sample_status();
            agg.busy += s.busy;
            agg.waiting += s.waiting;
            agg.inactive += s.inactive;
            occupied += sm.rt.occupied();
        }
        self.activity.samples.push(ActivitySample {
            cycle,
            busy: agg.busy,
            waiting: agg.waiting,
            inactive: agg.inactive,
        });
        let mem = self.mem.stats();
        self.intervals.samples.push(IntervalSample {
            cycle,
            busy: agg.busy,
            waiting: agg.waiting,
            inactive: agg.inactive,
            warp_slots_occupied: occupied,
            l1_accesses: mem.l1.accesses,
            l1_hits: mem.l1.hits,
            l2_accesses: mem.l2.accesses,
            l2_hits: mem.l2.hits,
            dram_bytes: mem.dram_bytes,
            dram_busy_cycles: mem.dram.busy_cycles,
        });
    }

    fn finish(mut self, now: u64) -> FrameResult {
        let image: Vec<Rgb> = self.front.colors();
        let query_results = self.front.query_answers(self.kind);
        let slowest = self.slowest_warp;
        let mut events = EnergyEvents::default();
        let mut predictor = PredictorStats::default();
        let mut rays = 0u64;
        for sm in &self.sms {
            events.add(&sm.rt.events);
            rays += sm.rt.rays_issued;
            if let Some(p) = sm.rt.predictor_stats() {
                predictor.add(&p);
            }
        }
        let mem_stats = self.mem.stats();
        let energy = self.cfg.power.report(
            &events,
            &mem_stats,
            now,
            self.cfg.sm_count(),
            self.cfg.mem.core_clock_mhz,
        );
        // Ensure at least one sample exists for short runs.
        if self.activity.samples.is_empty() {
            self.take_sample(now);
        }
        FrameResult {
            image,
            width: self.width,
            height: self.height,
            cycles: now,
            mem: mem_stats,
            rays,
            events,
            energy,
            stalls: self.stalls,
            activity: self.activity,
            intervals: self.intervals,
            slowest_warp_cycles: slowest,
            dram_utilization: self.mem.dram_utilization(now),
            predictor,
            trace_latencies: self.trace_latencies,
            timeline: self.timeline,
            reorder: self.reorder_stats,
            query_results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_scenes::SceneId;

    fn run(id: SceneId, policy: TraversalPolicy, kind: ShaderKind, res: usize) -> FrameResult {
        let scene = id.build(2);
        let cfg = GpuConfig::small(2);
        Simulation::new(&scene, &cfg, policy)
            .run_frame(kind, res, res)
            .unwrap()
    }

    #[test]
    fn images_are_identical_across_policies() {
        for id in [SceneId::Wknd, SceneId::Crnvl, SceneId::Spnza] {
            let scene = id.build(2);
            let cfg = GpuConfig::small(2);
            let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap();
            let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap();
            assert_eq!(
                base.image, coop.image,
                "{id}: CoopRT must be functionally exact"
            );
        }
    }

    #[test]
    fn coop_is_faster_on_a_divergent_scene() {
        let scene = SceneId::Crnvl.build(3);
        let cfg = GpuConfig::small(2);
        let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 12, 12)
            .unwrap();
        let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 12, 12)
            .unwrap();
        assert!(
            coop.cycles < base.cycles,
            "coop {} vs base {}",
            coop.cycles,
            base.cycles
        );
    }

    #[test]
    fn coop_improves_thread_utilization() {
        let scene = SceneId::Party.build(3);
        let cfg = GpuConfig::small(2);
        let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 12, 12)
            .unwrap();
        let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 12, 12)
            .unwrap();
        assert!(
            coop.activity.avg_utilization() > base.activity.avg_utilization(),
            "coop {:.3} vs base {:.3}",
            coop.activity.avg_utilization(),
            base.activity.avg_utilization()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(
            SceneId::Bunny,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
            8,
        );
        let b = run(
            SceneId::Bunny,
            TraversalPolicy::CoopRt,
            ShaderKind::PathTrace,
            8,
        );
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.image, b.image);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn image_has_content() {
        let r = run(
            SceneId::Wknd,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            8,
        );
        let lum: f32 = r.image.iter().map(|c| c.luminance()).sum();
        assert!(lum > 0.0, "a daylight scene cannot render black");
        assert_eq!(r.width, 8);
        assert_eq!(r.height, 8);
    }

    #[test]
    fn ao_and_sh_shaders_run() {
        for kind in [ShaderKind::AmbientOcclusion, ShaderKind::Shadow] {
            let r = run(SceneId::Bath, TraversalPolicy::CoopRt, kind, 8);
            assert!(r.cycles > 0);
            let lum: f32 = r.image.iter().map(|c| c.luminance()).sum();
            assert!(lum > 0.0, "{kind:?} image should not be black");
        }
    }

    #[test]
    fn query_shaders_run_and_match_across_policies() {
        for (id, kind) in [
            (SceneId::Quni, ShaderKind::Knn),
            (SceneId::Qclu, ShaderKind::Radius),
            (SceneId::Qamr, ShaderKind::Contain),
        ] {
            let scene = id.build(2);
            let cfg = GpuConfig::small(2);
            let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
                .run_frame(kind, 8, 8)
                .unwrap();
            let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
                .run_frame(kind, 8, 8)
                .unwrap();
            assert!(base.cycles > 0 && coop.cycles > 0);
            assert_eq!(base.query_results.len(), 64, "one answer per query point");
            assert_eq!(
                base.query_results, coop.query_results,
                "{id}/{kind:?}: answers must be policy-invariant"
            );
            assert_eq!(
                base.image, coop.image,
                "{id}/{kind:?}: answer-derived images must match"
            );
            assert!(
                base.query_results.iter().any(|r| !r.is_empty()),
                "{id}/{kind:?}: some query should find something"
            );
        }
    }

    #[test]
    fn query_shaders_are_rejected_without_a_domain() {
        let scene = SceneId::Wknd.build(2);
        let cfg = GpuConfig::small(2);
        let sim = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline);
        for kind in [ShaderKind::Knn, ShaderKind::Radius, ShaderKind::Contain] {
            assert_eq!(
                sim.run_frame(kind, 4, 4).unwrap_err(),
                ConfigError::QueryDomainMismatch { shader: kind.key() }
            );
        }
        // Containment on a point domain (no cells) is also a mismatch…
        let points = SceneId::Quni.build(2);
        let sim = Simulation::new(&points, &cfg, TraversalPolicy::Baseline);
        assert_eq!(
            sim.run_frame(ShaderKind::Contain, 4, 4).unwrap_err(),
            ConfigError::QueryDomainMismatch { shader: "cont" }
        );
        // …while render shaders ignore the domain entirely.
        assert!(sim.run_frame(ShaderKind::PathTrace, 4, 4).is_ok());
    }

    #[test]
    fn render_frames_carry_no_query_results() {
        let r = run(
            SceneId::Wknd,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            4,
        );
        assert!(r.query_results.is_empty());
    }

    #[test]
    fn ao_sh_match_across_policies() {
        for kind in [ShaderKind::AmbientOcclusion, ShaderKind::Shadow] {
            let scene = SceneId::Ref.build(2);
            let cfg = GpuConfig::small(2);
            let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
                .run_frame(kind, 8, 8)
                .unwrap();
            let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
                .run_frame(kind, 8, 8)
                .unwrap();
            assert_eq!(base.image, coop.image, "{kind:?}");
        }
    }

    #[test]
    fn stalls_are_dominated_by_rt() {
        let r = run(
            SceneId::Spnza,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            12,
        );
        let f = r.stalls.fractions();
        assert!(f[0] > 0.5, "RT should dominate stalls (Fig. 1), got {f:?}");
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slowest_warp_is_at_most_total() {
        let r = run(
            SceneId::Ship,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            8,
        );
        assert!(r.slowest_warp_cycles <= r.cycles);
        assert!(r.slowest_warp_cycles > 0);
    }

    #[test]
    fn timeline_capture_works() {
        let scene = SceneId::Bath.build(2);
        let cfg = GpuConfig::small(2);
        let r = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .with_timeline_warp(0)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        assert!(
            !r.timeline.is_empty(),
            "warp 0 traced, timeline must have samples"
        );
        assert!(r.timeline.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn coop_does_not_change_total_triangle_work_much() {
        // CoopRT parallelizes traversal; it must not blow up the amount
        // of intersection work (some duplication from weaker pruning is
        // expected, but bounded).
        let scene = SceneId::Bunny.build(3);
        let cfg = GpuConfig::small(2);
        let base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        let coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        assert!(
            (coop.events.box_tests as f64) < 2.0 * base.events.box_tests as f64,
            "coop {} vs base {}",
            coop.events.box_tests,
            base.events.box_tests
        );
    }

    #[test]
    fn subwarp_scopes_run_and_stay_correct() {
        let scene = SceneId::Fox.build(2);
        let base_cfg = GpuConfig::small(2);
        let reference = Simulation::new(&scene, &base_cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        for sw in [4usize, 8, 16, 32] {
            let cfg = GpuConfig::small(2).with_subwarp(sw);
            let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap();
            assert_eq!(r.image, reference.image, "subwarp {sw}");
        }
    }

    #[test]
    fn trace_latencies_are_collected_and_coop_compresses_the_tail() {
        let scene = SceneId::Fox.build(3);
        let cfg = GpuConfig::small(2);
        let mut base = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 12, 12)
            .unwrap();
        let mut coop = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 12, 12)
            .unwrap();
        assert!(!base.trace_latencies.is_empty());
        assert_eq!(
            base.trace_latencies.len() as u64,
            base.events.trace_instructions,
            "one latency sample per trace instruction"
        );
        assert!(
            coop.trace_latencies.quantile(0.99) < base.trace_latencies.quantile(0.99),
            "coop p99 {} vs base p99 {}",
            coop.trace_latencies.quantile(0.99),
            base.trace_latencies.quantile(0.99)
        );
    }

    #[test]
    fn accumulation_averages_samples() {
        let scene = SceneId::Wknd.build(2);
        let cfg = GpuConfig::small(2);
        let sim = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt);
        let (accum, frames) = sim.run_accumulated(ShaderKind::PathTrace, 8, 8, 3).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(accum.len(), 64);
        // Distinct salts give distinct sample images.
        assert_ne!(frames[0].image, frames[1].image);
        // The accumulation is the per-pixel average of the samples.
        for (p, acc) in accum.iter().enumerate() {
            let mean_r: f32 = frames.iter().map(|f| f.image[p].r).sum::<f32>() / 3.0;
            assert!((acc.r - mean_r).abs() < 1e-5);
        }
        // Salt 0 must reproduce the plain run (backwards compatibility).
        let plain = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        assert_eq!(frames[0].image, plain.image);
    }

    #[test]
    fn warp_tiling_is_functionally_neutral_and_changes_grouping() {
        let scene = SceneId::Party.build(3);
        let linear = GpuConfig::small(2);
        let mut tiled = GpuConfig::small(2);
        tiled.warp_tiling = crate::config::WarpTiling::Tiled8x4;
        let a = Simulation::new(&scene, &linear, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 16, 16)
            .unwrap();
        let b = Simulation::new(&scene, &tiled, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 16, 16)
            .unwrap();
        // Per-pixel results do not depend on warp membership...
        assert_eq!(a.image, b.image);
        // ...but the grouping genuinely differs (timing diverges).
        assert_ne!(
            (a.cycles, a.mem.l1.accesses),
            (b.cycles, b.mem.l1.accesses),
            "tiling should change the access pattern"
        );
    }

    #[test]
    fn tiled_warps_cover_every_pixel_once_even_when_ragged() {
        // 10x6 image with 8x4 tiles: ragged right and top edges.
        let scene = SceneId::Wknd.build(2);
        let mut cfg = GpuConfig::small(2);
        cfg.warp_tiling = crate::config::WarpTiling::Tiled8x4;
        let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 10, 6)
            .unwrap();
        let reference = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 10, 6)
            .unwrap();
        assert_eq!(r.image, reference.image, "every pixel shaded exactly once");
    }

    #[test]
    fn energy_report_is_consistent() {
        let r = run(
            SceneId::Wknd,
            TraversalPolicy::Baseline,
            ShaderKind::PathTrace,
            8,
        );
        assert!(r.energy.total_j() > 0.0);
        assert!(r.energy.avg_power_w() > 0.0);
        assert_eq!(r.energy.cycles, r.cycles);
    }

    #[test]
    fn disabling_node_elimination_is_functionally_neutral_but_wasteful() {
        // Car: a dense overlapping blob where min_thit pruning bites.
        // (At tiny detail levels pruning never fires, so use detail 8.)
        let scene = SceneId::Car.build(8);
        let with = GpuConfig::small(2);
        let mut without = GpuConfig::small(2);
        without.node_elimination = false;
        let a = Simulation::new(&scene, &with, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 16, 16)
            .unwrap();
        let b = Simulation::new(&scene, &without, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 16, 16)
            .unwrap();
        assert_eq!(a.image, b.image, "pruning must not change results");
        assert!(
            b.events.triangle_tests > a.events.triangle_tests,
            "without pruning, more primitives are tested ({} vs {})",
            b.events.triangle_tests,
            a.events.triangle_tests
        );
        assert!(b.cycles >= a.cycles);
    }

    #[test]
    fn bfs_traversal_is_functionally_identical() {
        // §4.2: cooperative traversal extends to BFS over a queue; the
        // closest hit is order-independent.
        let scene = SceneId::Crnvl.build(2);
        let dfs_cfg = GpuConfig::small(2);
        let mut bfs_cfg = GpuConfig::small(2);
        bfs_cfg.traversal_order = crate::config::TraversalOrder::Bfs;
        let reference = Simulation::new(&scene, &dfs_cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let r = Simulation::new(&scene, &bfs_cfg, policy)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap();
            assert_eq!(r.image, reference.image, "BFS under {policy:?}");
        }
    }

    #[test]
    fn bfs_explores_more_nodes_than_dfs() {
        // BFS cannot exploit the near-to-far ordering that makes DFS
        // pruning effective, so it visits at least as many nodes.
        let scene = SceneId::Car.build(6);
        let dfs_cfg = GpuConfig::small(2);
        let mut bfs_cfg = GpuConfig::small(2);
        bfs_cfg.traversal_order = crate::config::TraversalOrder::Bfs;
        let dfs = Simulation::new(&scene, &dfs_cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        let bfs = Simulation::new(&scene, &bfs_cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        assert!(
            bfs.events.triangle_tests >= dfs.events.triangle_tests,
            "bfs {} vs dfs {}",
            bfs.events.triangle_tests,
            dfs.events.triangle_tests
        );
    }

    #[test]
    fn compaction_is_functionally_identical() {
        // Wald-style per-bounce compaction re-packs live threads into
        // new warps; pixel results must be untouched.
        for kind in [ShaderKind::PathTrace, ShaderKind::AmbientOcclusion] {
            let scene = SceneId::Crnvl.build(2);
            let plain = GpuConfig::small(2);
            let mut compact = GpuConfig::small(2);
            compact.compaction = true;
            let a = Simulation::new(&scene, &plain, TraversalPolicy::Baseline)
                .run_frame(kind, 10, 10)
                .unwrap();
            let b = Simulation::new(&scene, &compact, TraversalPolicy::Baseline)
                .run_frame(kind, 10, 10)
                .unwrap();
            assert_eq!(a.image, b.image, "{kind:?}");
        }
    }

    #[test]
    fn compaction_composes_with_cooprt() {
        let scene = SceneId::Fox.build(2);
        let mut cfg = GpuConfig::small(2);
        cfg.compaction = true;
        let base = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        let both = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        assert_eq!(base.image, both.image);
        assert!(both.cycles > 0);
    }

    #[test]
    fn compaction_issues_fewer_trace_instructions() {
        // In a divergent open scene most threads die after a few
        // bounces; with compaction the later waves contain almost no
        // inactive lanes, so the inactive status fraction drops.
        let scene = SceneId::Crnvl.build(6);
        let mut plain = GpuConfig::small(2);
        plain.sample_interval = 50; // dense sampling for a small frame
        let mut compact = plain.clone();
        compact.compaction = true;
        let a = Simulation::new(&scene, &plain, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 40, 40)
            .unwrap();
        let b = Simulation::new(&scene, &compact, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 40, 40)
            .unwrap();
        assert_eq!(a.image, b.image);
        // Re-packing live threads into dense warps means fewer
        // trace_ray instructions carry the same set of rays.
        assert!(
            b.events.trace_instructions < a.events.trace_instructions,
            "compaction must issue fewer trace instructions: {} vs {}",
            b.events.trace_instructions,
            a.events.trace_instructions
        );
    }

    #[test]
    fn intersection_predictor_is_functionally_neutral() {
        // Predicted primitives are *verified* by a real intersection
        // test, so results never change — for closest-hit the seed is a
        // true hit; for any-hit any verified hit is a valid answer.
        for kind in [
            ShaderKind::PathTrace,
            ShaderKind::AmbientOcclusion,
            ShaderKind::Shadow,
        ] {
            let scene = SceneId::Bath.build(2);
            let plain = GpuConfig::small(2);
            let mut pred = GpuConfig::small(2);
            pred.intersection_predictor = true;
            let a = Simulation::new(&scene, &plain, TraversalPolicy::Baseline)
                .run_frame(kind, 8, 8)
                .unwrap();
            let b = Simulation::new(&scene, &pred, TraversalPolicy::Baseline)
                .run_frame(kind, 8, 8)
                .unwrap();
            assert_eq!(a.image, b.image, "{kind:?}");
        }
    }

    #[test]
    fn intersection_predictor_helps_coherent_shadow_rays() {
        // AO/SH secondary rays are localized and coherent — the
        // predictor's home turf (§8.2). It must cut traversal work.
        let scene = SceneId::Bath.build(6);
        let plain = GpuConfig::small(2);
        let mut pred = GpuConfig::small(2);
        pred.intersection_predictor = true;
        let a = Simulation::new(&scene, &plain, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::AmbientOcclusion, 16, 16)
            .unwrap();
        let b = Simulation::new(&scene, &pred, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::AmbientOcclusion, 16, 16)
            .unwrap();
        assert_eq!(a.image, b.image);
        assert!(
            b.events.box_tests < a.events.box_tests,
            "verified predictions skip traversals: {} vs {} box tests",
            b.events.box_tests,
            a.events.box_tests
        );
    }

    #[test]
    fn ray_path_predictor_is_functionally_neutral() {
        // Ray-path prediction redirects any-hit traversals to a
        // predicted entry node; the go-up-level fallback restores
        // full-tree coverage, so occlusion answers — and therefore
        // images — are bitwise identical under both policies. PT is
        // closest-hit only and must be untouched too.
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            for kind in [
                ShaderKind::PathTrace,
                ShaderKind::AmbientOcclusion,
                ShaderKind::Shadow,
            ] {
                let scene = SceneId::Bath.build(2);
                let plain = GpuConfig::small(2);
                let pred = GpuConfig::small(2).with_predict(PredictPolicy::RayPath);
                let a = Simulation::new(&scene, &plain, policy)
                    .run_frame(kind, 8, 8)
                    .unwrap();
                let b = Simulation::new(&scene, &pred, policy)
                    .run_frame(kind, 8, 8)
                    .unwrap();
                assert_eq!(a.image, b.image, "{policy:?} {kind:?}");
            }
        }
    }

    #[test]
    fn ray_path_predictor_learns_and_saves_fetches() {
        // Coherent AO rays hit the same occluders; after warm-up the
        // table supplies entry nodes a few levels down, so predicted
        // hits land without refetching the skipped ancestors.
        let scene = SceneId::Bath.build(6);
        let cfg = GpuConfig::small(2).with_predict(PredictPolicy::RayPath);
        let f = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::AmbientOcclusion, 16, 16)
            .unwrap();
        let p = &f.predictor;
        assert!(p.path_lookups > 0, "any-hit rays must consult the table");
        assert!(p.path_updates > 0, "accepted occluders must train it");
        assert!(
            p.path_candidates > 0 && p.path_entry_hits > 0,
            "coherent AO rays must produce entry hits ({} candidates, {} hits)",
            p.path_candidates,
            p.path_entry_hits
        );
        assert!(
            p.node_fetches_saved > 0,
            "entry hits must translate into saved ancestor fetches"
        );
        // The predictor bills its table accesses to the energy model.
        assert_eq!(f.events.predict_lookups, p.path_lookups + p.path_updates);
        // Off leaves the whole family at zero.
        let off = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
            .run_frame(ShaderKind::AmbientOcclusion, 16, 16)
            .unwrap();
        assert_eq!(off.predictor.path_lookups, 0);
        assert_eq!(off.events.predict_lookups, 0);
    }

    #[test]
    fn ray_path_predictor_composes_with_reorder_and_intersection() {
        // All three front-end/RT-unit speculation axes at once must
        // still render the reference image.
        let scene = SceneId::Fox.build(3);
        let mut stacked = GpuConfig::small(2)
            .with_predict(PredictPolicy::RayPath)
            .with_reorder(crate::ReorderPolicy::Morton);
        stacked.intersection_predictor = true;
        let a = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::Shadow, 12, 12)
            .unwrap();
        let b = Simulation::new(&scene, &stacked, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::Shadow, 12, 12)
            .unwrap();
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn predictors_are_neutral_on_equal_t_ties() {
        // Doubled geometry: every surface is two coincident triangles,
        // so each hit ties at identical t between two primitive indices
        // and the traversal-order-independent accept filter (lowest
        // index wins at equal t) decides every pixel. Speculation —
        // which changes visit order and seeds min_thit — must not be
        // able to flip the winner.
        use cooprt_math::{Aabb, Rgb, Vec3};
        use cooprt_scenes::{Camera, Material, SceneBuilder};
        let cam = Camera::look_at(Vec3::new(0.0, 2.0, 12.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0);
        let tris = cooprt_scenes::scatter_clutter(
            Aabb::new(Vec3::new(-6.0, 0.5, -6.0), Vec3::new(6.0, 5.0, 6.0)),
            30,
            0.3..0.8,
            11,
        );
        let mut doubled = tris.clone();
        doubled.extend(tris); // exact duplicates => equal-t ties
        let scene = SceneBuilder::new("equal-t-ties", cam)
            .push(
                doubled,
                Material::Lambertian {
                    albedo: Rgb::splat(0.7),
                },
            )
            .build();
        for kind in [ShaderKind::PathTrace, ShaderKind::Shadow] {
            let plain = GpuConfig::small(2);
            let mut spec = GpuConfig::small(2).with_predict(PredictPolicy::RayPath);
            spec.intersection_predictor = true;
            let a = Simulation::new(&scene, &plain, TraversalPolicy::CoopRt)
                .run_frame(kind, 10, 10)
                .unwrap();
            let b = Simulation::new(&scene, &spec, TraversalPolicy::CoopRt)
                .run_frame(kind, 10, 10)
                .unwrap();
            assert_eq!(a.image, b.image, "{kind:?}");
        }
    }

    #[test]
    fn zero_predictor_entries_rejected() {
        let scene = SceneId::Wknd.build(1);
        let mut cfg = GpuConfig::small(1);
        cfg.intersection_predictor = true;
        cfg.predictor_entries = 0;
        let sim = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline);
        assert_eq!(
            sim.run_frame(ShaderKind::PathTrace, 8, 8).unwrap_err(),
            ConfigError::ZeroPredictorEntries
        );
        assert_eq!(
            sim.run_accumulated(ShaderKind::PathTrace, 8, 8, 1)
                .unwrap_err(),
            ConfigError::ZeroPredictorEntries
        );
        // The ray-path axis guards the same knob.
        let mut path = GpuConfig::small(1).with_predict(PredictPolicy::RayPath);
        path.predictor_entries = 0;
        assert_eq!(
            Simulation::new(&scene, &path, TraversalPolicy::Baseline)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap_err(),
            ConfigError::ZeroPredictorEntries
        );
        // With both predictors off the knob is ignored.
        let mut off = GpuConfig::small(1);
        off.predictor_entries = 0;
        assert!(Simulation::new(&scene, &off, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .is_ok());
        assert_eq!(
            ConfigError::ZeroPredictorEntries.to_string(),
            "the predictor needs at least one table entry"
        );
    }

    #[test]
    fn prefetching_is_functionally_neutral_and_issues_requests() {
        let scene = SceneId::Fox.build(3);
        let plain = GpuConfig::small(2);
        let mut pf = GpuConfig::small(2);
        pf.prefetch_children = true;
        let a = Simulation::new(&scene, &plain, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        let b = Simulation::new(&scene, &pf, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        assert_eq!(a.image, b.image, "prefetching must not change results");
        assert_eq!(a.mem.prefetches, 0);
        assert!(
            b.mem.prefetches > 0,
            "prefetcher should have issued requests"
        );
    }

    #[test]
    fn subwarp_scheduling_modes_perform_similarly() {
        // §7.5: "both approaches would perform similarly, as the latency
        // of a trace_ray instruction is on the order of thousands of
        // cycles" — and they must agree functionally.
        let scene = SceneId::Fox.build(3);
        let all = GpuConfig::small(2).with_subwarp(8);
        let mut one = GpuConfig::small(2).with_subwarp(8);
        one.subwarp_mode = crate::config::SubwarpMode::OneGroup;
        let ra = Simulation::new(&scene, &all, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        let ro = Simulation::new(&scene, &one, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 10, 10)
            .unwrap();
        assert_eq!(ra.image, ro.image);
        let ratio = ro.cycles as f64 / ra.cycles as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "modes should perform similarly, got {ratio:.2} ({} vs {})",
            ro.cycles,
            ra.cycles
        );
    }

    #[test]
    fn steal_position_and_lbu_rate_preserve_results() {
        let scene = SceneId::Party.build(2);
        let reference = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        let mut bottom = GpuConfig::small(2);
        bottom.steal_from = crate::config::StealPosition::Bottom;
        let mut fast_lbu = GpuConfig::small(2);
        fast_lbu.lbu_moves_per_cycle = 4;
        for cfg in [bottom, fast_lbu] {
            let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
                .run_frame(ShaderKind::PathTrace, 8, 8)
                .unwrap();
            assert_eq!(r.image, reference.image);
        }
    }

    #[test]
    fn empty_frame_rejected() {
        let scene = SceneId::Wknd.build(1);
        let cfg = GpuConfig::small(1);
        let sim = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline);
        assert_eq!(
            sim.run_frame(ShaderKind::PathTrace, 0, 8).unwrap_err(),
            ConfigError::EmptyFrame {
                width: 0,
                height: 8
            }
        );
        assert_eq!(
            sim.run_frame(ShaderKind::PathTrace, 8, 0).unwrap_err(),
            ConfigError::EmptyFrame {
                width: 8,
                height: 0
            }
        );
        assert_eq!(
            sim.run_accumulated(ShaderKind::PathTrace, 0, 8, 1)
                .unwrap_err(),
            ConfigError::EmptyFrame {
                width: 0,
                height: 8
            }
        );
    }

    #[test]
    fn reorder_is_functionally_neutral_and_changes_grouping() {
        // Reordering permutes warp membership (timing), never results.
        let scene = SceneId::Party.build(3);
        let plain = GpuConfig::small(2);
        let reference = Simulation::new(&scene, &plain, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 16, 16)
            .unwrap();
        assert_eq!(reference.reorder, crate::reorder::ReorderStats::default());
        for policy in [
            crate::ReorderPolicy::Morton,
            crate::ReorderPolicy::OctantHash,
        ] {
            for traversal in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
                let cfg = GpuConfig::small(2).with_reorder(policy);
                let r = Simulation::new(&scene, &cfg, traversal)
                    .run_frame(ShaderKind::PathTrace, 16, 16)
                    .unwrap();
                assert_eq!(r.image, reference.image, "{policy:?}/{traversal:?}");
                assert_eq!(r.reorder.passes, 1);
                assert_eq!(r.reorder.keys_computed, 256);
                // Primary rays share the camera origin, so Morton keys
                // collapse into one bucket at the first wave (a stable
                // no-op); the octant-major key separates directions and
                // must genuinely re-pack the warps.
                if policy == crate::ReorderPolicy::OctantHash {
                    assert!(r.reorder.rays_moved > 0, "{policy:?} must actually sort");
                }
            }
        }
    }

    #[test]
    fn reorder_composes_with_compaction_tiling_and_shaders() {
        let scene = SceneId::Crnvl.build(2);
        let reference = Simulation::new(&scene, &GpuConfig::small(2), TraversalPolicy::Baseline)
            .run_frame(ShaderKind::AmbientOcclusion, 10, 10)
            .unwrap();
        let mut cfg = GpuConfig::small(2).with_reorder(crate::ReorderPolicy::Morton);
        cfg.compaction = true;
        cfg.warp_tiling = crate::config::WarpTiling::Tiled8x4;
        let r = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::AmbientOcclusion, 10, 10)
            .unwrap();
        assert_eq!(r.image, reference.image);
        // Compaction re-forms warps between waves; each wave reorders,
        // and secondary-ray origins scatter enough for Morton to move
        // rays for real.
        assert!(r.reorder.passes > 1, "got {} passes", r.reorder.passes);
        assert!(r.reorder.rays_moved > 0);
        assert!(r.reorder.avg_bucket_occupancy() >= 1.0);
    }

    #[test]
    fn reorder_is_deterministic() {
        let scene = SceneId::Fox.build(2);
        let cfg = GpuConfig::small(2).with_reorder(crate::ReorderPolicy::OctantHash);
        let a = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 12, 12)
            .unwrap();
        let b = Simulation::new(&scene, &cfg, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 12, 12)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.image, b.image);
        assert_eq!(a.reorder, b.reorder);
    }

    #[test]
    fn zero_reorder_buckets_rejected() {
        let scene = SceneId::Wknd.build(1);
        let mut cfg = GpuConfig::small(1).with_reorder(crate::ReorderPolicy::Morton);
        cfg.reorder_buckets = 0;
        let sim = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline);
        assert_eq!(
            sim.run_frame(ShaderKind::PathTrace, 8, 8).unwrap_err(),
            ConfigError::ZeroReorderBuckets
        );
        assert_eq!(
            sim.run_accumulated(ShaderKind::PathTrace, 8, 8, 1)
                .unwrap_err(),
            ConfigError::ZeroReorderBuckets
        );
        // Off ignores the bucket knob entirely.
        let mut off = GpuConfig::small(1);
        off.reorder_buckets = 0;
        assert!(Simulation::new(&scene, &off, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .is_ok());
        assert_eq!(
            ConfigError::ZeroReorderBuckets.to_string(),
            "ray reordering needs at least one sort bucket"
        );
    }

    #[test]
    fn zero_spp_rejected() {
        let scene = SceneId::Wknd.build(1);
        let cfg = GpuConfig::small(1);
        let sim = Simulation::new(&scene, &cfg, TraversalPolicy::Baseline);
        assert_eq!(
            sim.run_accumulated(ShaderKind::PathTrace, 8, 8, 0)
                .unwrap_err(),
            ConfigError::ZeroSamples
        );
        // The error type carries a human-readable message.
        assert_eq!(
            ConfigError::ZeroSamples.to_string(),
            "need at least one sample per pixel"
        );
    }
}
