//! Unified metrics registry: one report aggregating every statistics
//! family the simulator produces.
//!
//! Each subsystem already keeps its own counters — [`MemStats`] for the
//! cache/DRAM hierarchy, [`EnergyEvents`]/[`EnergyReport`] for the power
//! model, [`StallBreakdown`] and [`TraceLatencies`] in the engine,
//! [`PredictorStats`] for the node predictor. This module snapshots all
//! of them from a [`FrameResult`] into a single hierarchical
//! [`MetricsReport`], serialized to a versioned JSON document through
//! the shared [`JsonWriter`] (the same writer the bench harness uses).
//!
//! The report also carries the engine's interval samples
//! ([`IntervalSeries`]) — AerialVision-style time series of the
//! thread-status mix, cache hit counters, DRAM traffic and warp-buffer
//! occupancy — plus optional host-side wall-clock spans from a
//! [`Profiler`].
//!
//! Counter-reset semantics: every counter in a [`FrameResult`] is
//! per-frame *by construction* — `Simulation::run_frame` builds a fresh
//! `Engine` (and with it a fresh `MemoryHierarchy`, energy-event set and
//! latency collection) for every frame, so nothing carries over between
//! frames and nothing needs an explicit reset. Two identical frames
//! therefore produce identical reports, which
//! `metrics_report::identical_frames_report_identical_metrics` enforces.

use crate::engine::{FrameResult, IntervalSeries, StallBreakdown};
use crate::latency::TraceLatencies;
use crate::predictor::PredictorStats;
use crate::reorder::ReorderStats;
use cooprt_gpu::{EnergyEvents, EnergyReport, MemStats};
use cooprt_telemetry::{JsonWriter, Profiler};

/// Version of the metrics JSON schema emitted by [`MetricsReport::to_json`].
///
/// Bump on any structural change (renamed/removed keys, changed units).
/// v2 added `simt_efficiency` and the `reorder` counter object.
/// v3 added the ray-path family (`stale`, `path_*`,
/// `node_fetches_saved`) to the `predictor` object.
pub const METRICS_SCHEMA_VERSION: u32 = 3;

/// Latency-distribution summary of the per-`trace_ray` samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of retired `trace_ray` instructions.
    pub count: usize,
    /// Mean latency, cycles.
    pub mean: f64,
    /// Median latency, cycles.
    pub p50: u64,
    /// 90th-percentile latency, cycles.
    pub p90: u64,
    /// 99th-percentile latency, cycles.
    pub p99: u64,
    /// Maximum latency, cycles.
    pub max: u64,
    /// `p99 / p50` skew measure.
    pub tail_ratio: f64,
}

impl LatencySummary {
    /// Summarizes a latency collection (clones it: quantile queries sort).
    pub fn from(latencies: &TraceLatencies) -> Self {
        let mut l = latencies.clone();
        LatencySummary {
            count: l.len(),
            mean: l.mean(),
            p50: l.quantile(0.5),
            p90: l.quantile(0.9),
            p99: l.quantile(0.99),
            max: l.max(),
            tail_ratio: l.tail_ratio(),
        }
    }
}

/// All metrics of one simulated frame, snapshotted from a [`FrameResult`].
#[derive(Clone, Debug)]
pub struct FrameMetrics {
    /// Caller-chosen label (e.g. `"crnvl/coop"`).
    pub label: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Rays traced.
    pub rays: u64,
    /// Image width, pixels.
    pub width: usize,
    /// Image height, pixels.
    pub height: usize,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// Energy-event counters.
    pub events: EnergyEvents,
    /// Energy/power summary.
    pub energy: EnergyReport,
    /// Warp-issue stall breakdown.
    pub stalls: StallBreakdown,
    /// Node-predictor counters.
    pub predictor: PredictorStats,
    /// Per-`trace_ray` latency distribution summary.
    pub latency: LatencySummary,
    /// Latency of the slowest warp, cycles.
    pub slowest_warp_cycles: u64,
    /// Fraction of cycles any DRAM channel was busy.
    pub dram_utilization: f64,
    /// Mean active lanes per `trace_ray` issue over the 32-lane warp
    /// width ([`FrameResult::simt_efficiency`]).
    pub simt_efficiency: f64,
    /// Ray-reordering pass counters (all zero with reordering off).
    pub reorder: ReorderStats,
    /// Interval-sampled time series (cumulative counters per sample).
    pub intervals: IntervalSeries,
}

impl FrameMetrics {
    /// Snapshots every statistics family of a finished frame.
    pub fn from_frame(label: &str, frame: &FrameResult) -> Self {
        FrameMetrics {
            label: label.to_string(),
            cycles: frame.cycles,
            rays: frame.rays,
            width: frame.width,
            height: frame.height,
            mem: frame.mem,
            events: frame.events,
            energy: frame.energy,
            stalls: frame.stalls,
            predictor: frame.predictor,
            latency: LatencySummary::from(&frame.trace_latencies),
            slowest_warp_cycles: frame.slowest_warp_cycles,
            dram_utilization: frame.dram_utilization,
            simt_efficiency: frame.simt_efficiency(),
            reorder: frame.reorder,
            intervals: frame.intervals.clone(),
        }
    }
}

/// The unified metrics report: every statistics family, one JSON document.
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    /// Report title (scene, configuration, ...).
    pub title: String,
    /// Per-frame metric snapshots.
    pub frames: Vec<FrameMetrics>,
    /// Host-side wall-clock spans (name, seconds).
    pub host_spans: Vec<(String, f64)>,
}

impl MetricsReport {
    /// Creates an empty report with the given title.
    pub fn new(title: &str) -> Self {
        MetricsReport {
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Snapshots a finished frame's statistics under `label`.
    pub fn add_frame(&mut self, label: &str, frame: &FrameResult) {
        self.frames.push(FrameMetrics::from_frame(label, frame));
    }

    /// Folds a host-side profiler's spans into the report.
    pub fn add_profiler(&mut self, profiler: &Profiler) {
        for span in profiler.spans() {
            self.host_spans.push((span.name.clone(), span.secs));
        }
    }

    /// Serializes the report as a versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("schema_version", u64::from(METRICS_SCHEMA_VERSION));
        w.field_str("title", &self.title);
        w.begin_array("frames");
        for f in &self.frames {
            w.begin_object();
            write_frame(&mut w, f);
            w.end_object();
        }
        w.end_array();
        w.begin_array("host_spans");
        for (name, secs) in &self.host_spans {
            w.begin_inline_object();
            w.field_str("name", name);
            w.field_f64("secs", *secs, 6);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

fn write_frame(w: &mut JsonWriter, f: &FrameMetrics) {
    w.field_str("label", &f.label);
    w.field_u64("cycles", f.cycles);
    w.field_u64("rays", f.rays);
    w.field_u64("width", f.width as u64);
    w.field_u64("height", f.height as u64);
    w.field_u64("slowest_warp_cycles", f.slowest_warp_cycles);
    w.field_f64("dram_utilization", f.dram_utilization, 6);
    w.field_f64("simt_efficiency", f.simt_efficiency, 6);

    w.begin_inline_object_field("reorder");
    w.field_u64("passes", f.reorder.passes);
    w.field_u64("keys_computed", f.reorder.keys_computed);
    w.field_u64("rays_moved", f.reorder.rays_moved);
    w.field_u64("bucket_occupancy_sum", f.reorder.bucket_occupancy_sum);
    w.field_u64("buckets", f.reorder.buckets);
    w.end_object();

    w.begin_object_field("memory");
    w.begin_inline_object_field("l1");
    w.field_u64("accesses", f.mem.l1.accesses);
    w.field_u64("hits", f.mem.l1.hits);
    w.end_object();
    w.begin_inline_object_field("l2");
    w.field_u64("accesses", f.mem.l2.accesses);
    w.field_u64("hits", f.mem.l2.hits);
    w.end_object();
    w.begin_inline_object_field("l1_mshr");
    w.field_u64("allocations", f.mem.l1_mshr.allocations);
    w.field_u64("merges", f.mem.l1_mshr.merges);
    w.end_object();
    w.begin_inline_object_field("l2_mshr");
    w.field_u64("allocations", f.mem.l2_mshr.allocations);
    w.field_u64("merges", f.mem.l2_mshr.merges);
    w.end_object();
    w.begin_inline_object_field("dram");
    w.field_u64("requests", f.mem.dram.requests);
    w.field_u64("bytes", f.mem.dram.bytes);
    w.field_u64("busy_cycles", f.mem.dram.busy_cycles);
    w.end_object();
    w.field_u64("l2_bytes", f.mem.l2_bytes);
    w.field_u64("dram_bytes", f.mem.dram_bytes);
    w.field_u64("prefetches", f.mem.prefetches);
    w.end_object();

    w.begin_object_field("energy");
    w.begin_inline_object_field("events");
    w.field_u64("box_tests", f.events.box_tests);
    w.field_u64("triangle_tests", f.events.triangle_tests);
    w.field_u64("stack_ops", f.events.stack_ops);
    w.field_u64("lbu_moves", f.events.lbu_moves);
    w.field_u64("scheduler_ops", f.events.scheduler_ops);
    w.field_u64("trace_instructions", f.events.trace_instructions);
    w.end_object();
    w.field_f64("dynamic_j", f.energy.dynamic_j, 9);
    w.field_f64("static_j", f.energy.static_j, 9);
    w.field_f64("total_j", f.energy.total_j(), 9);
    w.field_f64("avg_power_w", f.energy.avg_power_w(), 6);
    w.field_f64("edp", f.energy.edp(), 12);
    w.end_object();

    w.begin_inline_object_field("stalls");
    w.field_u64("rt", f.stalls.rt);
    w.field_u64("mem", f.stalls.mem);
    w.field_u64("alu", f.stalls.alu);
    w.field_u64("sfu", f.stalls.sfu);
    w.end_object();

    w.begin_inline_object_field("predictor");
    w.field_u64("lookups", f.predictor.lookups);
    w.field_u64("candidates", f.predictor.candidates);
    w.field_u64("stale", f.predictor.stale);
    w.field_u64("verified", f.predictor.verified);
    w.field_u64("updates", f.predictor.updates);
    w.field_u64("path_lookups", f.predictor.path_lookups);
    w.field_u64("path_candidates", f.predictor.path_candidates);
    w.field_u64("path_stale", f.predictor.path_stale);
    w.field_u64("path_updates", f.predictor.path_updates);
    w.field_u64("path_entry_hits", f.predictor.path_entry_hits);
    w.field_u64("path_go_up_steps", f.predictor.path_go_up_steps);
    w.field_u64("node_fetches_saved", f.predictor.node_fetches_saved);
    w.end_object();

    w.begin_inline_object_field("trace_latency");
    w.field_u64("count", f.latency.count as u64);
    w.field_f64("mean", f.latency.mean, 2);
    w.field_u64("p50", f.latency.p50);
    w.field_u64("p90", f.latency.p90);
    w.field_u64("p99", f.latency.p99);
    w.field_u64("max", f.latency.max);
    w.field_f64("tail_ratio", f.latency.tail_ratio, 3);
    w.end_object();

    w.begin_object_field("time_series");
    w.field_u64("interval", f.intervals.interval);
    w.begin_array("samples");
    for s in &f.intervals.samples {
        w.begin_inline_object();
        w.field_u64("cycle", s.cycle);
        w.field_u64("busy", s.busy as u64);
        w.field_u64("waiting", s.waiting as u64);
        w.field_u64("inactive", s.inactive as u64);
        w.field_u64("warp_slots_occupied", s.warp_slots_occupied as u64);
        w.field_u64("l1_accesses", s.l1_accesses);
        w.field_u64("l1_hits", s.l1_hits);
        w.field_u64("l2_accesses", s.l2_accesses);
        w.field_u64("l2_hits", s.l2_hits);
        w.field_u64("dram_bytes", s.dram_bytes);
        w.field_u64("dram_busy_cycles", s.dram_busy_cycles);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuConfig, ShaderKind, Simulation, TraversalPolicy};
    use cooprt_scenes::SceneId;
    use cooprt_telemetry::parse_json;

    fn frame() -> FrameResult {
        let scene = SceneId::Crnvl.build(2);
        let config = GpuConfig::small(1);
        Simulation::new(&scene, &config, TraversalPolicy::CoopRt)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap()
    }

    #[test]
    fn report_serializes_every_stats_family() {
        let f = frame();
        let mut report = MetricsReport::new("unit");
        report.add_frame("crnvl/coop", &f);
        let json = report.to_json();
        let doc = parse_json(&json).expect("metrics JSON must parse");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_f64()),
            Some(f64::from(METRICS_SCHEMA_VERSION))
        );
        let frames = match doc.get("frames") {
            Some(cooprt_telemetry::JsonValue::Array(a)) => a,
            other => panic!("frames must be an array, got {other:?}"),
        };
        assert_eq!(frames.len(), 1);
        let fr = &frames[0];
        for key in [
            "label",
            "cycles",
            "rays",
            "memory",
            "energy",
            "stalls",
            "predictor",
            "trace_latency",
            "time_series",
            "simt_efficiency",
            "reorder",
        ] {
            assert!(fr.get(key).is_some(), "frame is missing {key}");
        }
        assert_eq!(
            fr.get("cycles").and_then(|v| v.as_f64()),
            Some(f.cycles as f64)
        );
        let mem = fr.get("memory").unwrap();
        assert_eq!(
            mem.get("l1")
                .and_then(|l1| l1.get("accesses"))
                .and_then(|v| v.as_f64()),
            Some(f.mem.l1.accesses as f64)
        );
        let pred = fr.get("predictor").unwrap();
        for key in [
            "lookups",
            "candidates",
            "stale",
            "verified",
            "updates",
            "path_lookups",
            "path_candidates",
            "path_stale",
            "path_updates",
            "path_entry_hits",
            "path_go_up_steps",
            "node_fetches_saved",
        ] {
            assert!(pred.get(key).is_some(), "predictor is missing {key}");
        }
    }

    #[test]
    fn time_series_carries_interval_samples() {
        let f = frame();
        assert!(
            !f.intervals.samples.is_empty(),
            "engine must record interval samples"
        );
        let last = f.intervals.samples.last().unwrap();
        // Counters are cumulative: the final sample must agree with the
        // frame totals from the same hierarchy.
        assert!(last.l1_accesses <= f.mem.l1.accesses);
        assert!(last.dram_bytes <= f.mem.dram_bytes);
        let mut report = MetricsReport::new("series");
        report.add_frame("f", &f);
        let doc = parse_json(&report.to_json()).unwrap();
        let samples = doc
            .get("frames")
            .and_then(|v| match v {
                cooprt_telemetry::JsonValue::Array(a) => a.first(),
                _ => None,
            })
            .and_then(|fr| fr.get("time_series"))
            .and_then(|ts| ts.get("samples"));
        match samples {
            Some(cooprt_telemetry::JsonValue::Array(a)) => {
                assert_eq!(a.len(), f.intervals.samples.len())
            }
            other => panic!("samples must be an array, got {other:?}"),
        }
    }

    #[test]
    fn reorder_counters_and_simt_efficiency_flow_into_the_report() {
        let scene = SceneId::Crnvl.build(2);
        let mut config = GpuConfig::small(1);
        config.reorder = crate::ReorderPolicy::Morton;
        config.compaction = true;
        let f = Simulation::new(&scene, &config, TraversalPolicy::Baseline)
            .run_frame(ShaderKind::PathTrace, 8, 8)
            .unwrap();
        assert!(f.reorder.passes >= 1, "at least the first wave reorders");
        assert!(f.simt_efficiency() > 0.0 && f.simt_efficiency() <= 1.0);
        let mut report = MetricsReport::new("reorder");
        report.add_frame("crnvl/morton", &f);
        let doc = parse_json(&report.to_json()).unwrap();
        let fr = match doc.get("frames") {
            Some(cooprt_telemetry::JsonValue::Array(a)) => &a[0],
            other => panic!("frames must be an array, got {other:?}"),
        };
        let re = fr.get("reorder").expect("reorder object");
        assert_eq!(
            re.get("keys_computed").and_then(|v| v.as_f64()),
            Some(f.reorder.keys_computed as f64)
        );
        assert_eq!(
            re.get("rays_moved").and_then(|v| v.as_f64()),
            Some(f.reorder.rays_moved as f64)
        );
        assert_eq!(
            fr.get("simt_efficiency").map(|v| v.as_f64().unwrap() > 0.0),
            Some(true)
        );
    }

    #[test]
    fn host_spans_fold_into_the_report() {
        let mut p = Profiler::new();
        p.record("bvh_build", 0.25);
        p.record("frame_run", 1.5);
        let mut report = MetricsReport::new("spans");
        report.add_profiler(&p);
        let doc = parse_json(&report.to_json()).unwrap();
        match doc.get("host_spans") {
            Some(cooprt_telemetry::JsonValue::Array(a)) => {
                assert_eq!(a.len(), 2);
                assert_eq!(a[0].get("name").and_then(|v| v.as_str()), Some("bvh_build"));
            }
            other => panic!("host_spans must be an array, got {other:?}"),
        }
    }
}
