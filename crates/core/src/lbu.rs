//! The Load Balancing Unit (§5.2).
//!
//! The LBU is the heart of CoopRT: each cycle it pairs one idle (helper)
//! thread with one busy (main) thread and moves the node at the main's
//! top-of-stack into the helper's stack. In hardware it is two priority
//! encoders plus multiplexors (Fig. 8); this module implements exactly
//! that combinational function over thread-status bitmasks, so the
//! simulator and the area model share one definition.
//!
//! With the subwarp scheme (§7.5, first approach) the warp is divided
//! into fixed groups of `subwarp_size` threads and each group gets its
//! own pair of (smaller) priority encoders — all groups are processed in
//! the same cycle.

use crate::config::WARP_SIZE;

/// A single helper/main pairing produced by the LBU in one cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LbuPair {
    /// Thread that offers help (empty traversal stack).
    pub helper: usize,
    /// Thread that needs help (non-empty stack, TOS not in flight).
    pub main: usize,
}

/// The pairings of one LBU cycle, as a fixed-capacity inline list.
///
/// The LBU produces at most one pair per subwarp, and the smallest
/// subwarp (4 threads) gives `WARP_SIZE / 4` groups — so the list lives
/// on the stack and [`find_pairs`], which runs up to several times per
/// simulated cycle, performs no heap allocation. Dereferences to
/// `[LbuPair]` for indexing and iteration.
#[derive(Clone, Copy, Debug)]
pub struct LbuPairs {
    pairs: [LbuPair; WARP_SIZE / 4],
    len: usize,
}

impl LbuPairs {
    const EMPTY: LbuPairs = LbuPairs {
        pairs: [LbuPair { helper: 0, main: 0 }; WARP_SIZE / 4],
        len: 0,
    };

    /// A list holding exactly `pair` (the subwarp scheduler's
    /// one-group-per-cycle mode).
    pub fn single(pair: LbuPair) -> Self {
        let mut pairs = Self::EMPTY;
        pairs.push(pair);
        pairs
    }

    fn push(&mut self, pair: LbuPair) {
        debug_assert!(self.len < self.pairs.len(), "one pair per subwarp");
        self.pairs[self.len] = pair;
        self.len += 1;
    }

    /// The pairs as a slice.
    pub fn as_slice(&self) -> &[LbuPair] {
        &self.pairs[..self.len]
    }
}

impl std::ops::Deref for LbuPairs {
    type Target = [LbuPair];

    fn deref(&self) -> &[LbuPair] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a LbuPairs {
    type Item = &'a LbuPair;
    type IntoIter = std::slice::Iter<'a, LbuPair>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Finds up to one helper/main pair per subwarp.
///
/// `can_help` and `needs_help` are 32-bit thread masks; bit `i` set means
/// thread `i` satisfies the condition. Within each subwarp the two
/// priority encoders pick the lowest-numbered eligible thread each, as
/// the hardware in Fig. 8 does. A thread is never paired with itself
/// (the masks are disjoint by construction: an empty stack cannot also
/// be non-empty).
///
/// # Panics
///
/// Panics if `subwarp_size` does not evenly divide the warp
/// (must be 4, 8, 16 or 32).
///
/// # Examples
///
/// ```
/// use cooprt_core::lbu::find_pairs;
///
/// // Thread 0 is busy; threads 5 and 9 are idle. Whole-warp scope:
/// let pairs = find_pairs(0b10_0010_0000, 0b1, 32);
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].helper, 5); // lowest-numbered idle thread
/// assert_eq!(pairs[0].main, 0);
/// ```
pub fn find_pairs(can_help: u32, needs_help: u32, subwarp_size: usize) -> LbuPairs {
    assert!(
        subwarp_size > 0 && WARP_SIZE.is_multiple_of(subwarp_size),
        "subwarp size must divide the warp (got {subwarp_size})"
    );
    debug_assert_eq!(
        can_help & needs_help,
        0,
        "a thread cannot both help and need help"
    );
    let mut pairs = LbuPairs::EMPTY;
    if can_help == 0 || needs_help == 0 {
        return pairs;
    }
    let groups = WARP_SIZE / subwarp_size;
    for g in 0..groups {
        let base = g * subwarp_size;
        let mask = if subwarp_size == 32 {
            u32::MAX
        } else {
            ((1u32 << subwarp_size) - 1) << base
        };
        let helpers = can_help & mask;
        let mains = needs_help & mask;
        if helpers != 0 && mains != 0 {
            pairs.push(LbuPair {
                helper: helpers.trailing_zeros() as usize,
                main: mains.trailing_zeros() as usize,
            });
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_work_no_pairs() {
        assert!(find_pairs(0, 0, 32).is_empty());
        assert!(find_pairs(u32::MAX, 0, 32).is_empty());
        assert!(find_pairs(0, u32::MAX, 32).is_empty());
    }

    #[test]
    fn whole_warp_picks_lowest_of_each() {
        let pairs = find_pairs(0b1100_0000, 0b0011_0000, 32);
        assert_eq!(pairs.as_slice(), &[LbuPair { helper: 6, main: 4 }]);
    }

    #[test]
    fn whole_warp_yields_at_most_one_pair() {
        let pairs = find_pairs(0xFFFF_0000, 0x0000_FFFF, 32);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn subwarps_pair_independently() {
        // Subwarp size 8: group 0 (t0..7), group 1 (t8..15), ...
        // Group 0: helper 1, main 2. Group 2: helper 17, main 20.
        let can = (1 << 1) | (1 << 17);
        let needs = (1 << 2) | (1 << 20);
        let pairs = find_pairs(can, needs, 8);
        assert_eq!(
            pairs.as_slice(),
            &[
                LbuPair { helper: 1, main: 2 },
                LbuPair {
                    helper: 17,
                    main: 20
                }
            ]
        );
    }

    #[test]
    fn subwarp_boundary_blocks_cooperation() {
        // Helper in group 0, main in group 1: with subwarp scope 16 they
        // cannot pair; with whole-warp scope they can.
        let can = 1 << 3;
        let needs = 1 << 20;
        assert!(find_pairs(can, needs, 16).is_empty());
        assert_eq!(find_pairs(can, needs, 32).len(), 1);
    }

    #[test]
    fn four_subwarps_of_8_can_produce_four_pairs() {
        let can = 0x0101_0101; // thread 0 of each group
        let needs = 0x0202_0202; // thread 1 of each group
        let pairs = find_pairs(can, needs, 8);
        assert_eq!(pairs.len(), 4);
        for (g, p) in pairs.iter().enumerate() {
            assert_eq!(p.helper, g * 8);
            assert_eq!(p.main, g * 8 + 1);
        }
    }

    #[test]
    fn smallest_subwarp_scope() {
        let can = 1 << 0;
        let needs = 1 << 3;
        assert_eq!(
            find_pairs(can, needs, 4).as_slice(),
            &[LbuPair { helper: 0, main: 3 }]
        );
        // Main just outside the 4-thread group: no pair.
        assert!(find_pairs(can, 1 << 4, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "subwarp size")]
    fn rejects_non_dividing_subwarp() {
        let _ = find_pairs(0, 0, 5);
    }
}
