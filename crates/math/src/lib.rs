//! Geometry kernel for the CoopRT reproduction.
//!
//! This crate provides the numeric foundation that every other crate in the
//! workspace builds on: 3-component vectors ([`Vec3`]), rays ([`Ray`]),
//! axis-aligned bounding boxes ([`Aabb`]) with the slab intersection test
//! used by RT-unit hardware, triangles ([`Triangle`]) with the
//! Möller–Trumbore intersection test, orthonormal bases ([`Onb`]) for
//! cosine-weighted scattering, and a small color type ([`Rgb`]).
//!
//! Everything is `f32`, matching the precision of the GPU hardware the
//! CoopRT paper models.
//!
//! # Examples
//!
//! ```
//! use cooprt_math::{Aabb, Ray, Vec3};
//!
//! let bbox = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
//! let ray = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::new(0.0, 0.0, 1.0));
//! let hit = bbox.intersect(&ray, f32::INFINITY);
//! assert_eq!(hit, Some(1.0));
//! ```

mod aabb;
mod color;
mod image;
mod onb;
mod ray;
mod sampling;
mod triangle;
mod vec3;

pub use aabb::Aabb;
pub use color::Rgb;
pub use image::Image;
pub use onb::Onb;
pub use ray::Ray;
pub use sampling::{cosine_hemisphere, unit_disk, unit_sphere};
pub use triangle::{Triangle, TriangleHit};
pub use vec3::Vec3;

/// Epsilon used to pad degenerate bounding boxes and reject grazing
/// triangle hits, mirroring the tolerance used by GPU traversal hardware.
pub const GEOM_EPSILON: f32 = 1.0e-6;
