//! Deterministic sampling routines used by the shader drivers.

use crate::Vec3;
use rand::{Rng, RngExt};

/// Samples a uniformly distributed point inside the unit sphere.
///
/// Used to perturb Lambertian scatter directions, matching the reference
/// path tracer ("Ray Tracing in One Weekend" style) that RayTracingInVulkan
/// — the paper's workload — derives from.
pub fn unit_sphere<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    loop {
        let p = Vec3::new(
            rng.random_range(-1.0f32..1.0),
            rng.random_range(-1.0f32..1.0),
            rng.random_range(-1.0f32..1.0),
        );
        if p.length_squared() < 1.0 && p.length_squared() > 1e-12 {
            return p;
        }
    }
}

/// Samples a uniformly distributed point inside the unit disk (z = 0).
///
/// Used for thin-lens camera defocus.
pub fn unit_disk<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    loop {
        let p = Vec3::new(
            rng.random_range(-1.0f32..1.0),
            rng.random_range(-1.0f32..1.0),
            0.0,
        );
        if p.length_squared() < 1.0 {
            return p;
        }
    }
}

/// Samples a cosine-weighted direction on the +Z hemisphere
/// (local/tangent space). Transform with [`crate::Onb::to_world`].
pub fn cosine_hemisphere<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    let r1: f32 = rng.random();
    let r2: f32 = rng.random();
    let phi = 2.0 * std::f32::consts::PI * r1;
    let sqrt_r2 = r2.sqrt();
    Vec3::new(
        phi.cos() * sqrt_r2,
        phi.sin() * sqrt_r2,
        (1.0f32 - r2).sqrt(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_sphere_points_are_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let p = unit_sphere(&mut rng);
            assert!(p.length_squared() < 1.0);
        }
    }

    #[test]
    fn unit_disk_points_are_planar_and_inside() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let p = unit_disk(&mut rng);
            assert_eq!(p.z, 0.0);
            assert!(p.length_squared() < 1.0);
        }
    }

    #[test]
    fn cosine_hemisphere_points_upward_and_unit() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let d = cosine_hemisphere(&mut rng);
            assert!(d.z >= 0.0);
            assert!((d.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(unit_sphere(&mut a), unit_sphere(&mut b));
        }
    }

    #[test]
    fn cosine_hemisphere_mean_is_biased_toward_pole() {
        // E[cos theta] = 2/3 for cosine-weighted sampling.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4000;
        let mean_z: f32 = (0..n).map(|_| cosine_hemisphere(&mut rng).z).sum::<f32>() / n as f32;
        assert!((mean_z - 2.0 / 3.0).abs() < 0.03, "mean z = {mean_z}");
    }
}
