//! Linear RGB color.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A linear-space RGB color with `f32` channels.
///
/// # Examples
///
/// ```
/// use cooprt_math::Rgb;
///
/// let c = Rgb::new(0.5, 0.25, 1.0) * 2.0;
/// assert_eq!(c, Rgb::new(1.0, 0.5, 2.0));
/// assert_eq!(c.clamped().b, 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Rgb {
    /// Red channel.
    pub r: f32,
    /// Green channel.
    pub g: f32,
    /// Blue channel.
    pub b: f32,
}

impl Rgb {
    /// Pure black (all channels zero).
    pub const BLACK: Rgb = Rgb {
        r: 0.0,
        g: 0.0,
        b: 0.0,
    };
    /// Pure white (all channels one).
    pub const WHITE: Rgb = Rgb {
        r: 1.0,
        g: 1.0,
        b: 1.0,
    };

    /// Creates a color from its channels.
    #[inline]
    pub const fn new(r: f32, g: f32, b: f32) -> Self {
        Rgb { r, g, b }
    }

    /// Creates a gray color with all channels equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Rgb { r: v, g: v, b: v }
    }

    /// Channel-wise product (filter/attenuation).
    #[inline]
    pub fn attenuate(self, other: Rgb) -> Rgb {
        Rgb {
            r: self.r * other.r,
            g: self.g * other.g,
            b: self.b * other.b,
        }
    }

    /// Perceptual luminance (Rec. 709 weights).
    #[inline]
    pub fn luminance(self) -> f32 {
        0.2126 * self.r + 0.7152 * self.g + 0.0722 * self.b
    }

    /// Clamps every channel to `[0, 1]`.
    #[inline]
    pub fn clamped(self) -> Rgb {
        Rgb {
            r: self.r.clamp(0.0, 1.0),
            g: self.g.clamp(0.0, 1.0),
            b: self.b.clamp(0.0, 1.0),
        }
    }

    /// Converts to 8-bit sRGB (gamma 2.0, matching the reference tracer).
    pub fn to_srgb8(self) -> [u8; 3] {
        let c = self.clamped();
        [
            (c.r.sqrt() * 255.0) as u8,
            (c.g.sqrt() * 255.0) as u8,
            (c.b.sqrt() * 255.0) as u8,
        ]
    }
}

impl Add for Rgb {
    type Output = Rgb;
    #[inline]
    fn add(self, rhs: Rgb) -> Rgb {
        Rgb {
            r: self.r + rhs.r,
            g: self.g + rhs.g,
            b: self.b + rhs.b,
        }
    }
}

impl AddAssign for Rgb {
    #[inline]
    fn add_assign(&mut self, rhs: Rgb) {
        *self = *self + rhs;
    }
}

impl Mul<f32> for Rgb {
    type Output = Rgb;
    #[inline]
    fn mul(self, rhs: f32) -> Rgb {
        Rgb {
            r: self.r * rhs,
            g: self.g * rhs,
            b: self.b * rhs,
        }
    }
}

impl Sum for Rgb {
    fn sum<I: Iterator<Item = Rgb>>(iter: I) -> Rgb {
        iter.fold(Rgb::BLACK, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Rgb::new(0.1, 0.2, 0.3);
        let b = Rgb::new(0.4, 0.5, 0.6);
        let c = a + b;
        assert!((c.r - 0.5).abs() < 1e-6);
        assert_eq!(a * 2.0, Rgb::new(0.2, 0.4, 0.6));
        let mut d = Rgb::BLACK;
        d += Rgb::WHITE;
        assert_eq!(d, Rgb::WHITE);
    }

    #[test]
    fn attenuate_is_channelwise() {
        let filter = Rgb::new(1.0, 0.5, 0.0);
        let light = Rgb::splat(0.8);
        assert_eq!(light.attenuate(filter), Rgb::new(0.8, 0.4, 0.0));
    }

    #[test]
    fn luminance_weights_sum_to_one() {
        assert!((Rgb::WHITE.luminance() - 1.0).abs() < 1e-4);
        assert_eq!(Rgb::BLACK.luminance(), 0.0);
    }

    #[test]
    fn clamp_and_srgb() {
        let c = Rgb::new(2.0, -1.0, 0.25);
        assert_eq!(c.clamped(), Rgb::new(1.0, 0.0, 0.25));
        let px = c.to_srgb8();
        assert_eq!(px[0], 255);
        assert_eq!(px[1], 0);
        assert_eq!(px[2], 127); // sqrt(0.25) * 255
    }

    #[test]
    fn sum_accumulates() {
        let total: Rgb = (0..4).map(|_| Rgb::splat(0.25)).sum();
        assert!((total.r - 1.0).abs() < 1e-6);
    }
}
