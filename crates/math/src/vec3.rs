//! Three-component `f32` vector.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A three-component single-precision vector used for points, directions
/// and colors throughout the workspace.
///
/// # Examples
///
/// ```
/// use cooprt_math::Vec3;
///
/// let v = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(v.length(), 3.0);
/// assert_eq!(v.normalized().length(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    ///
    /// ```
    /// # use cooprt_math::Vec3;
    /// assert_eq!(Vec3::splat(2.0), Vec3::new(2.0, 2.0, 2.0));
    /// ```
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns this vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector has (near-)zero length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 0.0, "cannot normalize a zero-length vector");
        self / len
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.min(rhs.x),
            y: self.y.min(rhs.y),
            z: self.z.min(rhs.z),
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.max(rhs.x),
            y: self.y.max(rhs.y),
            z: self.z.max(rhs.z),
        }
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x * rhs.x,
            y: self.y * rhs.y,
            z: self.z * rhs.z,
        }
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Index (0, 1 or 2) of the largest component.
    ///
    /// ```
    /// # use cooprt_math::Vec3;
    /// assert_eq!(Vec3::new(0.0, 5.0, 1.0).max_axis(), 1);
    /// ```
    #[inline]
    pub fn max_axis(self) -> usize {
        if self.x >= self.y && self.x >= self.z {
            0
        } else if self.y >= self.z {
            1
        } else {
            2
        }
    }

    /// Linear interpolation: `self * (1 - t) + rhs * t`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self * (1.0 - t) + rhs * t
    }

    /// Reflects this direction about a unit normal `n`.
    #[inline]
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// True if the vector is nearly zero in every component.
    #[inline]
    pub fn near_zero(self) -> bool {
        const EPS: f32 = 1.0e-8;
        self.x.abs() < EPS && self.y.abs() < EPS && self.z.abs() < EPS
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3 {
            x: self.x.abs(),
            y: self.y.abs(),
            z: self.z.abs(),
        }
    }

    /// Component-wise reciprocal, used to precompute ray slab divisions.
    ///
    /// Zero components produce `±inf`, which the slab test handles per
    /// IEEE-754 semantics.
    #[inline]
    pub fn recip(self) -> Vec3 {
        Vec3 {
            x: 1.0 / self.x,
            y: 1.0 / self.y,
            z: 1.0 / self.z,
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Accesses a component by axis index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
            z: self.z + rhs.z,
        }
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
            z: self.z - rhs.z,
        }
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3 {
            x: self.x * rhs,
            y: self.y * rhs,
            z: self.z * rhs,
        }
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3 {
            x: self.x / rhs,
            y: self.y / rhs,
            z: self.z / rhs,
        }
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3 {
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).y, 2.0);
        assert_eq!(Vec3::splat(4.0), Vec3::new(4.0, 4.0, 4.0));
        assert_eq!(Vec3::ZERO + Vec3::ONE, Vec3::ONE);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::ONE;
        v += Vec3::ONE;
        assert_eq!(v, Vec3::splat(2.0));
        v -= Vec3::ONE;
        assert_eq!(v, Vec3::ONE);
        v *= 3.0;
        assert_eq!(v, Vec3::splat(3.0));
        v /= 3.0;
        assert_eq!(v, Vec3::ONE);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        // Cross product is perpendicular to both operands.
        let u = Vec3::new(1.0, 2.0, 3.0);
        let w = Vec3::new(-2.0, 0.5, 4.0);
        let c = u.cross(w);
        assert!(c.dot(u).abs() < 1e-5);
        assert!(c.dot(w).abs() < 1e-5);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_and_axes() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 6.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), 1.0);
        assert_eq!(a.max_axis(), 1);
        assert_eq!(Vec3::new(9.0, 5.0, 3.0).max_axis(), 0);
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).max_axis(), 2);
    }

    #[test]
    fn reflect_preserves_length() {
        let d = Vec3::new(1.0, -1.0, 0.0).normalized();
        let n = Vec3::Y;
        let r = d.reflect(n);
        assert!((r.length() - 1.0).abs() < 1e-6);
        assert!((r.y - (-d.y)).abs() < 1e-6);
        assert!((r.x - d.x).abs() < 1e-6);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::ZERO;
        let b = Vec3::splat(10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(5.0));
    }

    #[test]
    fn indexing() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn conversions() {
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        let a: [f32; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn recip_handles_zero() {
        let r = Vec3::new(2.0, 0.0, -4.0).recip();
        assert_eq!(r.x, 0.5);
        assert!(r.y.is_infinite());
        assert_eq!(r.z, -0.25);
    }

    #[test]
    fn sum_of_vectors() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f32)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }

    #[test]
    fn near_zero_and_finite() {
        assert!(Vec3::splat(1e-9).near_zero());
        assert!(!Vec3::X.near_zero());
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
    }
}
