//! Triangles and the Möller–Trumbore intersection test.

use crate::{Aabb, Ray, Vec3, GEOM_EPSILON};

/// A triangle primitive, the leaf geometry of the BVH.
///
/// # Examples
///
/// ```
/// use cooprt_math::{Ray, Triangle, Vec3};
///
/// let tri = Triangle::new(
///     Vec3::new(0.0, 0.0, 0.0),
///     Vec3::new(1.0, 0.0, 0.0),
///     Vec3::new(0.0, 1.0, 0.0),
/// );
/// let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::Z);
/// let hit = tri.intersect(&ray, f32::INFINITY).expect("should hit");
/// assert!((hit.t - 1.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub v0: Vec3,
    /// Second vertex.
    pub v1: Vec3,
    /// Third vertex.
    pub v2: Vec3,
}

/// Result of a ray/triangle intersection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriangleHit {
    /// Hit distance along the ray.
    pub t: f32,
    /// Barycentric coordinate along the `v0 -> v1` edge.
    pub u: f32,
    /// Barycentric coordinate along the `v0 -> v2` edge.
    pub v: f32,
}

impl Triangle {
    /// Creates a triangle from three vertices.
    #[inline]
    pub const fn new(v0: Vec3, v1: Vec3, v2: Vec3) -> Self {
        Triangle { v0, v1, v2 }
    }

    /// Bounding box of the triangle, padded along degenerate axes so that
    /// axis-aligned triangles still form valid slabs.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            self.v0.min(self.v1).min(self.v2),
            self.v0.max(self.v1).max(self.v2),
        )
        .padded()
    }

    /// Centroid (average of the three vertices), used for SAH binning.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.v0 + self.v1 + self.v2) / 3.0
    }

    /// Geometric (unnormalized direction, unit length) normal.
    ///
    /// Orientation follows the right-hand rule over `(v1-v0, v2-v0)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for degenerate (zero-area) triangles.
    #[inline]
    pub fn normal(&self) -> Vec3 {
        (self.v1 - self.v0).cross(self.v2 - self.v0).normalized()
    }

    /// Twice the triangle's area (cheap degeneracy check).
    #[inline]
    pub fn double_area(&self) -> f32 {
        (self.v1 - self.v0).cross(self.v2 - self.v0).length()
    }

    /// Möller–Trumbore ray/triangle intersection, as performed by the RT
    /// unit's ray-triangle units.
    ///
    /// Returns the hit with `GEOM_EPSILON < t < t_max`, if any. Backfacing
    /// triangles are reported too (no culling), matching the behaviour of
    /// hardware closest-hit queries.
    ///
    /// The parallel-ray rejection is *scale-aware*: `det = e1 · (d × e2)`
    /// grows quadratically with the triangle's linear scale, so an
    /// absolute cutoff would silently reject well-conditioned hits on
    /// small geometry (and accept ill-conditioned ones on large). The
    /// cutoff instead compares `det` against `GEOM_EPSILON · |e1| · |d×e2|`
    /// — the cosine of the angle between `e1` and `d × e2` — which is
    /// invariant under uniform scaling of the triangle (and of the scene,
    /// since ray directions are unit length). Compared squared to stay
    /// square-root free.
    #[inline]
    pub fn intersect(&self, ray: &Ray, t_max: f32) -> Option<TriangleHit> {
        let e1 = self.v1 - self.v0;
        let e2 = self.v2 - self.v0;
        let p = ray.dir.cross(e2);
        let det = e1.dot(p);
        if det * det < GEOM_EPSILON * GEOM_EPSILON * e1.length_squared() * p.length_squared() {
            return None; // Ray (near-)parallel to triangle plane.
        }
        let inv_det = 1.0 / det;
        let s = ray.orig - self.v0;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.dir.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if t > GEOM_EPSILON && t < t_max {
            Some(TriangleHit { t, u, v })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_triangle() -> Triangle {
        Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)
    }

    #[test]
    fn hit_inside() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
        let h = t.intersect(&r, f32::INFINITY).unwrap();
        assert!((h.t - 1.0).abs() < 1e-6);
        assert!((h.u - 0.2).abs() < 1e-6);
        assert!((h.v - 0.2).abs() < 1e-6);
    }

    #[test]
    fn miss_outside_barycentric_range() {
        let t = xy_triangle();
        // Point (0.9, 0.9) lies beyond the hypotenuse u+v<=1.
        let r = Ray::new(Vec3::new(0.9, 0.9, -1.0), Vec3::Z);
        assert!(t.intersect(&r, f32::INFINITY).is_none());
        // Negative u.
        let r = Ray::new(Vec3::new(-0.1, 0.5, -1.0), Vec3::Z);
        assert!(t.intersect(&r, f32::INFINITY).is_none());
    }

    #[test]
    fn backface_hits_are_reported() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.2, 0.2, 1.0), -Vec3::Z);
        assert!(t.intersect(&r, f32::INFINITY).is_some());
    }

    #[test]
    fn parallel_ray_misses() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.0, 0.0, 1.0), Vec3::X);
        assert!(t.intersect(&r, f32::INFINITY).is_none());
    }

    #[test]
    fn respects_t_max() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.2, 0.2, -2.0), Vec3::Z);
        assert!(t.intersect(&r, 1.0).is_none());
        assert!(t.intersect(&r, 3.0).is_some());
    }

    #[test]
    fn hit_behind_origin_is_rejected() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.2, 0.2, 1.0), Vec3::Z);
        assert!(t.intersect(&r, f32::INFINITY).is_none());
    }

    #[test]
    fn bounds_contain_all_vertices() {
        let t = Triangle::new(
            Vec3::new(-1.0, 2.0, 3.0),
            Vec3::new(4.0, -5.0, 6.0),
            Vec3::new(0.0, 0.0, -2.0),
        );
        let b = t.bounds();
        assert!(b.contains(t.v0));
        assert!(b.contains(t.v1));
        assert!(b.contains(t.v2));
    }

    #[test]
    fn bounds_of_flat_triangle_are_padded() {
        let t = xy_triangle(); // flat in Z
        let b = t.bounds();
        assert!(b.max.z > b.min.z);
    }

    #[test]
    fn normal_and_area() {
        let t = xy_triangle();
        assert_eq!(t.normal(), Vec3::Z);
        assert!((t.double_area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn centroid_is_vertex_average() {
        let t = Triangle::new(
            Vec3::ZERO,
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        );
        assert_eq!(t.centroid(), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn intersection_is_scale_invariant() {
        // Regression for the absolute det cutoff: det scales with the
        // square of the triangle's linear scale, so the same (triangle,
        // ray) pair uniformly scaled by 1e-3 used to false-miss (det
        // dropped below the absolute epsilon) while the 1e3x copy agreed
        // with the unscaled one. Hit/miss decisions must agree across
        // scales, and barycentrics (scale-free) must match closely.
        let base = Triangle::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        // One clear hit, one clear miss (outside barycentric range), and
        // one oblique grazing-but-valid hit.
        let cases = [
            (Vec3::new(0.25, 0.25, -1.0), Vec3::Z, true),
            (Vec3::new(0.9, 0.9, -1.0), Vec3::Z, false),
            (
                Vec3::new(0.3, 0.3, -1.0),
                Vec3::new(0.1, 0.05, 1.0).normalized(),
                true,
            ),
        ];
        for scale in [1.0e-3f32, 1.0, 1.0e3] {
            let tri = Triangle::new(base.v0 * scale, base.v1 * scale, base.v2 * scale);
            for &(orig, dir, expect_hit) in &cases {
                let r = Ray::new(orig * scale, dir);
                let hit = tri.intersect(&r, f32::INFINITY);
                assert_eq!(
                    hit.is_some(),
                    expect_hit,
                    "scale {scale}: hit/miss decision diverged from the unscaled case"
                );
                if let Some(h) = hit {
                    let unscaled = base.intersect(&Ray::new(orig, dir), f32::INFINITY).unwrap();
                    assert!((h.u - unscaled.u).abs() < 1e-4);
                    assert!((h.v - unscaled.v).abs() < 1e-4);
                    assert!((h.t / scale - unscaled.t).abs() < 1e-3 * unscaled.t.max(1.0));
                }
            }
        }
    }

    #[test]
    fn degenerate_triangle_never_hits() {
        // Zero-area triangles make det == 0 with |e1||p| == 0, so the
        // scale-aware cutoff (0 < 0) does not fire; the NaN/inf fallout
        // must still be rejected by the barycentric and t range checks.
        let line = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::X * 2.0);
        let point = Triangle::new(Vec3::ONE, Vec3::ONE, Vec3::ONE);
        for dir in [Vec3::Z, Vec3::X, Vec3::new(1.0, 1.0, 1.0).normalized()] {
            let r = Ray::new(Vec3::new(0.5, 0.0, -1.0), dir);
            assert!(line.intersect(&r, f32::INFINITY).is_none());
            assert!(point.intersect(&r, f32::INFINITY).is_none());
        }
    }

    #[test]
    fn nan_direction_ray_never_hits() {
        // A NaN direction (the release-build fallout of a zero-length
        // Ray::new) must fall out of Möller–Trumbore as a miss: every
        // comparison against the NaN determinant/barycentrics is false,
        // so the range checks reject. Query code uses Ray::probe (unit
        // +X) instead; this pins that the degenerate case is a clean
        // None, never a bogus hit or a panic.
        let t = xy_triangle();
        let nan = Ray {
            orig: Vec3::new(0.2, 0.2, -1.0),
            dir: Vec3::splat(f32::NAN),
            inv_dir: Vec3::splat(f32::NAN),
        };
        assert!(t.intersect(&nan, f32::INFINITY).is_none());
    }

    #[test]
    fn probe_ray_with_epsilon_t_max_hits_nothing() {
        // The epsilon-ray convention: a probe with t_max at the epsilon
        // scale cannot produce triangle hits (Möller–Trumbore requires
        // GEOM_EPSILON < t < t_max), so gather-style queries that rely
        // purely on containment never see spurious intersections.
        let t = xy_triangle();
        let probe = Ray::probe(Vec3::new(0.2, 0.2, 0.0));
        assert!(t.intersect(&probe, 1.0e-4).is_none());
    }

    #[test]
    fn hit_point_lies_on_triangle_plane() {
        let t = Triangle::new(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        );
        let r = Ray::new(Vec3::ZERO, Vec3::splat(1.0));
        let h = t.intersect(&r, f32::INFINITY).unwrap();
        let p = r.at(h.t);
        // Plane x + y + z = 1.
        assert!((p.x + p.y + p.z - 1.0).abs() < 1e-5);
    }
}
