//! Triangles and the Möller–Trumbore intersection test.

use crate::{Aabb, Ray, Vec3, GEOM_EPSILON};

/// A triangle primitive, the leaf geometry of the BVH.
///
/// # Examples
///
/// ```
/// use cooprt_math::{Ray, Triangle, Vec3};
///
/// let tri = Triangle::new(
///     Vec3::new(0.0, 0.0, 0.0),
///     Vec3::new(1.0, 0.0, 0.0),
///     Vec3::new(0.0, 1.0, 0.0),
/// );
/// let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::Z);
/// let hit = tri.intersect(&ray, f32::INFINITY).expect("should hit");
/// assert!((hit.t - 1.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub v0: Vec3,
    /// Second vertex.
    pub v1: Vec3,
    /// Third vertex.
    pub v2: Vec3,
}

/// Result of a ray/triangle intersection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriangleHit {
    /// Hit distance along the ray.
    pub t: f32,
    /// Barycentric coordinate along the `v0 -> v1` edge.
    pub u: f32,
    /// Barycentric coordinate along the `v0 -> v2` edge.
    pub v: f32,
}

impl Triangle {
    /// Creates a triangle from three vertices.
    #[inline]
    pub const fn new(v0: Vec3, v1: Vec3, v2: Vec3) -> Self {
        Triangle { v0, v1, v2 }
    }

    /// Bounding box of the triangle, padded along degenerate axes so that
    /// axis-aligned triangles still form valid slabs.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            self.v0.min(self.v1).min(self.v2),
            self.v0.max(self.v1).max(self.v2),
        )
        .padded()
    }

    /// Centroid (average of the three vertices), used for SAH binning.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.v0 + self.v1 + self.v2) / 3.0
    }

    /// Geometric (unnormalized direction, unit length) normal.
    ///
    /// Orientation follows the right-hand rule over `(v1-v0, v2-v0)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for degenerate (zero-area) triangles.
    #[inline]
    pub fn normal(&self) -> Vec3 {
        (self.v1 - self.v0).cross(self.v2 - self.v0).normalized()
    }

    /// Twice the triangle's area (cheap degeneracy check).
    #[inline]
    pub fn double_area(&self) -> f32 {
        (self.v1 - self.v0).cross(self.v2 - self.v0).length()
    }

    /// Möller–Trumbore ray/triangle intersection, as performed by the RT
    /// unit's ray-triangle units.
    ///
    /// Returns the hit with `GEOM_EPSILON < t < t_max`, if any. Backfacing
    /// triangles are reported too (no culling), matching the behaviour of
    /// hardware closest-hit queries.
    #[inline]
    pub fn intersect(&self, ray: &Ray, t_max: f32) -> Option<TriangleHit> {
        let e1 = self.v1 - self.v0;
        let e2 = self.v2 - self.v0;
        let p = ray.dir.cross(e2);
        let det = e1.dot(p);
        if det.abs() < GEOM_EPSILON {
            return None; // Ray parallel to triangle plane.
        }
        let inv_det = 1.0 / det;
        let s = ray.orig - self.v0;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.dir.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if t > GEOM_EPSILON && t < t_max {
            Some(TriangleHit { t, u, v })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_triangle() -> Triangle {
        Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)
    }

    #[test]
    fn hit_inside() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
        let h = t.intersect(&r, f32::INFINITY).unwrap();
        assert!((h.t - 1.0).abs() < 1e-6);
        assert!((h.u - 0.2).abs() < 1e-6);
        assert!((h.v - 0.2).abs() < 1e-6);
    }

    #[test]
    fn miss_outside_barycentric_range() {
        let t = xy_triangle();
        // Point (0.9, 0.9) lies beyond the hypotenuse u+v<=1.
        let r = Ray::new(Vec3::new(0.9, 0.9, -1.0), Vec3::Z);
        assert!(t.intersect(&r, f32::INFINITY).is_none());
        // Negative u.
        let r = Ray::new(Vec3::new(-0.1, 0.5, -1.0), Vec3::Z);
        assert!(t.intersect(&r, f32::INFINITY).is_none());
    }

    #[test]
    fn backface_hits_are_reported() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.2, 0.2, 1.0), -Vec3::Z);
        assert!(t.intersect(&r, f32::INFINITY).is_some());
    }

    #[test]
    fn parallel_ray_misses() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.0, 0.0, 1.0), Vec3::X);
        assert!(t.intersect(&r, f32::INFINITY).is_none());
    }

    #[test]
    fn respects_t_max() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.2, 0.2, -2.0), Vec3::Z);
        assert!(t.intersect(&r, 1.0).is_none());
        assert!(t.intersect(&r, 3.0).is_some());
    }

    #[test]
    fn hit_behind_origin_is_rejected() {
        let t = xy_triangle();
        let r = Ray::new(Vec3::new(0.2, 0.2, 1.0), Vec3::Z);
        assert!(t.intersect(&r, f32::INFINITY).is_none());
    }

    #[test]
    fn bounds_contain_all_vertices() {
        let t = Triangle::new(
            Vec3::new(-1.0, 2.0, 3.0),
            Vec3::new(4.0, -5.0, 6.0),
            Vec3::new(0.0, 0.0, -2.0),
        );
        let b = t.bounds();
        assert!(b.contains(t.v0));
        assert!(b.contains(t.v1));
        assert!(b.contains(t.v2));
    }

    #[test]
    fn bounds_of_flat_triangle_are_padded() {
        let t = xy_triangle(); // flat in Z
        let b = t.bounds();
        assert!(b.max.z > b.min.z);
    }

    #[test]
    fn normal_and_area() {
        let t = xy_triangle();
        assert_eq!(t.normal(), Vec3::Z);
        assert!((t.double_area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn centroid_is_vertex_average() {
        let t = Triangle::new(
            Vec3::ZERO,
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        );
        assert_eq!(t.centroid(), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn hit_point_lies_on_triangle_plane() {
        let t = Triangle::new(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        );
        let r = Ray::new(Vec3::ZERO, Vec3::splat(1.0));
        let h = t.intersect(&r, f32::INFINITY).unwrap();
        let p = r.at(h.t);
        // Plane x + y + z = 1.
        assert!((p.x + p.y + p.z - 1.0).abs() < 1e-5);
    }
}
