//! Rays with precomputed reciprocal direction for slab tests.

use crate::Vec3;

/// A ray with origin, direction and precomputed reciprocal direction.
///
/// The reciprocal direction (`inv_dir`) is computed once at construction so
/// that the AABB slab test — executed millions of times per frame by the RT
/// unit — needs only multiplies, exactly as the ray/box test hardware does.
///
/// # Examples
///
/// ```
/// use cooprt_math::{Ray, Vec3};
///
/// let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0));
/// // Direction is normalized on construction.
/// assert!((ray.dir.length() - 1.0).abs() < 1e-6);
/// assert_eq!(ray.at(3.0), Vec3::new(0.0, 0.0, 3.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub orig: Vec3,
    /// Unit-length ray direction.
    pub dir: Vec3,
    /// Component-wise reciprocal of `dir`.
    pub inv_dir: Vec3,
}

impl Ray {
    /// Creates a ray, normalizing `dir`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dir` has zero length.
    #[inline]
    pub fn new(orig: Vec3, dir: Vec3) -> Self {
        let dir = dir.normalized();
        Ray {
            orig,
            dir,
            inv_dir: dir.recip(),
        }
    }

    /// Creates a ray from an already-normalized direction.
    ///
    /// Skips the normalization of [`Ray::new`]; the caller must guarantee
    /// `dir` is unit length (checked in debug builds).
    #[inline]
    pub fn from_unit(orig: Vec3, dir: Vec3) -> Self {
        debug_assert!(
            (dir.length() - 1.0).abs() < 1e-4,
            "direction must be unit length"
        );
        Ray {
            orig,
            dir,
            inv_dir: dir.recip(),
        }
    }

    /// Point at parameter `t` along the ray.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.orig + self.dir * t
    }

    /// Canonical *probe ray* for point queries (the "zero-length ray"
    /// convention).
    ///
    /// Spatial queries on RT hardware (RTNN-style neighbor search,
    /// point-in-cell containment) conceptually trace a zero-length ray
    /// at the query point, but a [`Ray`] cannot represent a zero-length
    /// direction: `Ray::new` normalizes and a zero vector has no
    /// direction (debug builds panic; release builds would produce NaN
    /// components, which the slab test degrades on — see the regression
    /// tests). The convention used throughout this workspace instead
    /// keeps the direction *unit length* (`+X`, arbitrarily) and pushes
    /// the "zero length" into the `t` interval: gather-style traversal
    /// tests containment of `orig` and never walks along the ray, and
    /// callers that do intersect bound `t_max` near zero. This keeps
    /// `inv_dir` finite on one axis and the slab test well-conditioned.
    #[inline]
    pub fn probe(orig: Vec3) -> Self {
        Ray::from_unit(orig, Vec3::X)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_direction() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 10.0, 0.0));
        assert_eq!(r.dir, Vec3::Y);
        assert_eq!(r.inv_dir.y, 1.0);
    }

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::X);
        assert_eq!(r.at(0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(2.5), Vec3::new(3.5, 0.0, 0.0));
    }

    #[test]
    fn inv_dir_matches_reciprocal() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 2.0, -2.0));
        let d = r.dir;
        assert!((r.inv_dir.x - 1.0 / d.x).abs() < 1e-6);
        assert!((r.inv_dir.y - 1.0 / d.y).abs() < 1e-6);
        assert!((r.inv_dir.z - 1.0 / d.z).abs() < 1e-6);
    }

    #[test]
    fn axis_aligned_ray_has_infinite_inv_components() {
        let r = Ray::new(Vec3::ZERO, Vec3::Z);
        assert!(r.inv_dir.x.is_infinite());
        assert!(r.inv_dir.y.is_infinite());
        assert_eq!(r.inv_dir.z, 1.0);
    }

    #[test]
    fn probe_is_a_unit_ray_anchored_at_the_query_point() {
        let q = Vec3::new(1.0, -2.0, 3.0);
        let r = Ray::probe(q);
        assert_eq!(r.orig, q);
        assert_eq!(r.dir, Vec3::X);
        assert!((r.dir.length() - 1.0).abs() < 1e-6);
        // The probe never moves off its origin at t = 0.
        assert_eq!(r.at(0.0), q);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn zero_length_direction_panics_in_debug() {
        // The documented convention: zero-length rays are *not*
        // representable; use Ray::probe + a t bound instead.
        let _ = Ray::new(Vec3::ZERO, Vec3::ZERO);
    }
}
