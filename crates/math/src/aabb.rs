//! Axis-aligned bounding boxes and the slab intersection test.

use crate::{Ray, Vec3, GEOM_EPSILON};

/// An axis-aligned bounding box, the building block of the BVH.
///
/// # Examples
///
/// ```
/// use cooprt_math::{Aabb, Vec3};
///
/// let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
/// let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
/// let joined = a.union(&b);
/// assert_eq!(joined.min, Vec3::ZERO);
/// assert_eq!(joined.max, Vec3::splat(2.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its two corners.
    ///
    /// Corners may be passed in any order; they are sorted per component.
    #[inline]
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The "empty" box: `min = +inf`, `max = -inf`.
    ///
    /// Acts as the identity element of [`Aabb::union`]:
    /// `empty.union(&b) == b`.
    #[inline]
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// True if this is the empty box (no point contained).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Smallest box containing this box and the point `p`.
    #[inline]
    pub fn union_point(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Extent along each axis (`max - min`).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Center point of the box.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Surface area; the quantity minimized by the SAH builder.
    ///
    /// Returns `0.0` for empty boxes.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// True if `p` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True if the two boxes overlap (share any point).
    #[inline]
    pub fn overlaps(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Returns a copy padded by `GEOM_EPSILON` along any degenerate
    /// (zero-extent) axis so the slab test stays well-conditioned for
    /// axis-aligned geometry such as ground planes.
    #[inline]
    pub fn padded(&self) -> Aabb {
        let mut min = self.min;
        let mut max = self.max;
        if max.x - min.x < GEOM_EPSILON {
            min.x -= GEOM_EPSILON;
            max.x += GEOM_EPSILON;
        }
        if max.y - min.y < GEOM_EPSILON {
            min.y -= GEOM_EPSILON;
            max.y += GEOM_EPSILON;
        }
        if max.z - min.z < GEOM_EPSILON {
            min.z -= GEOM_EPSILON;
            max.z += GEOM_EPSILON;
        }
        Aabb { min, max }
    }

    /// Ray/box slab intersection test, as performed by the RT unit's
    /// ray-box units.
    ///
    /// Returns the entry distance `t` (clamped to `0`) if the ray hits the
    /// box within `[0, t_max]`, or `None` otherwise. A ray starting inside
    /// the box reports `Some(0.0)`. The box is treated as *closed*: a ray
    /// travelling exactly in the plane of a face (origin on the face,
    /// direction component zero) counts as a hit, consistently on both the
    /// scalar path and the wide-BVH traversal path, which share this
    /// function. [`Aabb::empty`] (and any box inverted along some axis)
    /// never hits: without this guard the per-slab sort would flip the
    /// inverted interval `(+inf, -inf)` into the unconstrained
    /// `(-inf, +inf)` and report a hit at `t = 0` for every ray.
    ///
    /// ```
    /// # use cooprt_math::{Aabb, Ray, Vec3};
    /// let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
    /// let r = Ray::new(Vec3::new(0.5, 0.5, -2.0), Vec3::Z);
    /// assert_eq!(b.intersect(&r, f32::INFINITY), Some(2.0));
    /// assert_eq!(b.intersect(&r, 1.0), None); // beyond t_max
    /// assert_eq!(Aabb::empty().intersect(&r, f32::INFINITY), None);
    /// ```
    #[inline]
    pub fn intersect(&self, ray: &Ray, t_max: f32) -> Option<f32> {
        if self.is_empty() {
            return None;
        }
        let (lo_x, hi_x) = slab_interval(self.min.x, self.max.x, ray.orig.x, ray.inv_dir.x);
        let (lo_y, hi_y) = slab_interval(self.min.y, self.max.y, ray.orig.y, ray.inv_dir.y);
        let (lo_z, hi_z) = slab_interval(self.min.z, self.max.z, ray.orig.z, ray.inv_dir.z);
        let t_enter = lo_x.max(lo_y).max(lo_z).max(0.0);
        let t_exit = hi_x.min(hi_y).min(hi_z).min(t_max);
        if t_enter <= t_exit {
            Some(t_enter)
        } else {
            None
        }
    }
}

/// Entry/exit parameters of a ray against one slab.
///
/// `0 * inf` (origin exactly on a slab plane, direction parallel to it)
/// produces NaN under IEEE-754; in that case the origin lies *on* the
/// closed slab's boundary, so the slab constrains nothing and the interval
/// is `(-inf, inf)`.
///
/// This reduction is only correct for non-inverted slabs (`min <= max`,
/// guaranteed by the `is_empty` guard in [`Aabb::intersect`]). For those,
/// a NaN lane implies the origin coincides with a slab bound while the
/// direction is parallel, i.e. the ray really does stay inside the closed
/// slab forever; the non-NaN cases (origin strictly outside a slab it
/// travels parallel to) yield two same-signed infinities, whose sorted
/// interval is empty as required.
#[inline]
fn slab_interval(min: f32, max: f32, orig: f32, inv: f32) -> (f32, f32) {
    let t0 = (min - orig) * inv;
    let t1 = (max - orig) * inv;
    if t0.is_nan() || t1.is_nan() {
        return (f32::NEG_INFINITY, f32::INFINITY);
    }
    if t0 <= t1 {
        (t0, t1)
    } else {
        (t1, t0)
    }
}

impl Default for Aabb {
    /// The default box is [`Aabb::empty`].
    fn default() -> Self {
        Aabb::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn new_sorts_corners() {
        let b = Aabb::new(Vec3::ONE, Vec3::ZERO);
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::ONE);
    }

    #[test]
    fn empty_is_union_identity() {
        let b = unit_box();
        assert_eq!(Aabb::empty().union(&b), b);
        assert!(Aabb::empty().is_empty());
        assert!(!b.is_empty());
    }

    #[test]
    fn union_point_grows_box() {
        let b = unit_box().union_point(Vec3::new(2.0, -1.0, 0.5));
        assert_eq!(b.min, Vec3::new(0.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(2.0, 1.0, 1.0));
    }

    #[test]
    fn surface_area_of_unit_cube() {
        assert_eq!(unit_box().surface_area(), 6.0);
        assert_eq!(Aabb::empty().surface_area(), 0.0);
    }

    #[test]
    fn centroid_and_extent() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.centroid(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn contains_and_overlaps() {
        let b = unit_box();
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO)); // boundary counts
        assert!(!b.contains(Vec3::splat(1.1)));
        let other = Aabb::new(Vec3::splat(0.9), Vec3::splat(2.0));
        assert!(b.overlaps(&other));
        let disjoint = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(!b.overlaps(&disjoint));
    }

    #[test]
    fn slab_hit_from_outside() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::Z);
        assert_eq!(b.intersect(&r, f32::INFINITY), Some(1.0));
    }

    #[test]
    fn slab_miss() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(2.0, 2.0, -1.0), Vec3::Z);
        assert_eq!(b.intersect(&r, f32::INFINITY), None);
    }

    #[test]
    fn slab_from_inside_returns_zero() {
        let b = unit_box();
        let r = Ray::new(Vec3::splat(0.5), Vec3::X);
        assert_eq!(b.intersect(&r, f32::INFINITY), Some(0.0));
    }

    #[test]
    fn slab_behind_ray_misses() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.5, 0.5, 2.0), Vec3::Z);
        assert_eq!(b.intersect(&r, f32::INFINITY), None);
    }

    #[test]
    fn slab_respects_t_max() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.5, 0.5, -10.0), Vec3::Z);
        assert_eq!(b.intersect(&r, 5.0), None);
        assert_eq!(b.intersect(&r, 10.0), Some(10.0));
    }

    #[test]
    fn slab_handles_axis_aligned_ray_on_flat_box() {
        // A flat (zero-extent in Y) box hit by a ray travelling in X at the
        // box's Y plane. Padding keeps this robust.
        let b = Aabb::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(4.0, 1.0, 4.0)).padded();
        let r = Ray::new(Vec3::new(-1.0, 1.0, 2.0), Vec3::X);
        assert!(b.intersect(&r, f32::INFINITY).is_some());
    }

    #[test]
    fn slab_negative_direction() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.5, 0.5, 2.0), -Vec3::Z);
        assert_eq!(b.intersect(&r, f32::INFINITY), Some(1.0));
    }

    #[test]
    fn empty_box_never_hits() {
        // Regression: the inverted slab (+inf, -inf) used to sort into the
        // unconstrained (-inf, +inf) on every axis, reporting Some(0.0)
        // for *every* ray against Aabb::empty().
        let e = Aabb::empty();
        let rays = [
            Ray::new(Vec3::ZERO, Vec3::Z),
            Ray::new(Vec3::splat(5.0), -Vec3::X),
            Ray::new(Vec3::new(-3.0, 2.0, 1.0), Vec3::new(1.0, 1.0, 1.0)),
        ];
        for r in &rays {
            assert_eq!(e.intersect(r, f32::INFINITY), None);
        }
        // Partially inverted boxes (empty along one axis) miss too.
        let partial = Aabb {
            min: Vec3::new(0.0, 1.0, 0.0),
            max: Vec3::new(1.0, -1.0, 1.0),
        };
        assert_eq!(partial.intersect(&rays[0], f32::INFINITY), None);
    }

    #[test]
    fn in_plane_ray_hits_zero_thickness_face() {
        // Closed-box convention: a ray whose origin lies exactly on a
        // zero-thickness face and travels in that plane produces 0 * inf
        // = NaN lanes in the slab test; the closed-slab reduction must
        // treat the box as hit (the ray genuinely passes through points
        // of the closed box).
        let flat = Aabb::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(4.0, 1.0, 4.0));
        let r = Ray::new(Vec3::new(-1.0, 1.0, 2.0), Vec3::X);
        assert_eq!(r.inv_dir.y, f32::INFINITY); // the NaN-producing lane
        assert_eq!(flat.intersect(&r, f32::INFINITY), Some(1.0));
        // Same plane but offset origin: parallel ray strictly outside the
        // slab must still miss (same-signed infinities, empty interval).
        let above = Ray::new(Vec3::new(-1.0, 1.5, 2.0), Vec3::X);
        assert_eq!(flat.intersect(&above, f32::INFINITY), None);
    }

    #[test]
    fn nan_direction_ray_degrades_to_unconstrained_slabs() {
        // A NaN direction (what a release-build zero-length Ray::new
        // would produce) poisons every slab into the unconstrained
        // (-inf, inf) reduction: the test reports Some(0.0) against any
        // non-empty box and None against the empty box. This pins the
        // degenerate behaviour so query code can rely on the documented
        // convention (Ray::probe, never a zero/NaN direction) instead.
        let nan = Ray {
            orig: Vec3::splat(0.5),
            dir: Vec3::splat(f32::NAN),
            inv_dir: Vec3::splat(f32::NAN),
        };
        assert_eq!(unit_box().intersect(&nan, f32::INFINITY), Some(0.0));
        assert_eq!(Aabb::empty().intersect(&nan, f32::INFINITY), None);
    }

    #[test]
    fn probe_ray_against_boxes_matches_containment_at_t_zero() {
        // The spatial-query convention: a Ray::probe at q enters any box
        // containing q at t = 0; boxes strictly ahead on +X are still
        // hit (probes that must not walk bound t_max), boxes behind are
        // not.
        let b = unit_box();
        assert_eq!(b.intersect(&Ray::probe(Vec3::splat(0.5)), 1e-4), Some(0.0));
        let ahead = Ray::probe(Vec3::new(-2.0, 0.5, 0.5));
        assert_eq!(b.intersect(&ahead, f32::INFINITY), Some(2.0));
        assert_eq!(b.intersect(&ahead, 1e-4), None);
        let behind = Ray::probe(Vec3::new(3.0, 0.5, 0.5));
        assert_eq!(b.intersect(&behind, f32::INFINITY), None);
    }

    #[test]
    fn origin_on_corner_of_flat_box_counts_as_inside() {
        // Origin exactly on the min corner of a zero-thickness face,
        // travelling along the face: both the degenerate axis and one
        // finite axis produce boundary cases; closed semantics report 0.
        let flat = Aabb::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(4.0, 1.0, 4.0));
        let r = Ray::new(Vec3::new(0.0, 1.0, 2.0), Vec3::X);
        assert_eq!(flat.intersect(&r, f32::INFINITY), Some(0.0));
    }
}
