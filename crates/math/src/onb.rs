//! Orthonormal bases for hemisphere sampling.

use crate::Vec3;

/// An orthonormal basis built around a normal vector.
///
/// Used by the shader drivers to turn canonical hemisphere samples into
/// world-space scatter directions.
///
/// # Examples
///
/// ```
/// use cooprt_math::{Onb, Vec3};
///
/// let onb = Onb::from_w(Vec3::Y);
/// let world = onb.to_world(Vec3::new(0.0, 0.0, 1.0));
/// assert!((world - Vec3::Y).length() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Onb {
    /// First tangent.
    pub u: Vec3,
    /// Second tangent.
    pub v: Vec3,
    /// The input normal (basis "up" direction).
    pub w: Vec3,
}

impl Onb {
    /// Builds a basis whose `w` axis is the (normalized) input vector.
    ///
    /// Uses the branch-free Duff et al. construction, stable for all unit
    /// inputs including the poles.
    pub fn from_w(w: Vec3) -> Self {
        let w = w.normalized();
        let sign = if w.z >= 0.0 { 1.0 } else { -1.0 };
        let a = -1.0 / (sign + w.z);
        let b = w.x * w.y * a;
        let u = Vec3::new(1.0 + sign * w.x * w.x * a, sign * b, -sign * w.x);
        let v = Vec3::new(b, sign + w.y * w.y * a, -w.y);
        Onb { u, v, w }
    }

    /// Transforms a vector from basis coordinates to world coordinates.
    #[inline]
    pub fn to_world(&self, local: Vec3) -> Vec3 {
        self.u * local.x + self.v * local.y + self.w * local.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal(onb: &Onb) {
        assert!(
            (onb.u.length() - 1.0).abs() < 1e-5,
            "u not unit: {:?}",
            onb.u
        );
        assert!(
            (onb.v.length() - 1.0).abs() < 1e-5,
            "v not unit: {:?}",
            onb.v
        );
        assert!(
            (onb.w.length() - 1.0).abs() < 1e-5,
            "w not unit: {:?}",
            onb.w
        );
        assert!(onb.u.dot(onb.v).abs() < 1e-5);
        assert!(onb.u.dot(onb.w).abs() < 1e-5);
        assert!(onb.v.dot(onb.w).abs() < 1e-5);
    }

    #[test]
    fn basis_is_orthonormal_for_cardinal_axes() {
        for w in [Vec3::X, Vec3::Y, Vec3::Z, -Vec3::X, -Vec3::Y, -Vec3::Z] {
            assert_orthonormal(&Onb::from_w(w));
        }
    }

    #[test]
    fn basis_is_orthonormal_for_oblique_axes() {
        for w in [
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-0.3, 0.9, -0.1),
            Vec3::new(0.0, -1.0, 1.0),
        ] {
            assert_orthonormal(&Onb::from_w(w));
        }
    }

    #[test]
    fn to_world_maps_z_to_w() {
        let w = Vec3::new(0.2, -0.5, 0.8).normalized();
        let onb = Onb::from_w(w);
        let mapped = onb.to_world(Vec3::Z);
        assert!((mapped - w).length() < 1e-5);
    }

    #[test]
    fn to_world_preserves_length() {
        let onb = Onb::from_w(Vec3::new(1.0, 1.0, 1.0));
        let local = Vec3::new(0.3, -0.4, 0.5);
        let world = onb.to_world(local);
        assert!((world.length() - local.length()).abs() < 1e-5);
    }
}
