//! Image buffers, PPM encoding and quality metrics.
//!
//! The simulator's output is a linear-RGB framebuffer; this module gives
//! it a home ([`Image`]) with binary-PPM serialization for the examples
//! and MSE/PSNR metrics for regression comparisons.

use crate::Rgb;

/// A row-major image of linear [`Rgb`] pixels, row 0 at the *bottom*
/// (the camera's `v = 0`).
///
/// # Examples
///
/// ```
/// use cooprt_math::{Image, Rgb};
///
/// let mut img = Image::new(2, 2);
/// img.set(0, 0, Rgb::WHITE);
/// assert_eq!(*img.get(0, 0), Rgb::WHITE);
/// assert_eq!(img.to_ppm().len(), 11 + 12); // "P6\n2 2\n255\n" + 4 RGB pixels
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![Rgb::BLACK; width * height],
        }
    }

    /// Wraps an existing pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is 0.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<Rgb>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(
            pixels.len(),
            width * height,
            "pixel count must match dimensions"
        );
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> &Rgb {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds"
        );
        &self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, color: Rgb) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds"
        );
        self.pixels[y * self.width + x] = color;
    }

    /// The underlying row-major pixel slice.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Encodes as binary PPM (P6), top row first, gamma-2 sRGB.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                out.extend_from_slice(&self.get(x, y).to_srgb8());
            }
        }
        out
    }

    /// Mean squared error against another image, averaged over pixels
    /// and channels (linear space).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mse(&self, other: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimensions must match"
        );
        let mut sum = 0.0f64;
        for (a, b) in self.pixels.iter().zip(&other.pixels) {
            sum += (a.r - b.r).powi(2) as f64
                + (a.g - b.g).powi(2) as f64
                + (a.b - b.b).powi(2) as f64;
        }
        sum / (self.pixels.len() * 3) as f64
    }

    /// Peak signal-to-noise ratio in dB against `other`, assuming a
    /// peak value of 1.0; `f64::INFINITY` for identical images.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn psnr(&self, other: &Image) -> f64 {
        let mse = self.mse(other);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            -10.0 * mse.log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(3, 2);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(*img.get(2, 1), Rgb::BLACK);
        img.set(2, 1, Rgb::new(0.5, 0.25, 1.0));
        assert_eq!(img.get(2, 1).g, 0.25);
    }

    #[test]
    fn from_pixels_roundtrips() {
        let px = vec![Rgb::WHITE, Rgb::BLACK, Rgb::splat(0.5), Rgb::splat(0.1)];
        let img = Image::from_pixels(2, 2, px.clone());
        assert_eq!(img.pixels(), px.as_slice());
    }

    #[test]
    #[should_panic(expected = "pixel count")]
    fn from_pixels_rejects_mismatch() {
        let _ = Image::from_pixels(2, 2, vec![Rgb::BLACK; 3]);
    }

    #[test]
    fn ppm_layout() {
        let mut img = Image::new(2, 2);
        img.set(0, 1, Rgb::WHITE); // top-left in PPM order
        let ppm = img.to_ppm();
        let header = b"P6\n2 2\n255\n";
        assert_eq!(&ppm[..header.len()], header);
        // First pixel after the header is the top-left one (white).
        assert_eq!(&ppm[header.len()..header.len() + 3], &[255, 255, 255]);
        // Bottom-left (0,0) is black and comes in the second row.
        assert_eq!(&ppm[header.len() + 6..header.len() + 9], &[0, 0, 0]);
    }

    #[test]
    fn mse_and_psnr() {
        let a = Image::from_pixels(1, 2, vec![Rgb::BLACK, Rgb::WHITE]);
        let b = a.clone();
        assert_eq!(a.mse(&b), 0.0);
        assert_eq!(a.psnr(&b), f64::INFINITY);
        let c = Image::from_pixels(1, 2, vec![Rgb::splat(0.5), Rgb::WHITE]);
        // 3 channels differ by 0.5 out of 6 channel samples.
        assert!((a.mse(&c) - 3.0 * 0.25 / 6.0).abs() < 1e-12);
        assert!(a.psnr(&c) > 0.0);
        assert!(a.psnr(&c).is_finite());
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mse_rejects_mismatched_sizes() {
        let a = Image::new(2, 2);
        let b = Image::new(2, 3);
        let _ = a.mse(&b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }
}
