//! The service's typed error, its HTTP status mapping, and the
//! structured JSON error body every failure is reported through.
//!
//! A server must never panic on untrusted input, so every failure mode
//! on the request path — malformed bytes, oversized payloads, unknown
//! routes, a full queue, a missed deadline — is a [`ServeError`]
//! variant with a definite status code. Client mistakes map to 4xx,
//! server-side conditions to 5xx; [`cooprt_core::ConfigError`] (bad
//! simulation parameters carried inside an otherwise well-formed
//! request) folds in as a 400.

use cooprt_core::ConfigError;
use cooprt_telemetry::JsonWriter;
use std::fmt;

/// Every failure the service can report to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request was syntactically or semantically malformed (bad
    /// JSON, unknown scene, out-of-range field, ...). HTTP 400.
    BadRequest(String),
    /// The simulation core rejected the requested parameters. HTTP 400.
    Config(ConfigError),
    /// No route matches the request target. HTTP 404.
    UnknownRoute(String),
    /// No job with the requested id exists. HTTP 404.
    JobNotFound(u64),
    /// The route exists but not under this method. HTTP 405 with an
    /// `Allow` header naming the supported method(s).
    MethodNotAllowed {
        /// Value of the `Allow` response header.
        allow: &'static str,
    },
    /// The request body exceeds the configured cap. HTTP 413.
    BodyTooLarge {
        /// Configured body cap, bytes.
        limit: usize,
    },
    /// The admission queue is full; retry later. HTTP 429 with a
    /// `Retry-After` header.
    QueueFull {
        /// Suggested client back-off, seconds.
        retry_after_secs: u64,
    },
    /// The request's header block exceeds the configured cap. HTTP 431.
    HeadersTooLarge {
        /// Configured header cap, bytes.
        limit: usize,
    },
    /// An internal invariant failed while serving the request. HTTP 500.
    Internal(String),
    /// The server is draining and admits no new work. HTTP 503.
    ShuttingDown,
    /// The job missed its deadline before completing. HTTP 504.
    DeadlineExceeded,
}

impl ServeError {
    /// The HTTP status code this error is reported with.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) | ServeError::Config(_) => 400,
            ServeError::UnknownRoute(_) | ServeError::JobNotFound(_) => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::BodyTooLarge { .. } => 413,
            ServeError::QueueFull { .. } => 429,
            ServeError::HeadersTooLarge { .. } => 431,
            ServeError::Internal(_) => 500,
            ServeError::ShuttingDown => 503,
            ServeError::DeadlineExceeded => 504,
        }
    }

    /// Stable machine-readable error code for the JSON body.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Config(_) => "bad_config",
            ServeError::UnknownRoute(_) => "unknown_route",
            ServeError::JobNotFound(_) => "job_not_found",
            ServeError::MethodNotAllowed { .. } => "method_not_allowed",
            ServeError::BodyTooLarge { .. } => "body_too_large",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::HeadersTooLarge { .. } => "headers_too_large",
            ServeError::Internal(_) => "internal",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// Extra response headers this error mandates (`Retry-After`,
    /// `Allow`).
    pub fn headers(&self) -> Vec<(String, String)> {
        match self {
            ServeError::QueueFull { retry_after_secs } => {
                vec![("Retry-After".to_string(), retry_after_secs.to_string())]
            }
            ServeError::MethodNotAllowed { allow } => {
                vec![("Allow".to_string(), (*allow).to_string())]
            }
            _ => Vec::new(),
        }
    }

    /// The structured JSON error body:
    /// `{"error": {"code": ..., "status": ..., "message": ...}}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_inline_object_field("error");
        w.field_str("code", self.code());
        w.field_u64("status", u64::from(self.status()));
        w.field_str("message", &self.to_string());
        w.end_object();
        w.end_object();
        w.finish()
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Config(e) => write!(f, "bad simulation parameters: {e}"),
            ServeError::UnknownRoute(target) => write!(f, "no route for '{target}'"),
            ServeError::JobNotFound(id) => write!(f, "no job with id {id}"),
            ServeError::MethodNotAllowed { allow } => {
                write!(f, "method not allowed (allowed: {allow})")
            }
            ServeError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte cap")
            }
            ServeError::QueueFull { retry_after_secs } => write!(
                f,
                "job queue is full; retry after {retry_after_secs} second(s)"
            ),
            ServeError::HeadersTooLarge { limit } => {
                write!(f, "request headers exceed the {limit}-byte cap")
            }
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is draining; no new work accepted"),
            ServeError::DeadlineExceeded => write!(f, "job missed its deadline"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_telemetry::parse_json;
    use std::error::Error as _;

    /// One instance of every variant, paired with its expected status.
    fn all_variants() -> Vec<(ServeError, u16)> {
        vec![
            (ServeError::BadRequest("no scene".into()), 400),
            (
                ServeError::Config(ConfigError::EmptyFrame {
                    width: 0,
                    height: 4,
                }),
                400,
            ),
            (ServeError::UnknownRoute("/v1/nope".into()), 404),
            (ServeError::JobNotFound(7), 404),
            (ServeError::MethodNotAllowed { allow: "POST" }, 405),
            (ServeError::BodyTooLarge { limit: 1024 }, 413),
            (
                ServeError::QueueFull {
                    retry_after_secs: 2,
                },
                429,
            ),
            (ServeError::HeadersTooLarge { limit: 8192 }, 431),
            (ServeError::Internal("worker died".into()), 500),
            (ServeError::ShuttingDown, 503),
            (ServeError::DeadlineExceeded, 504),
        ]
    }

    #[test]
    fn every_variant_maps_to_its_status_and_parses_as_json() {
        for (err, status) in all_variants() {
            assert_eq!(err.status(), status, "{err:?}");
            let class_4xx = (400..500).contains(&status);
            // Client errors are 4xx, server-side conditions 5xx.
            match &err {
                ServeError::Internal(_)
                | ServeError::ShuttingDown
                | ServeError::DeadlineExceeded => assert!(!class_4xx, "{err:?}"),
                _ => assert!(class_4xx, "{err:?}"),
            }
            let doc = parse_json(&err.to_json()).expect("error body must be valid JSON");
            let e = doc.get("error").expect("body carries an error object");
            assert_eq!(e.get("code").and_then(|v| v.as_str()), Some(err.code()));
            assert_eq!(
                e.get("status").and_then(|v| v.as_f64()),
                Some(f64::from(status))
            );
            let msg = e.get("message").and_then(|v| v.as_str()).unwrap();
            assert_eq!(msg, err.to_string());
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn mandated_headers_are_attached() {
        let full = ServeError::QueueFull {
            retry_after_secs: 3,
        };
        assert_eq!(
            full.headers(),
            vec![("Retry-After".to_string(), "3".to_string())]
        );
        let method = ServeError::MethodNotAllowed { allow: "GET, POST" };
        assert_eq!(
            method.headers(),
            vec![("Allow".to_string(), "GET, POST".to_string())]
        );
        assert!(ServeError::ShuttingDown.headers().is_empty());
    }

    #[test]
    fn config_errors_convert_and_chain_as_source() {
        let err: ServeError = ConfigError::ZeroSamples.into();
        assert_eq!(err.status(), 400);
        let source = err.source().expect("Config chains its source");
        assert_eq!(source.to_string(), ConfigError::ZeroSamples.to_string());
        assert!(ServeError::ShuttingDown.source().is_none());
    }
}
