//! A small, strict HTTP/1.1 layer over `std::io`.
//!
//! The workspace builds with zero external dependencies, so the wire
//! protocol is hand-rolled — and deliberately minimal: request line +
//! headers + `Content-Length` bodies, keep-alive connections, nothing
//! else (no chunked transfer, no upgrades). What it *is* careful about
//! is exactly what a public socket demands:
//!
//! - **partial reads**: the reader buffers across `read()` boundaries,
//!   so a request split one byte per syscall parses identically to one
//!   delivered whole, and leftover bytes (pipelined requests) carry
//!   over to the next parse;
//! - **bounded memory**: header blocks are capped ([431] past the
//!   limit) and bodies are capped *before* they are read ([413] past
//!   the limit), so a hostile client cannot balloon the process;
//! - **no panics**: every malformed input path returns a typed
//!   [`ServeError`].
//!
//! [431]: ServeError::HeadersTooLarge
//! [413]: ServeError::BodyTooLarge

use crate::error::ServeError;
use std::io::{Read, Write};

/// Hard cap on the number of request headers, independent of byte size.
const MAX_HEADER_COUNT: usize = 100;

/// Limits the reader enforces on untrusted input.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum size of the request line + header block, bytes.
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path plus optional query), verbatim.
    pub target: String,
    /// Header `(name, value)` pairs in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True if the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Incremental request reader for one connection.
///
/// Owns the carry-over buffer, so partially received requests and
/// pipelined bytes survive between [`RequestReader::read_request`]
/// calls.
#[derive(Debug)]
pub struct RequestReader<R> {
    stream: R,
    buf: Vec<u8>,
    limits: Limits,
    wire_bytes: u64,
}

impl<R: Read> RequestReader<R> {
    /// Wraps `stream` with the given input limits.
    pub fn new(stream: R, limits: Limits) -> Self {
        RequestReader {
            stream,
            buf: Vec::new(),
            limits,
            wire_bytes: 0,
        }
    }

    /// Wire bytes consumed by fully parsed requests since the last
    /// call (head + body; pipelined bytes still buffered are not yet
    /// counted). Resets the counter, so the connection loop can
    /// attribute ingress bytes per request.
    pub fn take_wire_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.wire_bytes)
    }

    /// Reads one full request, buffering across arbitrary `read()`
    /// boundaries.
    ///
    /// Returns `Ok(None)` on a clean end-of-stream before any byte of
    /// a new request (the keep-alive loop's exit). Every protocol
    /// violation or exceeded limit is a typed [`ServeError`].
    pub fn read_request(&mut self) -> Result<Option<Request>, ServeError> {
        // Accumulate until the blank line ending the header block.
        let header_end = loop {
            if let Some(pos) = find_header_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > self.limits.max_header_bytes {
                return Err(ServeError::HeadersTooLarge {
                    limit: self.limits.max_header_bytes,
                });
            }
            if self.fill()? == 0 {
                if self.buf.is_empty() {
                    return Ok(None); // clean close between requests
                }
                return Err(ServeError::BadRequest(
                    "connection closed mid-headers".to_string(),
                ));
            }
        };
        if header_end > self.limits.max_header_bytes {
            return Err(ServeError::HeadersTooLarge {
                limit: self.limits.max_header_bytes,
            });
        }

        let head = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| ServeError::BadRequest("headers are not valid UTF-8".to_string()))?
            .to_string();
        let body_start = header_end + 4; // past "\r\n\r\n"
        let (method, target, headers) = parse_head(&head)?;

        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            Some((_, v)) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| ServeError::BadRequest(format!("invalid Content-Length '{v}'")))?,
            None => 0,
        };
        if content_length > self.limits.max_body_bytes {
            return Err(ServeError::BodyTooLarge {
                limit: self.limits.max_body_bytes,
            });
        }

        // Pull the body in, reusing bytes already buffered.
        while self.buf.len() < body_start + content_length {
            if self.fill()? == 0 {
                return Err(ServeError::BadRequest(
                    "connection closed mid-body".to_string(),
                ));
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // Keep pipelined leftovers for the next request.
        self.buf.drain(..body_start + content_length);
        self.wire_bytes += (body_start + content_length) as u64;

        Ok(Some(Request {
            method,
            target,
            headers,
            body,
        }))
    }

    /// Reads one chunk from the stream into the buffer; returns the
    /// byte count (0 = end of stream).
    fn fill(&mut self) -> Result<usize, ServeError> {
        let mut chunk = [0u8; 4096];
        let n = self
            .stream
            .read(&mut chunk)
            .map_err(|e| ServeError::BadRequest(format!("read failed: {e}")))?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }
}

/// Finds the end of the header block (`\r\n\r\n`), returning the offset
/// of its first byte.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line and header lines (already UTF-8 validated).
#[allow(clippy::type_complexity)]
fn parse_head(head: &str) -> Result<(String, String, Vec<(String, String)>), ServeError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ServeError::BadRequest("empty request".to_string()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| ServeError::BadRequest("malformed request line".to_string()))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or_else(|| ServeError::BadRequest("malformed request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing HTTP version".to_string()))?;
    if !(version == "HTTP/1.1" || version == "HTTP/1.0") || parts.next().is_some() {
        return Err(ServeError::BadRequest(format!(
            "unsupported HTTP version '{version}'"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::BadRequest(format!("malformed header line '{line}'")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ServeError::BadRequest(format!(
                "malformed header name '{name}'"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADER_COUNT {
            return Err(ServeError::BadRequest(format!(
                "more than {MAX_HEADER_COUNT} headers"
            )));
        }
    }
    Ok((method.to_string(), target.to_string(), headers))
}

/// Reason phrases for every status the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// The `Content-Type` Prometheus text exposition format 0.0.4 is
/// served under.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// An outgoing response: status, extra headers, body.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The `Content-Type` the body is served under.
    pub content_type: &'static str,
    /// Extra headers beyond the defaults (`Content-Type`,
    /// `Content-Length`).
    pub headers: Vec<(String, String)>,
    /// Response body bytes (JSON, or Prometheus text for `/metrics`).
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A Prometheus text-exposition response (used by `GET /metrics`
    /// when the client negotiates `text/plain`).
    pub fn prometheus(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: PROMETHEUS_CONTENT_TYPE,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Builds the error response for `err` (status, mandated headers,
    /// structured JSON body).
    pub fn from_error(err: &ServeError) -> Self {
        Response {
            status: err.status(),
            content_type: "application/json",
            headers: err.headers(),
            body: err.to_json().into_bytes(),
        }
    }

    /// Adds a response header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response to the wire, returning the wire bytes
    /// written (head + body, for egress accounting).
    ///
    /// Head and body go out in a single `write_all`: two small writes
    /// on a TCP socket interact with Nagle's algorithm and delayed
    /// ACKs, costing tens of milliseconds per response.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<u64> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&self.body);
        stream.write_all(&wire)?;
        stream.flush()?;
        Ok(wire.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Read` that hands out its script in deliberately tiny chunks,
    /// exercising reassembly across `read()` boundaries.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn reader_over(data: &str, chunk: usize, limits: Limits) -> RequestReader<Trickle> {
        RequestReader::new(
            Trickle {
                data: data.as_bytes().to_vec(),
                pos: 0,
                chunk,
            },
            limits,
        )
    }

    #[test]
    fn parses_a_request_split_across_every_read_boundary() {
        let wire = "POST /v1/render HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n";
        for chunk in [1, 2, 3, 7, 4096] {
            let mut r = reader_over(wire, chunk, Limits::default());
            let req = r.read_request().unwrap().expect("one request");
            assert_eq!(req.method, "POST");
            assert_eq!(req.target, "/v1/render");
            assert_eq!(req.header("host"), Some("x"));
            assert_eq!(req.body, b"{\"a\": 1}\n");
            assert!(r.read_request().unwrap().is_none(), "clean EOF after");
        }
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let wire =
            "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = reader_over(wire, 5, Limits::default());
        let a = r.read_request().unwrap().unwrap();
        assert_eq!(a.target, "/healthz");
        assert!(!a.wants_close());
        let b = r.read_request().unwrap().unwrap();
        assert_eq!(b.target, "/metrics");
        assert!(b.wants_close());
        assert!(r.read_request().unwrap().is_none());
    }

    #[test]
    fn oversized_headers_are_431() {
        let limits = Limits {
            max_header_bytes: 128,
            max_body_bytes: 1024,
        };
        let wire = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(500));
        let mut r = reader_over(&wire, 4096, limits);
        assert_eq!(
            r.read_request().unwrap_err(),
            ServeError::HeadersTooLarge { limit: 128 }
        );
        // A never-terminated header block trips the same limit rather
        // than buffering forever.
        let wire = format!("GET / HTTP/1.1\r\nX-Big: {}", "a".repeat(500));
        let mut r = reader_over(&wire, 16, limits);
        assert_eq!(
            r.read_request().unwrap_err(),
            ServeError::HeadersTooLarge { limit: 128 }
        );
    }

    #[test]
    fn oversized_bodies_are_413_before_the_body_is_read() {
        let limits = Limits {
            max_header_bytes: 1024,
            max_body_bytes: 16,
        };
        // Declares a body far past the cap but sends none of it: the
        // reader must reject on the declaration alone.
        let wire = "POST /v1/render HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        let mut r = reader_over(wire, 4096, limits);
        assert_eq!(
            r.read_request().unwrap_err(),
            ServeError::BodyTooLarge { limit: 16 }
        );
    }

    #[test]
    fn truncated_requests_are_bad_requests_not_hangs() {
        for wire in [
            "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", // body cut short
            "GET / HTTP/1.1\r\nHost",                           // headers cut short
        ] {
            let mut r = reader_over(wire, 3, Limits::default());
            match r.read_request() {
                Err(ServeError::BadRequest(_)) => {}
                other => panic!("expected BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for wire in [
            "BROKEN\r\n\r\n",                                  // no target/version
            "get / HTTP/1.1\r\n\r\n",                          // lowercase method token
            "GET nopath HTTP/1.1\r\n\r\n",                     // target must start with /
            "GET / HTTP/2.0\r\n\r\n",                          // unsupported version
            "GET / HTTP/1.1 extra\r\n\r\n",                    // trailing junk
            "GET / HTTP/1.1\r\nno-colon-line\r\n\r\n",         // malformed header
            "POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n", // bad length
        ] {
            let mut r = reader_over(wire, 4096, Limits::default());
            match r.read_request() {
                Err(ServeError::BadRequest(_)) => {}
                other => panic!("'{wire}': expected BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_methods_parse_and_are_rejected_by_routing_not_the_parser() {
        // The parser accepts any uppercase token; the router maps it to
        // 405 so the response can carry an Allow header.
        let mut r = reader_over("BREW /v1/render HTTP/1.1\r\n\r\n", 4096, Limits::default());
        let req = r.read_request().unwrap().unwrap();
        assert_eq!(req.method, "BREW");
    }

    #[test]
    fn responses_serialize_with_length_and_extra_headers() {
        let resp = Response::json(429, "{}".as_bytes().to_vec()).with_header("Retry-After", "1");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn the_reader_accounts_wire_bytes_per_parsed_request() {
        let wire =
            "POST /v1/render HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /healthz HTTP/1.1\r\n\r\n";
        let mut r = reader_over(wire, 7, Limits::default());
        r.read_request().unwrap().unwrap();
        let first = r.take_wire_bytes();
        assert_eq!(
            first,
            "POST /v1/render HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".len() as u64
        );
        assert_eq!(r.take_wire_bytes(), 0, "counter resets on take");
        r.read_request().unwrap().unwrap();
        assert_eq!(
            r.take_wire_bytes(),
            "GET /healthz HTTP/1.1\r\n\r\n".len() as u64
        );
    }

    #[test]
    fn prometheus_responses_negotiate_the_text_content_type() {
        let resp = Response::prometheus(200, "# HELP x y\n".as_bytes().to_vec());
        let mut out = Vec::new();
        let written = resp.write_to(&mut out).unwrap();
        assert_eq!(written, out.len() as u64, "write_to reports wire bytes");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"));
        // JSON responses keep their content type.
        let mut out = Vec::new();
        Response::json(200, "{}".as_bytes().to_vec())
            .write_to(&mut out)
            .unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Content-Type: application/json\r\n"));
    }

    #[test]
    fn error_responses_carry_the_structured_body() {
        let resp = Response::from_error(&ServeError::QueueFull {
            retry_after_secs: 1,
        });
        assert_eq!(resp.status, 429);
        assert_eq!(resp.headers, vec![("Retry-After".into(), "1".into())]);
        let doc = cooprt_telemetry::parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str()),
            Some("queue_full")
        );
    }
}
