//! Content-addressed caches behind the service.
//!
//! Two layers, both bounded and FIFO-evicting:
//!
//! - [`SceneCache`]: `(scene, detail)` → built scene. Scene synthesis +
//!   BVH construction dominates small-job latency, and every request
//!   for the same scene reuses one immutable [`Scene`] behind an `Arc`.
//!   The expensive build runs *outside* the cache lock, so concurrent
//!   workers never serialize on a build.
//! - [`ResultCache`]: canonical-key hash → finished response body. A
//!   hit returns the stored bytes verbatim, which is what makes the
//!   "cache hits are bitwise identical to fresh runs" guarantee hold
//!   by construction.

use cooprt_scenes::{Scene, SceneId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit hash of `bytes` (the result cache's address function).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hit/miss counters shared by both caches.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Bounded FIFO map: the storage shared by both caches.
#[derive(Debug)]
struct FifoMap<K, V> {
    entries: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V> FifoMap<K, V> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        FifoMap {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.entries.get(key)
    }

    /// Inserts `value`, evicting the oldest entry past capacity. Keeps
    /// the existing value on key collision (first writer wins — both
    /// computed the same immutable content).
    fn insert(&mut self, key: K, value: V) {
        if self.entries.contains_key(&key) {
            return;
        }
        if self.entries.len() == self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
            }
        }
        self.order.push_back(key.clone());
        self.entries.insert(key, value);
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// `(scene, detail)` → built [`Scene`], bounded, FIFO-evicting.
#[derive(Debug)]
pub struct SceneCache {
    map: Mutex<FifoMap<(SceneId, u32), Arc<Scene>>>,
    stats: CacheStats,
}

impl SceneCache {
    /// A cache holding at most `capacity` built scenes.
    pub fn new(capacity: usize) -> Self {
        SceneCache {
            map: Mutex::new(FifoMap::new(capacity)),
            stats: CacheStats::default(),
        }
    }

    /// Returns the cached scene, building (and caching) it on a miss.
    ///
    /// The build runs outside the lock; if two workers race on the same
    /// key, both build and the first insert wins — wasted work bounded
    /// by one build, never a stall of every other key behind the lock.
    pub fn get_or_build(&self, id: SceneId, detail: u32) -> Arc<Scene> {
        if let Some(scene) = self.lock().get(&(id, detail)).cloned() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return scene;
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(id.build(detail));
        let mut map = self.lock();
        map.insert((id, detail), Arc::clone(&built));
        map.get(&(id, detail)).cloned().unwrap_or(built)
    }

    /// Scenes currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no scene is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FifoMap<(SceneId, u32), Arc<Scene>>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Canonical-key hash → finished response body, bounded, FIFO-evicting.
#[derive(Debug)]
pub struct ResultCache {
    map: Mutex<FifoMap<u64, Arc<Vec<u8>>>>,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache holding at most `capacity` response bodies.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            map: Mutex::new(FifoMap::new(capacity)),
            stats: CacheStats::default(),
        }
    }

    /// The stored body for `key`, counting the hit/miss.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        let found = self.lock().get(&key).cloned();
        match &found {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a freshly computed body under `key`.
    pub fn insert(&self, key: u64, body: Arc<Vec<u8>>) {
        self.lock().insert(key, body);
    }

    /// Bodies currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no body is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FifoMap<u64, Arc<Vec<u8>>>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn result_cache_hits_return_the_stored_bytes_and_count() {
        let cache = ResultCache::new(4);
        assert!(cache.get(7).is_none());
        let body = Arc::new(b"{\"x\": 1}".to_vec());
        cache.insert(7, Arc::clone(&body));
        let hit = cache.get(7).expect("stored body");
        assert!(Arc::ptr_eq(&hit, &body), "hit is the stored allocation");
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
    }

    #[test]
    fn fifo_eviction_drops_the_oldest_entry() {
        let cache = ResultCache::new(2);
        cache.insert(1, Arc::new(vec![1]));
        cache.insert(2, Arc::new(vec![2]));
        cache.insert(3, Arc::new(vec![3])); // evicts key 1
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn scene_cache_reuses_the_built_scene() {
        let cache = SceneCache::new(2);
        let a = cache.get_or_build(SceneId::Wknd, 1);
        let b = cache.get_or_build(SceneId::Wknd, 1);
        assert!(Arc::ptr_eq(&a, &b), "second request reuses the build");
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
        // A different detail level is a distinct entry.
        let c = cache.get_or_build(SceneId::Wknd, 2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }
}
