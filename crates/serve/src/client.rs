//! A minimal blocking HTTP/1.1 client for exercising the service.
//!
//! Used by the CLI smoke test, the `loadgen` benchmark, and the e2e
//! tests — all of which need exactly this much: open a keep-alive
//! connection, send a request, read the status line, headers, and a
//! `Content-Length` body. It is *not* a general HTTP client (no
//! chunked bodies, no redirects) and stays inside the workspace's
//! zero-dependency rule.

use std::io::{Read, Write};
use std::net::TcpStream;

/// A response as the client sees it.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    leftover: Vec<u8>,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:8080`).
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        // Small request/response exchanges stall badly under Nagle's
        // algorithm; this is a latency-measuring client.
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            leftover: Vec::new(),
        })
    }

    /// Sends `GET target` and reads the response.
    pub fn get(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", target, None)
    }

    /// Sends `GET target` with an `Accept` header — how callers
    /// negotiate the Prometheus text format on `/metrics`.
    pub fn get_accept(&mut self, target: &str, accept: &str) -> std::io::Result<ClientResponse> {
        let wire = format!(
            "GET {target} HTTP/1.1\r\nHost: cooprt\r\nAccept: {accept}\r\nContent-Length: 0\r\n\r\n",
        )
        .into_bytes();
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Sends `POST target` with a JSON body and reads the response.
    pub fn post(&mut self, target: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", target, Some(body))
    }

    /// Sends one request on the keep-alive connection.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        // One write per request (see `Response::write_to` on why).
        let mut wire = format!(
            "{method} {target} HTTP/1.1\r\nHost: cooprt\r\nContent-Length: {}\r\nContent-Type: application/json\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(body.as_bytes());
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        // Accumulate to the end of the header block.
        let header_end = loop {
            if let Some(pos) = self.leftover.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-response"));
            }
            self.leftover.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.leftover[..header_end])
            .map_err(|_| bad("response headers are not UTF-8"))?
            .to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad("malformed Content-Length"))?;
                }
                headers.push((name, value));
            }
        }
        let body_start = header_end + 4;
        while self.leftover.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-body"));
            }
            self.leftover.extend_from_slice(&chunk[..n]);
        }
        let body = self.leftover[body_start..body_start + content_length].to_vec();
        self.leftover.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
