//! The executor: runs validated jobs against the simulator and builds
//! deterministic response bodies, fronted by both caches.
//!
//! Determinism is a contract here, not an accident: a response body
//! contains only values derived from the job's canonical key (scene
//! content hashes, simulated cycle counts, pixel bit patterns) — never
//! wall-clock time, request ids, or queue state. That is what lets a
//! [`ResultCache`] hit return stored bytes that are bitwise identical
//! to a fresh run, and what the `cooprt-check` identity oracle verifies
//! end to end.
//!
//! Two encoding rules keep JSON from silently corrupting the data:
//! 64-bit hashes travel as hex strings (JSON numbers are f64 and lose
//! precision past 2^53), and pixels travel as `f32::to_bits` words
//! (decimal formatting would round).

use crate::api::JobRequest;
use crate::cache::{fnv1a64, ResultCache, SceneCache};
use crate::error::ServeError;
use cooprt_core::{MetricsReport, Simulation};
use cooprt_telemetry::{EventKind, JsonWriter, LogLevel, Logger, SpanRecorder, Tracer};
use std::sync::Arc;
use std::time::Instant;

/// Which endpoint's body shape a job produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/render`: frame summary + optional pixel data.
    Render,
    /// `POST /v1/simulate`: the full [`MetricsReport`].
    Simulate,
    /// `POST /v1/query`: spatial-query batch + per-query answers.
    Query,
}

impl Endpoint {
    /// Stable label, used in cache keys and response bodies.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Render => "render",
            Endpoint::Simulate => "simulate",
            Endpoint::Query => "query",
        }
    }
}

/// The outcome of executing (or cache-hitting) one job.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The response body, shared with the result cache.
    pub body: Arc<Vec<u8>>,
    /// True when the body came from the result cache.
    pub cached: bool,
}

/// Runs jobs against the simulator behind the scene and result caches.
///
/// The executor is deliberately free of sockets and queues so the
/// `cooprt-check` cache-identity oracle (and unit tests) can drive the
/// exact production path directly.
#[derive(Debug)]
pub struct Executor {
    scenes: SceneCache,
    results: ResultCache,
}

impl Executor {
    /// An executor whose caches hold at most `scene_capacity` built
    /// scenes and `result_capacity` response bodies.
    pub fn new(scene_capacity: usize, result_capacity: usize) -> Self {
        Executor {
            scenes: SceneCache::new(scene_capacity),
            results: ResultCache::new(result_capacity),
        }
    }

    /// The result-cache address of `(endpoint, req)`.
    pub fn cache_key(endpoint: Endpoint, req: &JobRequest) -> u64 {
        fnv1a64(format!("{} {}", endpoint.label(), req.canonical_key()).as_bytes())
    }

    /// Executes one job, consulting the result cache first.
    ///
    /// `request_id` is threaded into the [`Tracer`] (as a cycle-0
    /// [`EventKind::Request`] marker) when the job asks for tracing; it
    /// never appears in the body, which must stay id-independent for
    /// cache identity.
    pub fn execute(
        &self,
        endpoint: Endpoint,
        req: &JobRequest,
        request_id: u64,
    ) -> Result<ExecOutcome, ServeError> {
        self.execute_traced(
            endpoint,
            req,
            request_id,
            &SpanRecorder::disabled(),
            &Logger::disabled(),
        )
    }

    /// [`Executor::execute`], recording host-side spans (result-cache
    /// lookup, scene build, engine run, serialize) into `spans` and
    /// cache-outcome logs under the `serve::exec` target.
    ///
    /// Spans and logs observe wall-clock time only; the response body
    /// remains a pure function of the job's canonical key.
    pub fn execute_traced(
        &self,
        endpoint: Endpoint,
        req: &JobRequest,
        request_id: u64,
        spans: &SpanRecorder,
        log: &Logger,
    ) -> Result<ExecOutcome, ServeError> {
        // The query endpoint's contract: a query shader on one batch.
        // Checked before the cache so invalid combinations can never be
        // admitted (or cached) in the first place.
        if endpoint == Endpoint::Query {
            if !req.shader.is_query() {
                return Err(ServeError::BadRequest(format!(
                    "/v1/query needs a query shader (knn, rad, cont), got '{}'",
                    req.shader.key()
                )));
            }
            if req.spp != 1 {
                return Err(ServeError::BadRequest(
                    "query jobs run one batch; spp must be 1".to_string(),
                ));
            }
        }

        let key = Self::cache_key(endpoint, req);
        let hit = spans.time("result_cache", || self.results.get(key));
        if let Some(body) = hit {
            log.log(LogLevel::Debug, "serve::exec", "result cache hit", |f| {
                f.u64("id", request_id).str("key", format!("{key:016x}"));
            });
            return Ok(ExecOutcome { body, cached: true });
        }
        log.log(LogLevel::Debug, "serve::exec", "result cache miss", |f| {
            f.u64("id", request_id).str("key", format!("{key:016x}"));
        });

        let scene = spans.time("scene", || self.scenes.get_or_build(req.scene, req.detail));
        let config = req
            .config
            .build()
            .with_reorder(req.reorder)
            .with_predict(req.predict);
        let tracer = if req.trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        tracer.emit(0, || EventKind::Request { id: request_id });
        let sim = Simulation::new(&scene, &config, req.policy).with_tracer(tracer.clone());
        let run_start = Instant::now();
        let run = sim.run_accumulated(req.shader, req.width, req.height, req.spp);
        spans.record("engine_run", run_start, Instant::now());
        let (pixels, frames) = run?;
        let trace_log = tracer.take();

        let serialize_start = Instant::now();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("kind", endpoint.label());
        w.field_str("scene", req.scene.name());
        w.field_u64("detail", u64::from(req.detail));
        w.field_u64("width", req.width as u64);
        w.field_u64("height", req.height as u64);
        w.field_u64("spp", u64::from(req.spp));
        w.field_str("shader", req.shader.key());
        w.field_str("policy", req.policy.label());
        w.field_str("reorder", req.reorder.label());
        w.field_str("predict", req.predict.label());
        w.field_str("config", &req.config.label().to_string());
        w.field_str("bvh_hash", &format!("{:016x}", scene.image.content_hash()));
        w.field_u64("bvh_nodes", scene.image.node_count() as u64);
        w.field_u64("cycles", frames.iter().map(|f| f.cycles).sum());
        w.field_u64("rays", frames.iter().map(|f| f.rays).sum());
        w.field_u64(
            "slowest_warp_cycles",
            frames
                .iter()
                .map(|f| f.slowest_warp_cycles)
                .max()
                .unwrap_or(0),
        );
        let pixel_words: Vec<u32> = pixels
            .iter()
            .flat_map(|p| [p.r.to_bits(), p.g.to_bits(), p.b.to_bits()])
            .collect();
        let mut ph = 0xcbf2_9ce4_8422_2325u64;
        for wv in &pixel_words {
            for b in wv.to_le_bytes() {
                ph ^= u64::from(b);
                ph = ph.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        w.field_str("image_hash", &format!("{ph:016x}"));
        if req.include_image {
            w.begin_inline_array("pixels_bits");
            for wv in &pixel_words {
                w.item_u64(u64::from(*wv));
            }
            w.end_array();
        }
        if req.trace {
            // Event counts are a pure function of the simulated work
            // (the cycle-0 request marker adds exactly one), so they
            // are safe to cache.
            w.field_u64(
                "trace_events",
                trace_log.events.len() as u64 + trace_log.dropped,
            );
        }
        if endpoint == Endpoint::Query {
            // Per-query answers, indexed by query id: point indices for
            // knn/rad (nearest-first / ascending), the containing cell
            // for cont. Deterministic — a pure function of the
            // canonical key — so the body is safe to cache like any
            // other.
            let answers = &frames[0].query_results;
            w.field_u64("queries", answers.len() as u64);
            w.field_u64(
                "answer_entries",
                answers.iter().map(|a| a.len() as u64).sum(),
            );
            let mut raw = String::from("[");
            for (i, a) in answers.iter().enumerate() {
                if i > 0 {
                    raw.push(',');
                }
                raw.push('[');
                for (j, id) in a.iter().enumerate() {
                    if j > 0 {
                        raw.push(',');
                    }
                    raw.push_str(&id.to_string());
                }
                raw.push(']');
            }
            raw.push(']');
            w.field_raw("answers", &raw);
        }
        if endpoint == Endpoint::Simulate {
            let mut report = MetricsReport::new(&format!(
                "{} {} {}",
                req.scene.name(),
                req.policy.label(),
                req.shader.key()
            ));
            for (i, frame) in frames.iter().enumerate() {
                report.add_frame(&format!("sample{i}"), frame);
            }
            w.field_raw("report", &report.to_json());
        }
        w.end_object();

        let body = Arc::new(w.finish().into_bytes());
        spans.record("serialize", serialize_start, Instant::now());
        self.results.insert(key, Arc::clone(&body));
        Ok(ExecOutcome {
            body,
            cached: false,
        })
    }

    /// The scene cache (for metrics and tests).
    pub fn scene_cache(&self) -> &SceneCache {
        &self.scenes
    }

    /// The result cache (for metrics and tests).
    pub fn result_cache(&self) -> &ResultCache {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_telemetry::parse_json;

    fn small_request() -> JobRequest {
        JobRequest {
            width: 8,
            height: 6,
            ..JobRequest::default()
        }
    }

    #[test]
    fn cache_hits_are_bitwise_identical_to_the_fresh_run() {
        let exec = Executor::new(4, 4);
        let req = small_request();
        let fresh = exec.execute(Endpoint::Render, &req, 1).unwrap();
        assert!(!fresh.cached);
        let hit = exec.execute(Endpoint::Render, &req, 2).unwrap();
        assert!(hit.cached);
        assert_eq!(*fresh.body, *hit.body, "hit must be byte-identical");
        assert_eq!(exec.result_cache().stats().hits(), 1);
    }

    #[test]
    fn request_ids_never_reach_the_body() {
        // Two fresh executions under wildly different request ids must
        // produce identical bytes — ids live only in the trace stream.
        let req = JobRequest {
            trace: true,
            ..small_request()
        };
        let a = Executor::new(2, 2)
            .execute(Endpoint::Render, &req, 7)
            .unwrap();
        let b = Executor::new(2, 2)
            .execute(Endpoint::Render, &req, 0xdead_beef)
            .unwrap();
        assert_eq!(*a.body, *b.body);
        let doc = parse_json(std::str::from_utf8(&a.body).unwrap()).unwrap();
        assert!(doc.get("trace_events").and_then(|v| v.as_f64()).unwrap() > 1.0);
    }

    #[test]
    fn render_bodies_carry_the_frame_summary() {
        let exec = Executor::new(2, 2);
        let req = JobRequest {
            include_image: true,
            ..small_request()
        };
        let out = exec.execute(Endpoint::Render, &req, 1).unwrap();
        let doc = parse_json(std::str::from_utf8(&out.body).unwrap()).unwrap();
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("render"));
        assert_eq!(doc.get("scene").and_then(|v| v.as_str()), Some("wknd"));
        assert!(doc.get("cycles").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let hash = doc.get("bvh_hash").and_then(|v| v.as_str()).unwrap();
        assert_eq!(hash.len(), 16, "u64 hash travels as a hex string");
        match doc.get("pixels_bits") {
            Some(cooprt_telemetry::JsonValue::Array(words)) => {
                assert_eq!(words.len(), 8 * 6 * 3, "3 words per pixel");
            }
            other => panic!("expected pixels_bits array, got {other:?}"),
        }
    }

    #[test]
    fn simulate_bodies_embed_the_full_metrics_report() {
        let exec = Executor::new(2, 2);
        let req = JobRequest {
            spp: 2,
            ..small_request()
        };
        let out = exec.execute(Endpoint::Simulate, &req, 1).unwrap();
        let doc = parse_json(std::str::from_utf8(&out.body).unwrap()).unwrap();
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("simulate"));
        let report = doc.get("report").expect("embedded MetricsReport");
        assert!(report.get("schema_version").is_some());
        match report.get("frames") {
            Some(cooprt_telemetry::JsonValue::Array(frames)) => {
                assert_eq!(frames.len(), 2, "one report frame per sample");
            }
            other => panic!("expected frames array, got {other:?}"),
        }
    }

    #[test]
    fn render_and_simulate_occupy_distinct_cache_slots() {
        let exec = Executor::new(2, 4);
        let req = small_request();
        let render = exec.execute(Endpoint::Render, &req, 1).unwrap();
        let simulate = exec.execute(Endpoint::Simulate, &req, 2).unwrap();
        assert!(!render.cached && !simulate.cached);
        assert_ne!(*render.body, *simulate.body);
        assert_eq!(exec.result_cache().len(), 2);
    }

    #[test]
    fn query_bodies_carry_deterministic_answers() {
        use cooprt_core::ShaderKind;
        use cooprt_scenes::SceneId;
        let exec = Executor::new(2, 4);
        let req = JobRequest {
            scene: SceneId::Quni,
            shader: ShaderKind::Knn,
            width: 8,
            height: 4,
            ..JobRequest::default()
        };
        let fresh = exec.execute(Endpoint::Query, &req, 1).unwrap();
        let doc = parse_json(std::str::from_utf8(&fresh.body).unwrap()).unwrap();
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("query"));
        assert_eq!(doc.get("shader").and_then(|v| v.as_str()), Some("knn"));
        assert_eq!(doc.get("queries").and_then(|v| v.as_f64()), Some(32.0));
        let answers = match doc.get("answers") {
            Some(cooprt_telemetry::JsonValue::Array(a)) => a,
            other => panic!("expected answers array, got {other:?}"),
        };
        assert_eq!(answers.len(), 32, "one answer row per query");
        assert!(
            doc.get("answer_entries").and_then(|v| v.as_f64()).unwrap() > 0.0,
            "the uniform cloud batch should find neighbours"
        );
        // Cache hits return the identical bytes, like every endpoint.
        let hit = exec.execute(Endpoint::Query, &req, 2).unwrap();
        assert!(hit.cached);
        assert_eq!(*fresh.body, *hit.body);
    }

    #[test]
    fn query_endpoint_rejects_mismatched_jobs() {
        use cooprt_core::ShaderKind;
        use cooprt_scenes::SceneId;
        let exec = Executor::new(2, 4);
        // Render shader on the query endpoint: 400 before any work.
        let render = small_request();
        match exec.execute(Endpoint::Query, &render, 1) {
            Err(ServeError::BadRequest(msg)) => assert!(msg.contains("query shader")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // Multi-sample query batches are rejected too.
        let multi = JobRequest {
            scene: SceneId::Quni,
            shader: ShaderKind::Knn,
            spp: 2,
            ..small_request()
        };
        match exec.execute(Endpoint::Query, &multi, 1) {
            Err(ServeError::BadRequest(msg)) => assert!(msg.contains("spp must be 1")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // A query shader against a scene with no domain is the engine's
        // domain-mismatch config error (HTTP 400).
        let wrong_scene = JobRequest {
            shader: ShaderKind::Knn,
            ..small_request()
        };
        match exec.execute(Endpoint::Query, &wrong_scene, 1) {
            Err(ServeError::Config(_)) => {}
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn config_errors_surface_as_serve_errors() {
        let exec = Executor::new(1, 1);
        let req = JobRequest {
            spp: 0, // unreachable via from_json; drives the core error path
            ..small_request()
        };
        match exec.execute(Endpoint::Render, &req, 1) {
            Err(ServeError::Config(_)) => {}
            other => panic!("expected Config error, got {other:?}"),
        }
    }
}
