//! Admission control and the worker pool: a bounded job queue in front
//! of the [`Executor`].
//!
//! Every render/simulate request — sync or async — becomes a job in a
//! bounded [`SyncQueue`]. A full queue rejects *at admission* with
//! [`ServeError::QueueFull`] (HTTP 429 + `Retry-After`) instead of
//! buffering unboundedly; a draining queue rejects with
//! [`ServeError::ShuttingDown`] (503). Workers are plain threads
//! looping on [`SyncQueue::pop_timeout`]; on drain the queue is closed,
//! workers finish every job already admitted, and then exit — admitted
//! work is never dropped.
//!
//! Observability: each job carries a [`SpanRecorder`] trail (queue
//! wait, then the executor's cache/scene/engine/serialize segments),
//! retained in a bounded table for `GET /v1/spans/<id>`; workers bump
//! a busy gauge and a queue-wait histogram, and log claims/outcomes
//! under the `serve::queue` target.

use crate::error::ServeError;
use crate::exec::{Endpoint, ExecOutcome, Executor};
use crate::metrics::LATENCY_BUCKETS_US;
use crate::JobRequest;
use cooprt_core::parallel::{Pop, PushError, SyncQueue};
use cooprt_telemetry::{FixedHistogram, HostSpan, LogLevel, Logger, SpanRecorder};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long a worker sleeps on an empty queue before re-checking for
/// shutdown.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// Completed jobs retained for polling before the oldest is pruned.
const FINISHED_RETENTION: usize = 256;

/// Request span trails retained for `GET /v1/spans/<id>` before the
/// oldest is pruned.
const SPAN_RETENTION: usize = 256;

/// Observable state of a submitted job.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully.
    Done(ExecOutcome),
    /// Finished with an error.
    Failed(ServeError),
}

impl JobState {
    /// Short label for status bodies.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One admitted job.
#[derive(Debug)]
struct Job {
    endpoint: Endpoint,
    request: JobRequest,
    deadline: Instant,
    submitted_at: Instant,
    trail: SpanRecorder,
    state: JobState,
}

#[derive(Debug, Default)]
struct JobTable {
    jobs: HashMap<u64, Job>,
    finished: VecDeque<u64>,
}

impl JobTable {
    /// Records `id` as finished and prunes the oldest finished jobs
    /// past the retention cap (so long-lived servers don't grow the
    /// table unboundedly).
    fn finish(&mut self, id: u64) {
        self.finished.push_back(id);
        while self.finished.len() > FINISHED_RETENTION {
            if let Some(old) = self.finished.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }
}

/// Bounded id → span-trail table backing `GET /v1/spans/<id>`.
#[derive(Debug, Default)]
struct SpanTable {
    trails: HashMap<u64, SpanRecorder>,
    order: VecDeque<u64>,
}

impl SpanTable {
    fn insert(&mut self, id: u64, trail: SpanRecorder) {
        self.trails.insert(id, trail);
        self.order.push_back(id);
        while self.order.len() > SPAN_RETENTION {
            if let Some(old) = self.order.pop_front() {
                self.trails.remove(&old);
            }
        }
    }
}

/// Lifetime counters for the dispatcher.
#[derive(Debug, Default)]
pub struct DispatchCounters {
    /// Jobs admitted to the queue.
    pub submitted: AtomicU64,
    /// Jobs rejected because the queue was full.
    pub rejected_full: AtomicU64,
    /// Jobs rejected because the server was draining.
    pub rejected_draining: AtomicU64,
    /// Jobs that finished successfully.
    pub completed: AtomicU64,
    /// Jobs that finished with an error (including expired deadlines).
    pub failed: AtomicU64,
}

/// Live worker-pool statistics shared with the worker threads.
#[derive(Debug)]
struct WorkerStats {
    /// Workers currently executing a job.
    busy: AtomicU64,
    /// Queue-wait (submit → claim) histogram, microseconds.
    queue_wait_us: FixedHistogram,
}

/// The bounded queue + worker pool + job table.
#[derive(Debug)]
pub struct Dispatcher {
    executor: Arc<Executor>,
    queue: Arc<SyncQueue<u64>>,
    table: Arc<(Mutex<JobTable>, Condvar)>,
    counters: Arc<DispatchCounters>,
    stats: Arc<WorkerStats>,
    spans: Arc<Mutex<SpanTable>>,
    next_id: AtomicU64,
    retry_after_secs: u64,
    workers_total: usize,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Dispatcher {
    /// Spawns `workers` worker threads over a queue admitting at most
    /// `queue_capacity` waiting jobs, without logging.
    pub fn new(
        executor: Arc<Executor>,
        workers: usize,
        queue_capacity: usize,
        retry_after_secs: u64,
    ) -> Self {
        Self::new_with(
            executor,
            workers,
            queue_capacity,
            retry_after_secs,
            Logger::disabled(),
        )
    }

    /// [`Dispatcher::new`], with worker-side structured logging under
    /// the `serve::queue` target.
    pub fn new_with(
        executor: Arc<Executor>,
        workers: usize,
        queue_capacity: usize,
        retry_after_secs: u64,
        logger: Logger,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        let queue = Arc::new(SyncQueue::new(queue_capacity));
        let table: Arc<(Mutex<JobTable>, Condvar)> = Arc::default();
        let counters = Arc::new(DispatchCounters::default());
        let stats = Arc::new(WorkerStats {
            busy: AtomicU64::new(0),
            queue_wait_us: FixedHistogram::new(&LATENCY_BUCKETS_US),
        });
        let handles = (0..workers)
            .map(|i| {
                let executor = Arc::clone(&executor);
                let queue = Arc::clone(&queue);
                let table = Arc::clone(&table);
                let counters = Arc::clone(&counters);
                let stats = Arc::clone(&stats);
                let logger = logger.clone();
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&executor, &queue, &table, &counters, &stats, &logger)
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Dispatcher {
            executor,
            queue,
            table,
            counters,
            stats,
            spans: Arc::default(),
            next_id: AtomicU64::new(1),
            retry_after_secs,
            workers_total: workers,
            workers: Mutex::new(handles),
        }
    }

    /// Admits a job, returning its id, or rejects with 429/503.
    pub fn submit(
        &self,
        endpoint: Endpoint,
        request: JobRequest,
        deadline: Duration,
    ) -> Result<u64, ServeError> {
        self.submit_traced(endpoint, request, deadline, SpanRecorder::disabled())
    }

    /// [`Dispatcher::submit`], attaching a span trail the worker and
    /// executor extend; an enabled trail is retained for
    /// `GET /v1/spans/<id>`.
    pub fn submit_traced(
        &self,
        endpoint: Endpoint,
        request: JobRequest,
        deadline: Duration,
        trail: SpanRecorder,
    ) -> Result<u64, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let (lock, _) = &*self.table;
            let mut t = lock.lock().unwrap_or_else(|e| e.into_inner());
            t.jobs.insert(
                id,
                Job {
                    endpoint,
                    request,
                    deadline: Instant::now() + deadline,
                    submitted_at: Instant::now(),
                    trail: trail.clone(),
                    state: JobState::Queued,
                },
            );
        }
        match self.queue.try_push(id) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                if trail.is_enabled() {
                    self.spans
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(id, trail);
                }
                Ok(id)
            }
            Err(err) => {
                let (lock, _) = &*self.table;
                lock.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .jobs
                    .remove(&id);
                match err {
                    PushError::Full(_) => {
                        self.counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::QueueFull {
                            retry_after_secs: self.retry_after_secs,
                        })
                    }
                    PushError::Closed(_) => {
                        self.counters
                            .rejected_draining
                            .fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::ShuttingDown)
                    }
                }
            }
        }
    }

    /// Blocks until job `id` finishes, or its deadline passes.
    ///
    /// On deadline expiry the job itself keeps running (its result
    /// still lands in the cache); only this waiter gives up with a 504.
    pub fn wait(&self, id: u64) -> Result<ExecOutcome, ServeError> {
        let (lock, cond) = &*self.table;
        let mut t = lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let job = t.jobs.get(&id).ok_or(ServeError::JobNotFound(id))?;
            match &job.state {
                JobState::Done(outcome) => return Ok(outcome.clone()),
                JobState::Failed(err) => return Err(err.clone()),
                JobState::Queued | JobState::Running => {
                    let now = Instant::now();
                    if now >= job.deadline {
                        return Err(ServeError::DeadlineExceeded);
                    }
                    let wait = job.deadline - now;
                    let (guard, _) = cond
                        .wait_timeout(t, wait.min(WORKER_POLL))
                        .unwrap_or_else(|e| e.into_inner());
                    t = guard;
                }
            }
        }
    }

    /// The current state of job `id` (for `GET /v1/jobs/<id>`).
    pub fn status(&self, id: u64) -> Result<JobState, ServeError> {
        let (lock, _) = &*self.table;
        let t = lock.lock().unwrap_or_else(|e| e.into_inner());
        t.jobs
            .get(&id)
            .map(|j| j.state.clone())
            .ok_or(ServeError::JobNotFound(id))
    }

    /// The span trail recorded for request `id`, if spans were enabled
    /// and the id is still within the retention window. The snapshot
    /// reflects whatever has been recorded so far — a queued job has
    /// only its submission-side spans.
    pub fn request_spans(&self, id: u64) -> Option<Vec<HostSpan>> {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .trails
            .get(&id)
            .map(|trail| trail.snapshot())
    }

    /// Jobs currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The admission queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Worker threads in the pool.
    pub fn workers_total(&self) -> usize {
        self.workers_total
    }

    /// Workers currently executing a job.
    pub fn busy_workers(&self) -> u64 {
        self.stats.busy.load(Ordering::Relaxed)
    }

    /// The queue-wait (submit → claim) histogram, microseconds.
    pub fn queue_wait_us(&self) -> &FixedHistogram {
        &self.stats.queue_wait_us
    }

    /// Lifetime counters.
    pub fn counters(&self) -> &DispatchCounters {
        &self.counters
    }

    /// The executor behind the workers (for cache metrics).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// True once [`Dispatcher::drain`] has closed the queue.
    pub fn is_draining(&self) -> bool {
        self.queue.is_closed()
    }

    /// Graceful drain: stop admitting, finish every admitted job, join
    /// the workers. Idempotent.
    pub fn drain(&self) {
        self.queue.close();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.drain();
    }
}

/// One worker: pop job ids until the queue is closed *and* empty.
fn worker_loop(
    executor: &Executor,
    queue: &SyncQueue<u64>,
    table: &(Mutex<JobTable>, Condvar),
    counters: &DispatchCounters,
    stats: &WorkerStats,
    logger: &Logger,
) {
    let (lock, cond) = table;
    loop {
        let id = match queue.pop_timeout(WORKER_POLL) {
            Pop::Item(id) => id,
            Pop::Timeout => continue,
            Pop::Closed => return,
        };
        // Claim the job: mark Running, grab what we need to execute.
        let claimed = {
            let mut t = lock.lock().unwrap_or_else(|e| e.into_inner());
            match t.jobs.get_mut(&id) {
                Some(job) => {
                    if Instant::now() >= job.deadline {
                        job.state = JobState::Failed(ServeError::DeadlineExceeded);
                        t.finish(id);
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                        cond.notify_all();
                        logger.log(
                            LogLevel::Warn,
                            "serve::queue",
                            "job expired in queue",
                            |f| {
                                f.u64("id", id);
                            },
                        );
                        None
                    } else {
                        job.state = JobState::Running;
                        Some((
                            job.endpoint,
                            job.request.clone(),
                            job.submitted_at,
                            job.trail.clone(),
                        ))
                    }
                }
                None => None, // pruned while queued; nothing to do
            }
        };
        let Some((endpoint, request, submitted_at, trail)) = claimed else {
            continue;
        };
        let claimed_at = Instant::now();
        let wait_us = claimed_at
            .saturating_duration_since(submitted_at)
            .as_micros() as u64;
        stats.queue_wait_us.observe(wait_us);
        trail.record("queue_wait", submitted_at, claimed_at);
        logger.log(LogLevel::Debug, "serve::queue", "job claimed", |f| {
            f.u64("id", id)
                .str("endpoint", endpoint.label())
                .u64("queue_wait_us", wait_us);
        });
        stats.busy.fetch_add(1, Ordering::Relaxed);
        let result = executor.execute_traced(endpoint, &request, id, &trail, logger);
        stats.busy.fetch_sub(1, Ordering::Relaxed);
        let exec_us = claimed_at.elapsed().as_micros() as u64;
        let mut t = lock.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(job) = t.jobs.get_mut(&id) {
            job.state = match result {
                Ok(outcome) => {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                    logger.log(LogLevel::Debug, "serve::queue", "job done", |f| {
                        f.u64("id", id)
                            .bool("cached", outcome.cached)
                            .u64("exec_us", exec_us);
                    });
                    JobState::Done(outcome)
                }
                Err(err) => {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    logger.log(LogLevel::Warn, "serve::queue", "job failed", |f| {
                        f.u64("id", id)
                            .str("code", err.code())
                            .u64("exec_us", exec_us);
                    });
                    JobState::Failed(err)
                }
            };
            t.finish(id);
        }
        cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request() -> JobRequest {
        JobRequest {
            width: 6,
            height: 4,
            ..JobRequest::default()
        }
    }

    fn dispatcher(workers: usize, queue: usize) -> Dispatcher {
        Dispatcher::new(Arc::new(Executor::new(4, 8)), workers, queue, 1)
    }

    #[test]
    fn submit_wait_returns_the_result() {
        let d = dispatcher(2, 8);
        let id = d
            .submit(Endpoint::Render, tiny_request(), Duration::from_secs(30))
            .unwrap();
        let outcome = d.wait(id).unwrap();
        assert!(!outcome.cached);
        assert!(!outcome.body.is_empty());
        assert!(matches!(d.status(id).unwrap(), JobState::Done(_)));
        assert_eq!(d.counters().completed.load(Ordering::Relaxed), 1);
        // The pool is idle again, and the claim recorded a queue wait.
        assert_eq!(d.busy_workers(), 0);
        assert_eq!(d.workers_total(), 2);
        assert_eq!(d.queue_wait_us().snapshot().count(), 1);
    }

    #[test]
    fn a_full_queue_rejects_with_queue_full() {
        // One worker, capacity-1 queue. Flood with jobs; with more
        // submissions than the system can hold at once, at least one
        // must be turned away with the 429 mapping.
        let d = dispatcher(1, 1);
        assert_eq!(d.queue_capacity(), 1);
        let mut admitted = Vec::new();
        let mut rejected = 0;
        for _ in 0..20 {
            match d.submit(Endpoint::Render, tiny_request(), Duration::from_secs(30)) {
                Ok(id) => admitted.push(id),
                Err(ServeError::QueueFull { retry_after_secs }) => {
                    assert_eq!(retry_after_secs, 1);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(rejected > 0, "overload must trip admission control");
        assert_eq!(d.counters().rejected_full.load(Ordering::Relaxed), rejected);
        // Everything admitted still completes (first run is a miss,
        // repeats are cache hits).
        for id in admitted {
            d.wait(id).unwrap();
        }
    }

    #[test]
    fn drain_finishes_admitted_work_and_rejects_new_work() {
        let d = dispatcher(1, 8);
        let ids: Vec<u64> = (0..3)
            .map(|_| {
                d.submit(Endpoint::Render, tiny_request(), Duration::from_secs(30))
                    .unwrap()
            })
            .collect();
        d.drain();
        assert!(d.is_draining());
        for id in ids {
            d.wait(id).expect("admitted jobs complete during drain");
        }
        match d.submit(Endpoint::Render, tiny_request(), Duration::from_secs(1)) {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        assert_eq!(d.counters().rejected_draining.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn an_expired_deadline_is_a_504_for_the_waiter() {
        let d = dispatcher(1, 8);
        let id = d
            .submit(Endpoint::Render, tiny_request(), Duration::from_millis(0))
            .unwrap();
        match d.wait(id) {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn unknown_jobs_are_not_found() {
        let d = dispatcher(1, 2);
        assert!(matches!(d.status(999), Err(ServeError::JobNotFound(999))));
        assert!(matches!(d.wait(999), Err(ServeError::JobNotFound(999))));
    }

    #[test]
    fn traced_jobs_retain_a_span_trail_for_lookup() {
        let d = dispatcher(1, 8);
        let trail = SpanRecorder::enabled();
        let id = d
            .submit_traced(
                Endpoint::Render,
                tiny_request(),
                Duration::from_secs(30),
                trail,
            )
            .unwrap();
        d.wait(id).unwrap();
        let spans = d.request_spans(id).expect("trail retained");
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"queue_wait"), "got {names:?}");
        assert!(names.contains(&"engine_run"), "got {names:?}");
        // Untraced submissions leave nothing behind.
        let plain = d
            .submit(Endpoint::Render, tiny_request(), Duration::from_secs(30))
            .unwrap();
        d.wait(plain).unwrap();
        assert!(d.request_spans(plain).is_none());
    }

    #[test]
    fn worker_logs_parse_as_json_lines() {
        let logger = Logger::to_buffer("debug").unwrap();
        let d = Dispatcher::new_with(Arc::new(Executor::new(4, 8)), 1, 8, 1, logger.clone());
        let id = d
            .submit(Endpoint::Render, tiny_request(), Duration::from_secs(30))
            .unwrap();
        d.wait(id).unwrap();
        let lines = logger.captured();
        assert!(!lines.is_empty(), "workers log at debug level");
        for line in &lines {
            cooprt_telemetry::parse_json(line).expect("log line parses");
        }
        assert!(lines.iter().any(|l| l.contains("\"job claimed\"")));
        assert!(lines.iter().any(|l| l.contains("\"job done\"")));
    }
}
