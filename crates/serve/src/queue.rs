//! Admission control and the worker pool: a bounded job queue in front
//! of the [`Executor`].
//!
//! Every render/simulate request — sync or async — becomes a job in a
//! bounded [`SyncQueue`]. A full queue rejects *at admission* with
//! [`ServeError::QueueFull`] (HTTP 429 + `Retry-After`) instead of
//! buffering unboundedly; a draining queue rejects with
//! [`ServeError::ShuttingDown`] (503). Workers are plain threads
//! looping on [`SyncQueue::pop_timeout`]; on drain the queue is closed,
//! workers finish every job already admitted, and then exit — admitted
//! work is never dropped.

use crate::error::ServeError;
use crate::exec::{Endpoint, ExecOutcome, Executor};
use crate::JobRequest;
use cooprt_core::parallel::{Pop, PushError, SyncQueue};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long a worker sleeps on an empty queue before re-checking for
/// shutdown.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// Completed jobs retained for polling before the oldest is pruned.
const FINISHED_RETENTION: usize = 256;

/// Observable state of a submitted job.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully.
    Done(ExecOutcome),
    /// Finished with an error.
    Failed(ServeError),
}

impl JobState {
    /// Short label for status bodies.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One admitted job.
#[derive(Debug)]
struct Job {
    endpoint: Endpoint,
    request: JobRequest,
    deadline: Instant,
    state: JobState,
}

#[derive(Debug, Default)]
struct JobTable {
    jobs: HashMap<u64, Job>,
    finished: VecDeque<u64>,
}

impl JobTable {
    /// Records `id` as finished and prunes the oldest finished jobs
    /// past the retention cap (so long-lived servers don't grow the
    /// table unboundedly).
    fn finish(&mut self, id: u64) {
        self.finished.push_back(id);
        while self.finished.len() > FINISHED_RETENTION {
            if let Some(old) = self.finished.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }
}

/// Lifetime counters for the dispatcher.
#[derive(Debug, Default)]
pub struct DispatchCounters {
    /// Jobs admitted to the queue.
    pub submitted: AtomicU64,
    /// Jobs rejected because the queue was full.
    pub rejected_full: AtomicU64,
    /// Jobs rejected because the server was draining.
    pub rejected_draining: AtomicU64,
    /// Jobs that finished successfully.
    pub completed: AtomicU64,
    /// Jobs that finished with an error (including expired deadlines).
    pub failed: AtomicU64,
}

/// The bounded queue + worker pool + job table.
#[derive(Debug)]
pub struct Dispatcher {
    executor: Arc<Executor>,
    queue: Arc<SyncQueue<u64>>,
    table: Arc<(Mutex<JobTable>, Condvar)>,
    counters: Arc<DispatchCounters>,
    next_id: AtomicU64,
    retry_after_secs: u64,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Dispatcher {
    /// Spawns `workers` worker threads over a queue admitting at most
    /// `queue_capacity` waiting jobs.
    pub fn new(
        executor: Arc<Executor>,
        workers: usize,
        queue_capacity: usize,
        retry_after_secs: u64,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        let queue = Arc::new(SyncQueue::new(queue_capacity));
        let table: Arc<(Mutex<JobTable>, Condvar)> = Arc::default();
        let counters = Arc::new(DispatchCounters::default());
        let handles = (0..workers)
            .map(|i| {
                let executor = Arc::clone(&executor);
                let queue = Arc::clone(&queue);
                let table = Arc::clone(&table);
                let counters = Arc::clone(&counters);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&executor, &queue, &table, &counters))
                    .expect("spawn worker thread")
            })
            .collect();
        Dispatcher {
            executor,
            queue,
            table,
            counters,
            next_id: AtomicU64::new(1),
            retry_after_secs,
            workers: Mutex::new(handles),
        }
    }

    /// Admits a job, returning its id, or rejects with 429/503.
    pub fn submit(
        &self,
        endpoint: Endpoint,
        request: JobRequest,
        deadline: Duration,
    ) -> Result<u64, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let (lock, _) = &*self.table;
            let mut t = lock.lock().unwrap_or_else(|e| e.into_inner());
            t.jobs.insert(
                id,
                Job {
                    endpoint,
                    request,
                    deadline: Instant::now() + deadline,
                    state: JobState::Queued,
                },
            );
        }
        match self.queue.try_push(id) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(id)
            }
            Err(err) => {
                let (lock, _) = &*self.table;
                lock.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .jobs
                    .remove(&id);
                match err {
                    PushError::Full(_) => {
                        self.counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::QueueFull {
                            retry_after_secs: self.retry_after_secs,
                        })
                    }
                    PushError::Closed(_) => {
                        self.counters
                            .rejected_draining
                            .fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::ShuttingDown)
                    }
                }
            }
        }
    }

    /// Blocks until job `id` finishes, or its deadline passes.
    ///
    /// On deadline expiry the job itself keeps running (its result
    /// still lands in the cache); only this waiter gives up with a 504.
    pub fn wait(&self, id: u64) -> Result<ExecOutcome, ServeError> {
        let (lock, cond) = &*self.table;
        let mut t = lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let job = t.jobs.get(&id).ok_or(ServeError::JobNotFound(id))?;
            match &job.state {
                JobState::Done(outcome) => return Ok(outcome.clone()),
                JobState::Failed(err) => return Err(err.clone()),
                JobState::Queued | JobState::Running => {
                    let now = Instant::now();
                    if now >= job.deadline {
                        return Err(ServeError::DeadlineExceeded);
                    }
                    let wait = job.deadline - now;
                    let (guard, _) = cond
                        .wait_timeout(t, wait.min(WORKER_POLL))
                        .unwrap_or_else(|e| e.into_inner());
                    t = guard;
                }
            }
        }
    }

    /// The current state of job `id` (for `GET /v1/jobs/<id>`).
    pub fn status(&self, id: u64) -> Result<JobState, ServeError> {
        let (lock, _) = &*self.table;
        let t = lock.lock().unwrap_or_else(|e| e.into_inner());
        t.jobs
            .get(&id)
            .map(|j| j.state.clone())
            .ok_or(ServeError::JobNotFound(id))
    }

    /// Jobs currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime counters.
    pub fn counters(&self) -> &DispatchCounters {
        &self.counters
    }

    /// The executor behind the workers (for cache metrics).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// True once [`Dispatcher::drain`] has closed the queue.
    pub fn is_draining(&self) -> bool {
        self.queue.is_closed()
    }

    /// Graceful drain: stop admitting, finish every admitted job, join
    /// the workers. Idempotent.
    pub fn drain(&self) {
        self.queue.close();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.drain();
    }
}

/// One worker: pop job ids until the queue is closed *and* empty.
fn worker_loop(
    executor: &Executor,
    queue: &SyncQueue<u64>,
    table: &(Mutex<JobTable>, Condvar),
    counters: &DispatchCounters,
) {
    let (lock, cond) = table;
    loop {
        let id = match queue.pop_timeout(WORKER_POLL) {
            Pop::Item(id) => id,
            Pop::Timeout => continue,
            Pop::Closed => return,
        };
        // Claim the job: mark Running, grab what we need to execute.
        let claimed = {
            let mut t = lock.lock().unwrap_or_else(|e| e.into_inner());
            match t.jobs.get_mut(&id) {
                Some(job) => {
                    if Instant::now() >= job.deadline {
                        job.state = JobState::Failed(ServeError::DeadlineExceeded);
                        t.finish(id);
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                        cond.notify_all();
                        None
                    } else {
                        job.state = JobState::Running;
                        Some((job.endpoint, job.request.clone()))
                    }
                }
                None => None, // pruned while queued; nothing to do
            }
        };
        let Some((endpoint, request)) = claimed else {
            continue;
        };
        let result = executor.execute(endpoint, &request, id);
        let mut t = lock.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(job) = t.jobs.get_mut(&id) {
            job.state = match result {
                Ok(outcome) => {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                    JobState::Done(outcome)
                }
                Err(err) => {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    JobState::Failed(err)
                }
            };
            t.finish(id);
        }
        cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request() -> JobRequest {
        JobRequest {
            width: 6,
            height: 4,
            ..JobRequest::default()
        }
    }

    fn dispatcher(workers: usize, queue: usize) -> Dispatcher {
        Dispatcher::new(Arc::new(Executor::new(4, 8)), workers, queue, 1)
    }

    #[test]
    fn submit_wait_returns_the_result() {
        let d = dispatcher(2, 8);
        let id = d
            .submit(Endpoint::Render, tiny_request(), Duration::from_secs(30))
            .unwrap();
        let outcome = d.wait(id).unwrap();
        assert!(!outcome.cached);
        assert!(!outcome.body.is_empty());
        assert!(matches!(d.status(id).unwrap(), JobState::Done(_)));
        assert_eq!(d.counters().completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn a_full_queue_rejects_with_queue_full() {
        // One worker, capacity-1 queue. Flood with jobs; with more
        // submissions than the system can hold at once, at least one
        // must be turned away with the 429 mapping.
        let d = dispatcher(1, 1);
        let mut admitted = Vec::new();
        let mut rejected = 0;
        for _ in 0..20 {
            match d.submit(Endpoint::Render, tiny_request(), Duration::from_secs(30)) {
                Ok(id) => admitted.push(id),
                Err(ServeError::QueueFull { retry_after_secs }) => {
                    assert_eq!(retry_after_secs, 1);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(rejected > 0, "overload must trip admission control");
        assert_eq!(d.counters().rejected_full.load(Ordering::Relaxed), rejected);
        // Everything admitted still completes (first run is a miss,
        // repeats are cache hits).
        for id in admitted {
            d.wait(id).unwrap();
        }
    }

    #[test]
    fn drain_finishes_admitted_work_and_rejects_new_work() {
        let d = dispatcher(1, 8);
        let ids: Vec<u64> = (0..3)
            .map(|_| {
                d.submit(Endpoint::Render, tiny_request(), Duration::from_secs(30))
                    .unwrap()
            })
            .collect();
        d.drain();
        assert!(d.is_draining());
        for id in ids {
            d.wait(id).expect("admitted jobs complete during drain");
        }
        match d.submit(Endpoint::Render, tiny_request(), Duration::from_secs(1)) {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        assert_eq!(d.counters().rejected_draining.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn an_expired_deadline_is_a_504_for_the_waiter() {
        let d = dispatcher(1, 8);
        let id = d
            .submit(Endpoint::Render, tiny_request(), Duration::from_millis(0))
            .unwrap();
        match d.wait(id) {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn unknown_jobs_are_not_found() {
        let d = dispatcher(1, 2);
        assert!(matches!(d.status(999), Err(ServeError::JobNotFound(999))));
        assert!(matches!(d.wait(999), Err(ServeError::JobNotFound(999))));
    }
}
